"""Figure aggregation logic, exercised against a stubbed runner.

These verify the figure-data plumbing (which configs are requested, how
results aggregate) without running any timing simulations: the stub
returns synthetic results whose IPC encodes the configuration.
"""

import pytest

from repro.harness import figures
from repro.harness.figures import (
    FIGURE5_COMPOSITES,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
)
from repro.machine.config import BranchMode, Discipline, MachineConfig
from repro.stats.results import SimResult


class StubRunner:
    """Mimics SweepRunner.mean_ipc / mean_redundancy / run_point."""

    def __init__(self, benchmarks=("alpha", "beta")):
        self.benchmarks = list(benchmarks)
        self.requested = []

    def _result(self, benchmark: str, config: MachineConfig) -> SimResult:
        # Encode config identity in the numbers for verification.
        ipc_scale = config.issue_model * 100 + ord(config.memory)
        return SimResult(
            benchmark=benchmark,
            config=config,
            cycles=1000,
            retired_nodes=ipc_scale * 10,
            discarded_nodes=config.window_blocks,
            dynamic_blocks=10,
            work_nodes=ipc_scale * 10,
        )

    def run_point(self, benchmark, config):
        self.requested.append((benchmark, config))
        return self._result(benchmark, config)

    def mean_ipc(self, config, benchmarks=None):
        return self._result("x", config).retired_per_cycle

    def mean_redundancy(self, config, benchmarks=None):
        result = self._result("x", config)
        return result.redundancy


class TestFigure3Plumbing:
    def test_ten_lines_eight_points(self):
        data = figure3_data(StubRunner())
        lines = [k for k in data if not k.startswith("_")]
        assert len(lines) == 10
        for label in lines:
            assert len(data[label]) == 8

    def test_memory_is_A(self):
        data = figure3_data(StubRunner())
        # IPC encodes memory letter: all points must use memory A.
        for label in data:
            if label.startswith("_"):
                continue
            for index, value in enumerate(data[label]):
                expected = ((index + 1) * 100 + ord("A")) * 10 / 1000
                assert value == pytest.approx(expected)


class TestFigure4Plumbing:
    def test_memory_order_respected(self):
        data = figure4_data(StubRunner())
        assert data["_memories"] == list(figures.FIGURE4_MEMORY_ORDER)
        series = data["static/single"]
        for memory, value in zip(data["_memories"], series):
            expected = (8 * 100 + ord(memory)) * 10 / 1000
            assert value == pytest.approx(expected)


class TestFigure5Plumbing:
    def test_one_series_per_benchmark(self):
        runner = StubRunner(benchmarks=("sort", "grep", "diff"))
        data = figure5_data(runner)
        assert set(k for k in data if not k.startswith("_")) == {
            "sort", "grep", "diff"
        }
        assert len(data["sort"]) == len(FIGURE5_COMPOSITES)

    def test_uses_dyn4_enlarged(self):
        runner = StubRunner(benchmarks=("sort",))
        figure5_data(runner)
        for _, config in runner.requested:
            assert config.discipline is Discipline.DYNAMIC
            assert config.window_blocks == 4
            assert config.branch_mode is BranchMode.ENLARGED


class TestFigure6Plumbing:
    def test_redundancy_series(self):
        data = figure6_data(StubRunner())
        lines = [k for k in data if not k.startswith("_")]
        assert len(lines) == 10
        # Window size encoded in discarded_nodes: bigger window -> more.
        wide = {k: v[-1] for k, v in data.items() if not k.startswith("_")}
        assert wide["dyn256/single"] > wide["dyn4/single"] > 0


class TestReportGeneration:
    def test_report_with_stub_runner(self, monkeypatch):
        """generate_report assembles all sections from runner data."""
        from repro.harness import report as report_mod

        runner = StubRunner(benchmarks=("sort", "grep"))
        runner.scale = 1

        # figure2/static-ratio need real workloads; stub them out.
        monkeypatch.setattr(
            report_mod, "figure2_data",
            lambda r: {
                "buckets": ["0-4", "5+"],
                "single": [0.6, 0.4],
                "enlarged": [0.2, 0.8],
            },
        )
        monkeypatch.setattr(
            report_mod, "static_ratio_data",
            lambda r: {"sort": 2.5, "grep": 3.0},
        )
        monkeypatch.setattr(
            report_mod, "schedule_gap_section",
            lambda r: "## Optimal static scheduling (beyond the paper)\n",
        )
        text = report_mod.generate_report(runner)
        assert "# EXPERIMENTS" in text
        assert "Figure 2" in text
        assert "Figure 3" in text
        assert "Figure 4" in text
        assert "Figure 5" in text
        assert "Figure 6" in text
        assert "2.75" in text  # mean static ratio
        assert "dyn256/enlarged" in text
