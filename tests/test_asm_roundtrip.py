"""Assembly printer/parser round-trip tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AluOp,
    Imm,
    MemWidth,
    Reg,
    SyscallOp,
    alu,
    assert_node,
    branch,
    call,
    jump,
    load,
    movi,
    ret,
    store,
    syscall,
)
from repro.program import (
    AsmSyntaxError,
    BasicBlock,
    Program,
    format_node,
    format_program,
    parse_node,
    parse_program,
)


def roundtrip_node(node):
    return parse_node(format_node(node))


def assert_node_equal(a, b):
    assert a.kind == b.kind
    assert a.op == b.op
    assert a.dest == b.dest
    assert a.src1 == b.src1
    assert a.src2 == b.src2
    assert a.base == b.base
    assert a.offset == b.offset
    assert a.width == b.width
    assert a.target == b.target
    assert a.alt_target == b.alt_target
    assert a.expect_taken == b.expect_taken
    assert a.args == b.args


EXAMPLES = [
    alu(AluOp.ADD, 1, Reg(2), Imm(-5)),
    alu(AluOp.MUL, 9, Reg(9), Reg(10)),
    alu(AluOp.NOT, 3, Reg(4)),
    movi(0, 2**31 - 1),
    load(5, 62, 16, MemWidth.WORD),
    load(5, 63, -4, MemWidth.BYTE),
    store(Reg(5), 62, 0, MemWidth.WORD),
    store(Imm(65), 10, 3, MemWidth.BYTE),
    branch(7, "L1", "L2"),
    branch(7, "L1", "L2", expect_taken=True),
    branch(7, "L1", "L2", expect_taken=False),
    jump("away"),
    call("f_x", "after"),
    ret(),
    assert_node(3, True, "fix"),
    assert_node(3, False, "fix"),
    syscall(SyscallOp.GETC, "next", (1,), dest=0),
    syscall(SyscallOp.PUTC, "next", (1, 2)),
    syscall(SyscallOp.READ, "next", (1, 2, 3), dest=4),
    syscall(SyscallOp.EXIT, None, (0,)),
]


@pytest.mark.parametrize("node", EXAMPLES, ids=lambda n: format_node(n))
def test_node_roundtrip(node):
    assert_node_equal(roundtrip_node(node), node)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "bogus r1, r2",
            "add r1",
            "add #1, r2, r3",
            "ldw r1, r2",
            "br r1, only_one",
            "call f",
            "assert r1, 1",
            "sys unknown(r1)",
            "add r99, r1, r2",
        ],
    )
    def test_bad_node(self, text):
        with pytest.raises(AsmSyntaxError):
            parse_node(text)

    def test_block_without_terminator(self):
        with pytest.raises(AsmSyntaxError):
            parse_program(".entry a\nblock a:\n    add r1, r1, #1\n")

    def test_node_outside_block(self):
        with pytest.raises(AsmSyntaxError):
            parse_program(".entry a\n    add r1, r1, #1\n")

    def test_missing_entry(self):
        with pytest.raises(AsmSyntaxError):
            parse_program("block a:\n    ret\n")


class TestProgramRoundtrip:
    def test_program_with_data_and_symbols(self):
        program = Program(
            [
                BasicBlock("main", [movi(1, 4)], branch(1, "main", "end")),
                BasicBlock("end", [], syscall(SyscallOp.EXIT, None, (1,))),
            ],
            entry="main",
            data=bytes(range(40)),
            data_size=128,
            symbols={"table": 0x1000},
        )
        text = format_program(program)
        parsed = parse_program(text)
        assert parsed.entry == program.entry
        assert parsed.data == program.data
        assert parsed.data_size == program.data_size
        assert parsed.symbols == program.symbols
        assert list(parsed.blocks) == list(program.blocks)
        for label in program.blocks:
            want = list(program.block(label).nodes())
            got = list(parsed.block(label).nodes())
            assert len(want) == len(got)
            for a, b in zip(want, got):
                assert_node_equal(a, b)

    def test_compiled_program_roundtrip(self, sumloop_program):
        text = format_program(sumloop_program)
        parsed = parse_program(text)
        assert list(parsed.blocks) == list(sumloop_program.blocks)
        for label in parsed.blocks:
            want = list(sumloop_program.block(label).nodes())
            got = list(parsed.block(label).nodes())
            for a, b in zip(want, got):
                assert_node_equal(a, b)


# Property-based: random ALU nodes always round-trip.
regs = st.integers(min_value=0, max_value=63)
imms = st.integers(min_value=-(2**31), max_value=2**31 - 1)
operands = st.one_of(regs.map(Reg), imms.map(Imm))
binary_ops = st.sampled_from(
    [op for op in AluOp if op not in (AluOp.NOT, AluOp.NEG, AluOp.MOV)]
)


@given(binary_ops, regs, operands, operands)
def test_random_alu_roundtrip(op, dest, src1, src2):
    node = alu(op, dest, src1, src2)
    assert_node_equal(roundtrip_node(node), node)


@given(regs, regs, st.integers(min_value=-4096, max_value=4096),
       st.sampled_from(list(MemWidth)))
def test_random_load_roundtrip(dest, base, offset, width):
    node = load(dest, base, offset, width)
    assert_node_equal(roundtrip_node(node), node)
