"""Parallel sweep tests: backend equivalence, merge discipline, crashes.

The contracts under test (see DESIGN.md "Parallel execution"):

* serial and ``--jobs N`` sweeps of the same grid produce identical
  result-cache entries and SimResult values (so ``--resume`` works
  across backends in either direction);
* workers never write cache/checkpoint/telemetry -- everything merges
  through the parent, so a crashed or hung worker degrades to a
  structured ``PointFailure`` and exit code 3, never a corrupt file.

The process-backend tests fork-monkeypatch: pool workers are forked
after the test patches module state, so the patched simulate() is
inherited (same pattern as the isolation tests in
test_fault_tolerance.py).
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.cli import main
from repro.harness.artifacts import default_artifact_root
from repro.harness.backend import (
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    plan_tasks,
)
from repro.harness.errors import WorkloadPrepareError
from repro.harness.runner import SweepRunner
from repro.machine.config import full_configuration_space
from repro.stats.results import SimResult
from repro.telemetry import MetricsCollector

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool workers must inherit monkeypatched module state",
)


def fake_result(config, benchmark="grep", cycles=1000):
    return SimResult(
        benchmark=benchmark,
        config=config,
        cycles=cycles,
        retired_nodes=4000,
        discarded_nodes=100,
        dynamic_blocks=800,
        mispredicts=10,
        branch_lookups=100,
        faults=2,
        loads=300,
        stores=200,
        cache_accesses=500,
        cache_misses=25,
        write_buffer_hits=40,
        issue_words=1000,
        issued_slots=4100,
        window_block_cycles=2400,
        window_samples=800,
        work_nodes=4000,
    )


def _install_stub_simulation(monkeypatch, stub):
    """Route every simulation through ``stub(config)`` (workers inherit)."""
    monkeypatch.setattr(SweepRunner, "workload", lambda self, name: None)
    monkeypatch.setattr(SweepRunner, "prepare_artifacts",
                        lambda self, name: None)
    monkeypatch.setattr(
        "repro.harness.runner.simulate",
        lambda workload, config, collector=None, max_cycles=None, **kwargs:
        stub(config),
    )


# ----------------------------------------------------------------------
class TestSnapshotMerge:
    def test_null_collector_snapshot_is_empty(self):
        from repro.telemetry.collector import NULL_COLLECTOR

        assert NULL_COLLECTOR.snapshot() == {}
        NULL_COLLECTOR.merge({"counters": {"x": 1}})  # no-op, no error
        assert NULL_COLLECTOR.counters == {}

    def test_merge_equals_direct_recording(self):
        def record(collector, offset):
            collector.count("points", 2)
            collector.observe("wall_s", 0.5 + offset)
            collector.add_time("prepare", 1.0 + offset)
            collector.record_point(benchmark="grep", cached=False)

        worker_a, worker_b, direct = (
            MetricsCollector(), MetricsCollector(), MetricsCollector()
        )
        record(worker_a, 0.0)
        record(worker_b, 1.0)
        record(direct, 0.0)
        record(direct, 1.0)

        merged = MetricsCollector()
        merged.merge(worker_a.snapshot())
        merged.merge(worker_b.snapshot())
        assert merged.counters == direct.counters
        assert merged.histograms == direct.histograms
        assert merged.timers == direct.timers
        assert merged.points == direct.points

    def test_snapshot_is_a_copy(self):
        collector = MetricsCollector()
        collector.count("n")
        snap = collector.snapshot()
        collector.count("n")
        assert snap["counters"]["n"] == 1


class TestPlanTasks:
    def test_config_major_matches_historical_order(self):
        configs = list(full_configuration_space())[:3]
        names = ["grep", "sort"]
        tasks = list(plan_tasks(configs, names,
                                lambda n, c: f"{n}|{c}"))
        assert [(t[0], t[1]) for t in tasks[:4]] == [
            ("grep", configs[0]), ("sort", configs[0]),
            ("grep", configs[1]), ("sort", configs[1]),
        ]

    def test_benchmark_major_groups_each_benchmark(self):
        configs = list(full_configuration_space())[:3]
        names = ["grep", "sort"]
        tasks = list(plan_tasks(configs, names, lambda n, c: f"{n}|{c}",
                                benchmark_major=True))
        assert [t[0] for t in tasks] == ["grep"] * 3 + ["sort"] * 3
        # Same task set either way, only the order differs.
        assert sorted(t[2] for t in tasks) == sorted(
            t[2] for t in plan_tasks(configs, names,
                                     lambda n, c: f"{n}|{c}")
        )


class TestMakeBackend:
    def test_jobs_1_is_serial(self):
        runner = SweepRunner(benchmarks=["grep"], use_cache=False)
        assert isinstance(make_backend(runner, jobs=1), SerialBackend)

    def test_jobs_n_is_process_pool(self):
        runner = SweepRunner(benchmarks=["grep"], use_cache=False)
        backend = make_backend(runner, jobs=4)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 4
        backend.close()

    def test_isolate_with_jobs_is_rejected(self, capsys):
        assert main(["sweep", "--jobs", "2", "--isolate"]) == 1
        assert "serial backend" in capsys.readouterr().err

    def test_jobs_zero_is_rejected(self, capsys):
        assert main(["sweep", "--jobs", "0"]) == 1


# ----------------------------------------------------------------------
@fork_only
class TestSerialParallelEquivalence:
    def test_jobs4_cache_is_identical_to_serial(self, tmp_path, monkeypatch,
                                                grep_prepared, capsys):
        # Share prepared artifacts (grep_prepared already materialized
        # them); isolate result caches per backend.
        monkeypatch.setenv(
            "REPRO_ARTIFACT_DIR", os.path.abspath(default_artifact_root())
        )
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"

        monkeypatch.setenv("REPRO_CACHE_DIR", str(serial_dir))
        code = main([
            "sweep", "--benchmarks", "grep", "--limit", "6",
            "--metrics-out", str(serial_dir / "telemetry.json"),
        ])
        assert code == 0

        monkeypatch.setenv("REPRO_CACHE_DIR", str(parallel_dir))
        code = main([
            "sweep", "--benchmarks", "grep", "--limit", "6", "--jobs", "4",
            "--metrics-out", str(parallel_dir / "telemetry.json"),
        ])
        assert code == 0
        capsys.readouterr()

        serial = json.loads((serial_dir / "results.json").read_text())
        parallel = json.loads((parallel_dir / "results.json").read_text())
        assert len(serial) == 6
        # Identical keys AND identical SimResult values, byte for byte
        # once key order is canonicalized.
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

        counters_s = json.loads(
            (serial_dir / "telemetry.json").read_text()
        )["counters"]
        counters_p = json.loads(
            (parallel_dir / "telemetry.json").read_text()
        )["counters"]
        assert counters_s == counters_p
        assert counters_s["sweep.cache.miss"] == 6

    def test_serial_resume_consumes_parallel_cache(self, tmp_path,
                                                   monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _install_stub_simulation(monkeypatch, fake_result)
        assert main(["sweep", "--benchmarks", "grep", "--limit", "5",
                     "--jobs", "2"]) == 0
        capsys.readouterr()

        metrics = tmp_path / "telemetry.json"
        code = main([
            "sweep", "--benchmarks", "grep", "--limit", "0", "--resume",
            "--metrics-out", str(metrics),
        ])
        capsys.readouterr()
        assert code == 0
        document = json.loads(metrics.read_text())
        assert document["counters"]["sweep.cache.hit"] == 5
        assert "sweep.cache.miss" not in document["counters"]
        assert document["context"] == {"backend": "serial", "jobs": 1}


# ----------------------------------------------------------------------
@fork_only
class TestProcessBackendFailurePaths:
    def test_worker_crash_degrades_without_corrupting_state(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        configs = list(full_configuration_space())
        poison = configs[2]

        def stub(config):
            if config == poison:
                os._exit(13)  # hard worker death: BrokenProcessPool
            return fake_result(config)

        _install_stub_simulation(monkeypatch, stub)
        code = main(["sweep", "--benchmarks", "grep", "--limit", "8",
                     "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 3
        assert "worker-crash" in captured.err

        # Checkpoint and cache are both valid JSON; the poison point is
        # a worker-crash failure; every point is accounted for exactly
        # once (crash neighbours may degrade too -- bounded by the
        # dispatch window -- but nothing is lost or double-counted).
        state = json.loads((tmp_path / "sweep.state.json").read_text())
        cache = json.loads((tmp_path / "results.json").read_text())
        kinds = {entry["failure"]["kind"] for entry in state["failures"]}
        assert kinds == {"worker-crash"}
        failed_keys = {entry["key"] for entry in state["failures"]}
        assert len(cache) + len(failed_keys) == 8
        assert set(state["done"]) == set(cache)
        assert not (set(cache) & failed_keys)
        assert state["backend"] == "process"

    def test_crash_then_retry_failed_heals(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        configs = list(full_configuration_space())
        poison = configs[1]

        def crashing(config):
            if config == poison:
                os._exit(13)
            return fake_result(config)

        _install_stub_simulation(monkeypatch, crashing)
        assert main(["sweep", "--benchmarks", "grep", "--limit", "4",
                     "--jobs", "2"]) == 3
        capsys.readouterr()

        _install_stub_simulation(monkeypatch, fake_result)
        code = main(["sweep", "--benchmarks", "grep", "--limit", "4",
                     "--resume", "--retry-failed", "--jobs", "2"])
        capsys.readouterr()
        assert code == 0
        # Every previously crashed or cached point of the original grid
        # slice is now a clean cache entry (--limit counts only fresh
        # points, so the resume may have simulated further ones too).
        from repro.harness.cache import result_key

        cache = json.loads((tmp_path / "results.json").read_text())
        for config in configs[:4]:
            assert result_key("grep", config, 1) in cache

    def test_wedged_point_times_out(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        configs = list(full_configuration_space())
        poison = configs[0]

        def stub(config):
            if config == poison:
                time.sleep(30)
            return fake_result(config)

        _install_stub_simulation(monkeypatch, stub)
        code = main(["sweep", "--benchmarks", "grep", "--limit", "3",
                     "--jobs", "2", "--timeout", "0.5", "--retries", "0"])
        captured = capsys.readouterr()
        assert code == 3
        assert "timeout" in captured.err
        state = json.loads((tmp_path / "sweep.state.json").read_text())
        assert [entry["failure"]["kind"] for entry in state["failures"]] == [
            "timeout"
        ]
        assert len(json.loads((tmp_path / "results.json").read_text())) == 2

    def test_prepare_failure_fails_the_benchmark_points(self, tmp_path,
                                                        monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

        def broken_prepare(self, name):
            raise WorkloadPrepareError(name, RuntimeError("no compiler"))

        monkeypatch.setattr(SweepRunner, "prepare_artifacts", broken_prepare)
        code = main(["sweep", "--benchmarks", "grep", "--limit", "3",
                     "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 3
        assert "prepare" in captured.err
        state = json.loads((tmp_path / "sweep.state.json").read_text())
        assert len(state["failures"]) == 3
        assert all(
            entry["failure"]["kind"] == "prepare"
            for entry in state["failures"]
        )
        assert not (tmp_path / "results.json").exists()


# ----------------------------------------------------------------------
@fork_only
class TestBenchCommand:
    def test_bench_writes_schema_document(self, tmp_path, monkeypatch,
                                          capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "arts"))
        _install_stub_simulation(monkeypatch, fake_result)
        output = tmp_path / "BENCH_sweep.json"
        code = main(["bench", "--benchmarks", "grep", "--points", "4",
                     "--jobs", "2", "-o", str(output)])
        captured = capsys.readouterr()
        assert code == 0
        assert "speedup" in captured.out

        document = json.loads(output.read_text())
        assert document["schema"] == "repro.bench/1"
        assert document["host"]["cpu_count"] >= 1
        assert document["grid"] == {
            "benchmarks": ["grep"], "points": 4, "scale": 1,
        }
        serial = document["backends"]["serial"]
        process = document["backends"]["process"]
        assert serial["backend"] == "serial" and serial["jobs"] == 1
        assert process["backend"] == "process" and process["jobs"] == 2
        for timing in (serial, process):
            assert timing["wall_s"] > 0
            assert timing["points_per_s"] > 0
            assert timing["failures"] == 0
        assert document["speedup"] > 0
