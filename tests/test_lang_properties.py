"""Property-based tests over the Mini-C front end.

Hypothesis generates random but well-formed programs exercising the
widened subset (function-pointer dispatch, multi-dimensional arrays) and
checks the whole front end holds two invariants:

* any generated program compiles and runs without crashing, and the
  optimised and unoptimised builds agree on its observable behaviour;
* the lexer reports token positions that point at the token's own text,
  so every downstream diagnostic location is trustworthy.
"""

from hypothesis import given, settings, strategies as st

from repro.interp import run_program
from repro.lang import compile_source
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType

# ----------------------------------------------------------------------
# Random well-formed programs
# ----------------------------------------------------------------------
_BIN_OPS = ["+", "-", "*", "&", "|", "^"]

_PRELUDE = """
int grid[3][3] = {{1, 2, 3}, {4, 5}, {6}};
int add(int x, int y) { return x + y; }
int sub(int x, int y) { return x - y; }
int xo(int x, int y) { return x ^ y; }
int (*ops[3])(int, int) = {add, sub, xo};
"""


@st.composite
def _expr(draw, depth=0):
    """An expression over locals a/b/c, literals and the global matrix."""
    if depth >= 2 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["a", "b", "c", "lit", "grid"]))
        if leaf == "lit":
            return str(draw(st.integers(min_value=-99, max_value=99)))
        if leaf == "grid":
            row = draw(st.integers(min_value=0, max_value=2))
            col = draw(st.integers(min_value=0, max_value=2))
            return f"grid[{row}][{col}]"
        return leaf
    op = draw(st.sampled_from(_BIN_OPS))
    left = draw(_expr(depth=depth + 1))
    right = draw(_expr(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def _stmt(draw, depth=0):
    """A statement; loops are bounded and use a per-depth counter."""
    kinds = ["assign", "store", "dispatch", "if"]
    if depth < 2:
        kinds.append("loop")
    kind = draw(st.sampled_from(kinds))
    if kind == "assign":
        name = draw(st.sampled_from(["a", "b", "c"]))
        return f"{name} = {draw(_expr())};"
    if kind == "store":
        row = draw(st.integers(min_value=0, max_value=2))
        col = draw(st.integers(min_value=0, max_value=2))
        return f"grid[{row}][{col}] = {draw(_expr())};"
    if kind == "dispatch":
        index = draw(st.integers(min_value=0, max_value=2))
        return f"c = ops[{index}]({draw(_expr())}, {draw(_expr())});"
    if kind == "if":
        body = draw(_stmt(depth=depth + 1))
        return f"if ({draw(_expr())}) {{ {body} }}"
    bound = draw(st.integers(min_value=1, max_value=4))
    body = draw(_stmt(depth=depth + 1))
    return (f"for (k{depth} = 0; k{depth} < {bound}; k{depth}++)"
            f" {{ {body} }}")


@st.composite
def mini_c_program(draw):
    inits = [draw(st.integers(min_value=-50, max_value=50)) for _ in range(3)]
    statements = draw(st.lists(_stmt(), min_size=1, max_size=5))
    body = "\n    ".join(statements)
    return (
        _PRELUDE
        + "int main() {\n"
        + f"    int a = {inits[0]};\n"
        + f"    int b = {inits[1]};\n"
        + f"    int c = {inits[2]};\n"
        + "    int k0;\n    int k1;\n"
        + f"    {body}\n"
        + "    return (a ^ b ^ c ^ grid[1][1]) & 127;\n"
        + "}\n"
    )


@settings(max_examples=40, deadline=None)
@given(mini_c_program())
def test_generated_programs_compile_and_run(source):
    optimized = run_program(compile_source(source, optimize=True),
                            inputs={0: b""})
    plain = run_program(compile_source(source, optimize=False),
                        inputs={0: b""})
    assert 0 <= optimized.exit_code <= 127
    assert optimized.exit_code == plain.exit_code
    assert optimized.output == plain.output


# ----------------------------------------------------------------------
# Lexer position round-trip
# ----------------------------------------------------------------------
#: Sample lexemes whose source text the token stream must point back at.
_LEXEMES = [
    "int", "char", "while", "sizeof", "struct",
    "name", "x0", "_tmp", "veryLongIdentifier",
    "0", "7", "123", "65535",
    "'a'", "'\\n'", '"hi"', '"a b"', '""',
    "+", "-", "*", "/", "%", "++", "--", "<<", ">>", "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "->", "(", ")", "[", "]",
    "{", "}", ";", ",", ".",
]


def _token_text(token, lexeme):
    """What the source must contain at the token's position."""
    if token.type is TokenType.NUMBER:
        return str(token.value)
    if token.type in (TokenType.CHAR, TokenType.STRING):
        return lexeme  # value is decoded; the source text is the literal
    return str(token.value)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.sampled_from(_LEXEMES), min_size=1, max_size=30),
    st.lists(st.sampled_from([" ", "  ", "\n", "\t", " \n "]), min_size=30,
             max_size=30),
)
def test_lexer_positions_point_at_token_text(parts, separators):
    source = "".join(
        part + sep for part, sep in zip(parts, separators)
    )
    tokens = tokenize(source)
    assert tokens[-1].type is TokenType.EOF
    assert len(tokens) - 1 == len(parts)
    lines = source.split("\n")
    for token, lexeme in zip(tokens, parts):
        assert token.line >= 1 and token.column >= 1
        line_text = lines[token.line - 1]
        expected = _token_text(token, lexeme)
        found = line_text[token.column - 1:token.column - 1 + len(expected)]
        assert found == expected, (
            f"token {token.type} at {token.line}:{token.column}: "
            f"expected {expected!r}, source has {found!r}"
        )


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(_LEXEMES), min_size=0, max_size=20))
def test_lexer_positions_strictly_increase(parts):
    source = " ".join(parts)
    tokens = tokenize(source)
    positions = [(token.line, token.column) for token in tokens]
    assert positions == sorted(positions)
    assert len(set(positions)) == len(positions)
