"""Focused unit tests of the dynamic engine's timing mechanics.

Hand-written assembly produces exactly-known traces; these tests pin the
issue-word shaping, window gating, memory disambiguation and wrong-path
accounting at single-cycle granularity (within documented tolerances).
"""

from repro.interp import run_program
from repro.machine import BranchMode, Discipline, MachineConfig, build_templates
from repro.machine.dynamic import DynamicEngine
from repro.program import parse_program


def run_engine(asm, **overrides):
    settings = dict(
        discipline=Discipline.DYNAMIC,
        issue_model=8,
        memory="A",
        branch_mode=BranchMode.SINGLE,
        window_blocks=256,
    )
    settings.update(overrides)
    config = MachineConfig(**settings)
    program = parse_program(asm)
    result = run_program(program, inputs={0: b""})
    engine = DynamicEngine(build_templates(program), result.trace, config)
    return engine.run()


def block_of_movs(count, label="a", nxt=None):
    body = "\n".join(f"    mov r{1 + (i % 50)}, #{i}" for i in range(count))
    term = f"    jmp {nxt}" if nxt else "    sys exit(r1)"
    return f"block {label}:\n{body}\n{term}\n"


class TestIssueShaping:
    def test_sixteen_independent_movs_two_words(self):
        # Issue model 8: 12 ALU slots per word; 16 movs -> 2 issue words.
        asm = ".entry a\n" + block_of_movs(16)
        wide = run_engine(asm, issue_model=8)
        seq = run_engine(asm, issue_model=1)
        # Sequential: one node per cycle -> at least 16 issue cycles.
        assert seq.cycles >= 16
        assert wide.cycles <= 6

    def test_memory_slots_limit_loads(self):
        # 8 independent loads, issue model 8 (4 mem slots) -> 2 words.
        loads = "\n".join(
            f"    ldw r{i + 2}, [r1+{4 * i}]" for i in range(8)
        )
        asm = f""".entry a
block a:
    mov r1, #8192
{loads}
    sys exit(r1)
"""
        result = run_engine(asm, issue_model=8)
        narrow = run_engine(asm, issue_model=2)  # 1 mem slot per word
        assert result.cycles < narrow.cycles

    def test_blocks_do_not_share_issue_words(self):
        # 2 nodes split over two blocks vs in one block: the split
        # version needs an extra issue word (plus jump overhead).
        merged = ".entry a\n" + block_of_movs(8)
        split = (
            ".entry a\n"
            + block_of_movs(4, "a", nxt="b")
            + block_of_movs(4, "b")
        )
        assert run_engine(split).cycles >= run_engine(merged).cycles


class TestWindowGating:
    CHAIN_BLOCKS = (
        ".entry a\n"
        + block_of_movs(6, "a", "b")
        + block_of_movs(6, "b", "c")
        + block_of_movs(6, "c", "d")
        + block_of_movs(6, "d")
    )

    def test_window_one_serialises_blocks(self):
        w1 = run_engine(self.CHAIN_BLOCKS, window_blocks=1)
        w4 = run_engine(self.CHAIN_BLOCKS, window_blocks=4)
        assert w1.cycles > w4.cycles

    def test_window_larger_than_blocks_is_free(self):
        w4 = run_engine(self.CHAIN_BLOCKS, window_blocks=4)
        w256 = run_engine(self.CHAIN_BLOCKS, window_blocks=256)
        assert w4.cycles == w256.cycles


class TestMemoryDependences:
    def test_load_waits_for_same_address_store(self):
        conflict = """
.entry a
block a:
    mov r1, #8192
    mov r2, #5
    mov r3, #600
    stw r2, [r1]
    ldw r4, [r1]
    add r5, r4, #1
    sys exit(r5)
"""
        disjoint = conflict.replace("ldw r4, [r1]", "ldw r4, [r1+64]")
        assert run_engine(conflict).cycles >= run_engine(disjoint).cycles

    def test_loads_bypass_unrelated_stores(self):
        # Run-time disambiguation: a load to a different word proceeds
        # in parallel with an earlier store (same cycle count as no store).
        asm_with = """
.entry a
block a:
    mov r1, #8192
    mov r2, #4096
    stw r1, [r2+128]
    ldw r3, [r1]
    add r4, r3, #1
    sys exit(r4)
"""
        asm_without = asm_with.replace("    stw r1, [r2+128]\n", "")
        with_store = run_engine(asm_with)
        without_store = run_engine(asm_without)
        assert with_store.cycles <= without_store.cycles + 1

    def test_store_store_same_word_ordered(self):
        asm = """
.entry a
block a:
    mov r1, #8192
    stw r1, [r1]
    stw r1, [r1]
    stw r1, [r1]
    sys exit(r1)
"""
        result = run_engine(asm)
        # Three same-word stores serialise: at least 3 cycles apart.
        assert result.cycles >= 5


class TestWrongPathAccounting:
    LOOP = """
.entry top
block top:
    mov r1, #0
    mov r2, #40
    jmp head
block head:
    add r1, r1, #1
    slt r3, r1, r2
    br r3, head, done
block done:
    mov r4, #1
    mov r5, #2
    add r6, r4, r5
    mul r6, r6, r6
    jmp fin
block fin:
    sys exit(r1)
"""

    def test_perfect_mode_discards_nothing(self):
        result = run_engine(self.LOOP, branch_mode=BranchMode.PERFECT,
                            window_blocks=4)
        assert result.discarded_nodes == 0

    def test_bad_predictor_discards_more(self):
        good = run_engine(self.LOOP, window_blocks=4)
        bad = run_engine(self.LOOP, window_blocks=4, predictor="nottaken")
        assert bad.discarded_nodes > good.discarded_nodes
        assert bad.cycles > good.cycles

    def test_wrong_path_respects_window(self):
        w1 = run_engine(self.LOOP, window_blocks=1, predictor="nottaken")
        assert w1.discarded_nodes == 0  # no window room to speculate

    def test_discarded_bounded_by_wrong_path_length(self):
        bad = run_engine(self.LOOP, window_blocks=4, predictor="nottaken")
        # Each mispredict can discard at most the wrong-path region; with
        # tiny blocks this must stay well below total retired work.
        assert bad.discarded_nodes < bad.retired_nodes * 3


class TestLatencies:
    def test_alu_chain_one_cycle_each(self):
        asm = """
.entry a
block a:
    mov r1, #0
    add r1, r1, #1
    add r1, r1, #1
    add r1, r1, #1
    add r1, r1, #1
    sys exit(r1)
"""
        result = run_engine(asm)
        # 5-deep dependence chain: cycles ~ chain depth + pipeline slack.
        assert 5 <= result.cycles <= 9

    def test_miss_latency_visible_once(self):
        asm = """
.entry a
block a:
    mov r1, #8192
    ldw r2, [r1]
    ldw r3, [r1+4]
    add r4, r2, r3
    sys exit(r4)
"""
        # Config D: first load misses (10), second hits the same line (1).
        cold = run_engine(asm, memory="D")
        warm = run_engine(asm, memory="A")
        assert 8 <= cold.cycles - warm.cycles <= 11

    def test_write_buffer_accelerates_reload(self):
        asm = """
.entry a
block a:
    mov r1, #8192
    stw r1, [r1]
    jmp b
block b:
    ldw r2, [r1]
    add r3, r2, #1
    sys exit(r3)
"""
        result = run_engine(asm, memory="D")
        # The load hits the write-buffer line: no 10-cycle miss visible.
        assert result.cycles <= 12
