"""Static list-scheduler tests: dependences, shapes, coverage."""

from hypothesis import given, settings, strategies as st

from repro.isa import (
    AluOp,
    Imm,
    Reg,
    alu,
    jump,
    load,
    movi,
    ret,
    store,
)
from repro.machine.config import ISSUE_MODELS, MEMORY_CONFIGS
from repro.program import BasicBlock
from repro.sched.list_scheduler import schedule_block

ISSUE8 = ISSUE_MODELS[8]
ISSUE2 = ISSUE_MODELS[2]
SEQ = ISSUE_MODELS[1]
MEM_A = MEMORY_CONFIGS["A"]
MEM_C = MEMORY_CONFIGS["C"]


def schedule(body, term=None, issue=ISSUE8, memory=MEM_A):
    block = BasicBlock("blk", body, term or ret())
    return schedule_block(block, issue, memory), list(block.nodes())


def cycle_of(sched):
    """node index -> word (cycle) index."""
    placement = {}
    for cycle, word in enumerate(sched.words):
        for index in word:
            placement[index] = cycle
    return placement


class TestCoverage:
    def test_every_node_scheduled_exactly_once(self):
        sched, nodes = schedule(
            [movi(1, 1), movi(2, 2), alu(AluOp.ADD, 3, Reg(1), Reg(2))]
        )
        seen = [i for word in sched.words for i in word]
        assert sorted(seen) == list(range(len(nodes)))

    def test_word_shape_respected(self):
        body = [load(i + 1, 62, 4 * i) for i in range(8)]
        sched, _ = schedule(body, issue=ISSUE8)
        for word in sched.words:
            mems = sum(1 for i in word if i < 8)
            assert mems <= ISSUE8.mem_slots

    def test_sequential_model_one_per_word(self):
        sched, nodes = schedule([movi(1, 1), movi(2, 2), movi(3, 3)], issue=SEQ)
        for word in sched.words:
            assert len(word) <= 1

    def test_independent_work_packs_into_one_word(self):
        body = [movi(i + 1, i) for i in range(12)]
        sched, _ = schedule(body, issue=ISSUE8)
        non_empty = [w for w in sched.words if w]
        assert len(non_empty) <= 2  # 12 ALU slots + terminator word


class TestDependences:
    def test_flow_dependence_orders(self):
        sched, _ = schedule([
            movi(1, 1),
            alu(AluOp.ADD, 2, Reg(1), Imm(1)),
            alu(AluOp.ADD, 3, Reg(2), Imm(1)),
        ])
        placement = cycle_of(sched)
        assert placement[0] < placement[1] < placement[2]

    def test_load_latency_respected(self):
        sched, _ = schedule(
            [load(1, 62, 0), alu(AluOp.ADD, 2, Reg(1), Imm(1))],
            memory=MEM_C,
        )
        placement = cycle_of(sched)
        assert placement[1] - placement[0] >= 3

    def test_anti_dependence(self):
        # r1 is read by node 0; node 1 overwrites it: must not move above.
        sched, _ = schedule([
            alu(AluOp.ADD, 2, Reg(1), Imm(3)),
            movi(1, 0),
        ])
        placement = cycle_of(sched)
        assert placement[0] <= placement[1]

    def test_output_dependence(self):
        sched, _ = schedule([movi(1, 5), movi(1, 6)])
        placement = cycle_of(sched)
        assert placement[0] < placement[1]

    def test_terminator_is_never_early(self):
        body = [movi(1, 1), movi(2, 2), alu(AluOp.ADD, 3, Reg(1), Reg(2))]
        sched, nodes = schedule(body, term=jump("blk"))
        placement = cycle_of(sched)
        term_cycle = placement[len(nodes) - 1]
        assert all(term_cycle >= placement[i] for i in range(len(nodes) - 1))


class TestMemoryOrdering:
    def test_may_alias_store_load_ordered(self):
        # Different base registers: conservatively ordered.
        sched, _ = schedule([
            store(Reg(1), 10, 0),
            load(2, 11, 0),
        ])
        placement = cycle_of(sched)
        assert placement[0] < placement[1]

    def test_same_base_disjoint_offsets_reorderable(self):
        # Same base register, non-overlapping offsets: no edge, so the
        # scheduler may pack them into one word (2 memory slots).
        sched, _ = schedule([
            store(Reg(1), 10, 0),
            load(2, 10, 8),
        ], issue=ISSUE_MODELS[5])
        placement = cycle_of(sched)
        assert placement[1] <= placement[0] + 1  # not forcibly serialised

    def test_same_address_store_load_ordered(self):
        sched, _ = schedule([
            store(Reg(1), 10, 0),
            load(2, 10, 0),
        ], issue=ISSUE_MODELS[5])
        placement = cycle_of(sched)
        assert placement[1] > placement[0]

    def test_sp_gp_segments_disjoint(self):
        from repro.isa.registers import GP, SP

        sched, _ = schedule([
            store(Reg(1), SP, 0),
            load(2, GP, 0),
        ], issue=ISSUE_MODELS[5])
        placement = cycle_of(sched)
        assert placement[1] <= placement[0] + 1

    def test_base_redefinition_forces_order(self):
        # After r10 changes, offsets are no longer comparable.
        sched, _ = schedule([
            store(Reg(1), 10, 0),
            alu(AluOp.ADD, 10, Reg(10), Imm(4)),
            load(2, 10, 8),
        ], issue=ISSUE_MODELS[5])
        placement = cycle_of(sched)
        assert placement[2] > placement[0]

    def test_loads_need_no_mutual_order(self):
        sched, _ = schedule([
            load(1, 10, 0),
            load(2, 11, 0),
        ], issue=ISSUE_MODELS[5])
        placement = cycle_of(sched)
        assert placement[0] == placement[1]

    def test_mem_rank_maps_body_order(self):
        body = [movi(1, 1), load(2, 62, 0), store(Reg(2), 62, 4), load(3, 62, 8)]
        sched, _ = schedule(body)
        assert sched.mem_rank == {1: 0, 2: 1, 3: 2}


class TestAliasRelation:
    """Direct regression tests for the shared conservative alias test.

    The exact solver (repro.optsched) reuses ``may_alias`` and
    ``build_dependences`` verbatim, so these pin the relation itself,
    not just the placements the list scheduler derives from it.
    """

    def test_same_base_disjoint_offsets_do_not_alias(self):
        from repro.sched import may_alias

        st_node = store(Reg(1), 10, 0)
        ld_node = load(2, 10, 8)
        assert not may_alias(st_node, 0, ld_node, 0)

    def test_same_base_overlapping_offsets_alias(self):
        from repro.sched import may_alias

        st_node = store(Reg(1), 10, 0)
        for offset in (-3, 0, 3):  # 4-byte word accesses overlap
            assert may_alias(st_node, 0, load(2, 10, offset), 0)

    def test_sp_gp_segments_never_alias(self):
        from repro.isa.registers import GP, SP
        from repro.sched import may_alias

        # Disjoint segments exonerate even differing base versions.
        assert not may_alias(store(Reg(1), SP, 0), 0, load(2, GP, 0), 3)
        assert not may_alias(store(Reg(1), GP, 4), 2, load(2, SP, 4), 0)

    def test_redefined_base_is_pessimistic(self):
        from repro.sched import may_alias

        # Same base register but different versions: offsets are not
        # comparable, so disjoint ranges must still report aliasing.
        st_node = store(Reg(1), 10, 0)
        ld_node = load(2, 10, 8)
        assert may_alias(st_node, 0, ld_node, 1)

    def test_different_plain_bases_are_conservative(self):
        from repro.sched import may_alias

        assert may_alias(store(Reg(1), 10, 0), 0, load(2, 11, 64), 0)

    def test_build_dependences_orders_store_then_load(self):
        from repro.sched import build_dependences

        nodes = [store(Reg(1), 10, 0), load(2, 10, 0), ret()]
        preds = build_dependences(nodes, MEM_A)
        # Store-involved aliasing pair carries the write-buffer latency.
        assert (0, 1) in preds[1]

    def test_build_dependences_skips_load_load(self):
        from repro.sched import build_dependences

        nodes = [load(1, 10, 0), load(2, 10, 0), ret()]
        preds = build_dependences(nodes, MEM_A)
        assert all(pred != 0 for pred, _ in preds[1])

    def test_build_dependences_edges_point_backward(self):
        from repro.sched import build_dependences

        nodes = [
            movi(1, 1),
            store(Reg(1), 10, 0),
            load(2, 10, 0),
            alu(AluOp.ADD, 1, Reg(2), Imm(1)),
            ret(),
        ]
        preds = build_dependences(nodes, MEM_C)
        for index, plist in enumerate(preds):
            assert all(pred < index for pred, _ in plist)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=6),   # dest
            st.integers(min_value=1, max_value=6),   # src
            st.integers(min_value=0, max_value=3),   # op selector
        ),
        min_size=1,
        max_size=20,
    ),
    st.sampled_from([1, 2, 5, 8]),
)
def test_random_blocks_schedule_completely(spec, issue_index):
    """Property: scheduling always covers each node once, in dep order."""
    ops = [AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.XOR]
    body = [
        alu(ops[op], dest, Reg(src), Imm(3))
        for dest, src, op in spec
    ]
    sched, nodes = schedule(body, issue=ISSUE_MODELS[issue_index])
    seen = sorted(i for word in sched.words for i in word)
    assert seen == list(range(len(nodes)))
    placement = cycle_of(sched)
    # Flow dependences respected.
    last_writer = {}
    for index, node in enumerate(body):
        src = node.src1.index
        if src in last_writer:
            assert placement[index] > placement[last_writer[src]]
        last_writer[node.dest] = index
