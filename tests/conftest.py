"""Shared fixtures: compiled programs and prepared workloads are expensive,
so they are built once per session and shared."""

from __future__ import annotations

import pytest

from repro.lang import compile_source
from repro.workloads import WORKLOADS, prepared


#: A small but feature-complete program used by many execution tests.
SUMLOOP_SOURCE = """
int data[64];

int sum_range(int lo, int hi) {
    int total = 0;
    int i;
    for (i = lo; i < hi; i++) total += data[i];
    return total;
}

int main() {
    int i;
    for (i = 0; i < 64; i++) data[i] = i * 3 + 1;
    return sum_range(0, 64) % 251;
}
"""


@pytest.fixture(scope="session")
def sumloop_program():
    return compile_source(SUMLOOP_SOURCE)


@pytest.fixture(scope="session")
def grep_prepared():
    """Prepared grep workload (compile + profile + enlarge + traces)."""
    return prepared(WORKLOADS["grep"])


@pytest.fixture(scope="session")
def sort_prepared():
    return prepared(WORKLOADS["sort"])
