"""Fault-injection layer tests: plans, the engine, hardened sites.

Covers the FaultPlan document format and its validation, the seeded
deterministic ChaosEngine, the zero-cost disabled path (tripwire), the
quarantine behaviour of the cache and artifact stores, journal
torn-tail healing, admission Retry-After hints, the retrying service
client, and small end-to-end convergence drills through ``run_chaos``.
"""

import json
import os

import pytest

from repro.chaos import (
    ChaosCrash,
    ChaosEngine,
    ChaosIOError,
    FaultPlan,
    FaultRule,
    PlanError,
    activate,
    current,
    deactivate,
    smoke_plan,
)
from repro.harness.cache import ResultCache
from repro.harness.checkpoint import SweepCheckpoint
from repro.harness.errors import SimulationHang, classify_error, is_transient
from repro.harness.executor import ExecutionPolicy, PointExecutor
from repro.harness.runner import SweepRunner
from repro.machine.config import (
    BranchMode,
    Discipline,
    MachineConfig,
)
from repro.service.client import (
    AdmissionRejected,
    JobNotFound,
    ServiceClient,
    ServiceError,
)
from repro.service.jobs import GridSpec, JobJournal
from repro.service.scheduler import AdmissionError, JobScheduler
from repro.stats.results import SimResult
from repro.telemetry import MetricsCollector


def make_config(**overrides):
    defaults = dict(
        discipline=Discipline.STATIC,
        issue_model=2,
        memory="A",
        branch_mode=BranchMode.SINGLE,
        window_blocks=1,
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


def fake_result(config, benchmark="grep", cycles=1000):
    return SimResult(
        benchmark=benchmark, config=config, cycles=cycles,
        retired_nodes=4 * cycles, discarded_nodes=100, dynamic_blocks=800,
        mispredicts=10, branch_lookups=100, faults=2, loads=300,
        stores=200, cache_accesses=500, cache_misses=25,
        write_buffer_hits=40, issue_words=1000, issued_slots=4100,
    )


@pytest.fixture(autouse=True)
def no_leaked_engine():
    """Every test starts and ends with chaos disabled."""
    if current() is not None:
        deactivate()
    yield
    if current() is not None:
        deactivate()


# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = smoke_plan(7, "service")
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.seed == 7
        assert clone.name == "smoke-service"

    def test_smoke_plan_coverage_floor(self):
        for mode, min_sites in (("sweep", 8), ("service", 9)):
            plan = smoke_plan(7, mode)
            sites = {rule.site for rule in plan.rules}
            kinds = {rule.kind for rule in plan.rules}
            assert len(sites) >= min_sites
            assert len(kinds) >= 6

    def test_schema_checked(self):
        raw = json.loads(smoke_plan(7, "sweep").to_json())
        raw["schema"] = "something-else"
        with pytest.raises(PlanError):
            FaultPlan.from_json(json.dumps(raw))

    def test_unknown_site_rejected(self):
        with pytest.raises(PlanError):
            FaultRule("no.such.site", "delay", hits=(1,))

    def test_kind_must_match_site(self):
        # cache.read tolerates corruption and latency, never a crash.
        with pytest.raises(PlanError):
            FaultRule("cache.read", "crash", hits=(1,))

    def test_rule_must_be_able_to_fire(self):
        with pytest.raises(PlanError):
            FaultRule("cache.read", "corrupt")  # no hits, p=0

    def test_hits_are_positive_ints(self):
        with pytest.raises(PlanError):
            FaultRule("cache.read", "corrupt", hits=(0,))

    def test_budget_kind_needs_budget(self):
        with pytest.raises(PlanError):
            FaultRule("engine.budget", "budget", hits=(1,))
        rule = FaultRule("engine.budget", "budget", hits=(1,), budget=64)
        assert rule.budget == 64

    def test_unknown_field_rejected(self):
        raw = FaultRule("cache.read", "corrupt", hits=(1,)).to_dict()
        raw["surprise"] = True
        with pytest.raises(PlanError):
            FaultRule.from_dict(raw)

    def test_unknown_errno_rejected(self):
        with pytest.raises(PlanError):
            FaultRule("cache.write", "io-error", hits=(1,),
                      errno_name="ENOSUCHERRNO")


# ----------------------------------------------------------------------
class TestChaosEngine:
    def plan(self, *rules, seed=7):
        return FaultPlan(seed=seed, rules=tuple(rules), name="test")

    def test_hit_indexing_is_deterministic(self):
        plan = self.plan(FaultRule("cache.read", "corrupt", hits=(2, 4)))
        for _ in range(2):  # two identical engines, identical outcomes
            eng = ChaosEngine(plan)
            fired = [eng.act("cache.read", ("corrupt",)) is not None
                     for _ in range(5)]
            assert fired == [False, True, False, True, False]

    def test_io_error_has_errno(self):
        import errno

        plan = self.plan(FaultRule("cache.write", "io-error", hits=(1,)))
        eng = ChaosEngine(plan)
        with pytest.raises(ChaosIOError) as excinfo:
            eng.act("cache.write", ("io-error",))
        assert excinfo.value.errno == errno.ENOSPC
        assert isinstance(excinfo.value, OSError)

    def test_crash_raises_and_is_transient(self):
        plan = self.plan(FaultRule("point.simulate", "crash", hits=(1,)))
        eng = ChaosEngine(plan)
        with pytest.raises(ChaosCrash) as excinfo:
            eng.act("point.simulate", ("crash",))
        assert is_transient(excinfo.value)
        assert classify_error(excinfo.value) == "worker-crash"

    def test_kind_filter(self):
        # The site only asks for kinds it can enact; a torn-write rule
        # must not fire at a site that only advertised io-error.
        plan = self.plan(
            FaultRule("journal.append", "torn-write", hits=(1,))
        )
        eng = ChaosEngine(plan)
        assert eng.act("journal.append", ("io-error",)) is None

    def test_max_injections_bounds_p_rules(self):
        plan = self.plan(
            FaultRule("cache.read", "delay", p=1.0, max_injections=2,
                      delay_s=0.0)
        )
        eng = ChaosEngine(plan)
        fired = [eng.act("cache.read", ("delay",)) is not None
                 for _ in range(5)]
        assert fired.count(True) == 2

    def test_p_rules_seeded(self):
        rule = FaultRule("cache.read", "delay", p=0.5, max_injections=50,
                         delay_s=0.0)
        runs = []
        for _ in range(2):
            eng = ChaosEngine(self.plan(rule, seed=123))
            runs.append(tuple(
                eng.act("cache.read", ("delay",)) is not None
                for _ in range(40)
            ))
        assert runs[0] == runs[1]
        assert any(runs[0])

    def test_counters(self):
        plan = self.plan(FaultRule("cache.read", "corrupt", hits=(1,)))
        eng = ChaosEngine(plan)
        eng.act("cache.read", ("corrupt",))
        eng.mark_recovered("cache.read")
        assert eng.injected == {"cache.read/corrupt": 1}
        assert eng.recovered == {"cache.read": 1}

    def test_activation_lifecycle(self):
        plan = self.plan(FaultRule("cache.read", "corrupt", hits=(1,)))
        eng = ChaosEngine(plan)
        assert current() is None
        activate(eng)
        assert current() is eng
        with pytest.raises(RuntimeError):
            activate(ChaosEngine(plan))
        deactivate()
        assert current() is None


# ----------------------------------------------------------------------
class TestDisabledPathTripwire:
    """With no active engine, no hardened site may touch the engine."""

    def test_sites_never_call_engine_when_disabled(
        self, tmp_path, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise AssertionError("chaos engine touched while disabled")

        monkeypatch.setattr(ChaosEngine, "act", boom)
        monkeypatch.setattr(ChaosEngine, "mark_recovered", boom)

        config = make_config()
        cache = ResultCache(path=str(tmp_path / "results.json"))
        cache.put(fake_result(config), scale=1)
        assert cache.get("grep", config, 1) is not None
        checkpoint = SweepCheckpoint(
            str(tmp_path / "sweep.state.json"), ["grep"], 1, total=1
        )
        checkpoint.mark_done("some-key")
        checkpoint.save()
        journal = JobJournal(str(tmp_path / "journal.jsonl"))
        journal.append({"event": "accept", "job_id": "j-1"})
        journal.close()
        assert len(JobJournal.replay(str(tmp_path / "journal.jsonl"))) == 1


# ----------------------------------------------------------------------
class TestCacheQuarantine:
    def test_corrupt_file_is_quarantined_not_deleted(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text("{ not json", encoding="utf-8")
        collector = MetricsCollector()
        cache = ResultCache(path=str(path), collector=collector)
        assert cache.get("grep", make_config(), 1) is None
        assert collector.counters["cache.corrupt"] == 1
        assert collector.counters["cache.quarantined"] == 1
        assert not path.exists()
        pen = tmp_path / ".quarantine"
        assert (pen / "results.json").read_text(
            encoding="utf-8"
        ) == "{ not json"

    def test_corrupt_entry_gets_a_sidecar(self, tmp_path):
        path = tmp_path / "results.json"
        config = make_config()
        seed_cache = ResultCache(path=str(path))
        seed_cache.put(fake_result(config), scale=1)
        document = json.loads(path.read_text(encoding="utf-8"))
        (key,) = document.keys()
        document[key] = {"cycles": "not-a-number"}
        path.write_text(json.dumps(document), encoding="utf-8")

        collector = MetricsCollector()
        cache = ResultCache(path=str(path), collector=collector)
        assert cache.get("grep", config, 1) is None
        assert collector.counters["cache.corrupt"] == 1
        pen = tmp_path / ".quarantine"
        sidecars = list(pen.glob("entry-*.json"))
        assert len(sidecars) == 1
        preserved = json.loads(sidecars[0].read_text(encoding="utf-8"))
        assert preserved["key"] == key
        assert preserved["raw"] == {"cycles": "not-a-number"}
        # The bad entry was dropped; a recompute-and-put must stick.
        cache.put(fake_result(config), scale=1)
        assert cache.get("grep", config, 1) is not None

    def test_failed_flush_retries_on_next_put(self, tmp_path, monkeypatch):
        import repro.harness.cache as cache_module

        path = tmp_path / "results.json"
        cache = ResultCache(path=str(path))
        real_write = cache_module.atomic_write_json
        attempts = {"n": 0}

        def flaky(*args, **kwargs):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise OSError(28, "disk full")
            return real_write(*args, **kwargs)

        monkeypatch.setattr(cache_module, "atomic_write_json", flaky)
        config_a = make_config()
        config_b = make_config(memory="C")
        with pytest.raises(OSError):
            cache.put(fake_result(config_a), scale=1)
        cache.put(fake_result(config_b), scale=1)  # flush retried here
        document = json.loads(path.read_text(encoding="utf-8"))
        assert len(document) == 2  # the first put's entry landed too


class TestArtifactQuarantine:
    def test_corrupt_artifact_dir_is_quarantined(self, tmp_path):
        from repro.harness.artifacts import ArtifactStore
        from repro.workloads import WORKLOADS

        store = ArtifactStore(root=str(tmp_path),
                              collector=MetricsCollector())
        workload = WORKLOADS["grep"]
        loaded = workload.prepare(scale=1)
        directory = store.save(workload, 1, loaded)
        assert store.load(workload, 1) is not None

        # Garble a payload file without touching the manifest.
        (victim,) = [
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.endswith("single.trace")
        ]
        with open(victim, "w", encoding="utf-8") as handle:
            handle.write("garbage")

        assert store.load(workload, 1) is None
        assert store.collector.counters["artifacts.quarantined"] == 1
        assert not os.path.exists(directory)
        pen = os.path.join(str(tmp_path), ".quarantine")
        assert os.listdir(pen) == [os.path.basename(directory)]
        # The store recovers by re-preparing into a clean directory.
        store.save(workload, 1, loaded)
        assert store.load(workload, 1) is not None


# ----------------------------------------------------------------------
class TestJournalTornTail:
    def record(self, n):
        return {"event": "accept", "job_id": f"j-{n}", "seq": n}

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.append(self.record(1))
        journal.append(self.record(2))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "acc')  # the crash artefact
        collector = MetricsCollector()
        records = JobJournal.replay(path, collector=collector)
        assert [record["seq"] for record in records] == [1, 2]
        assert collector.counters["journal.torn_tail"] == 1
        assert "journal.garbled" not in collector.counters

    def test_garbled_middle_record_counted_separately(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.append(self.record(1))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("#### flipped bits ####\n")
        journal = JobJournal(path)
        journal.append(self.record(3))
        journal.close()
        collector = MetricsCollector()
        records = JobJournal.replay(path, collector=collector)
        assert [record["seq"] for record in records] == [1, 3]
        assert collector.counters["journal.garbled"] == 1

    def test_heal_on_open_terminates_fragment(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.append(self.record(1))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "torn')  # no newline: writer died
        journal = JobJournal(path)
        journal.append(self.record(2))  # must not glue onto the fragment
        journal.close()
        records = JobJournal.replay(path)
        assert [record["seq"] for record in records] == [1, 2]


class TestCheckpointWriteFailure:
    def test_save_failure_tolerated_and_retried(self, tmp_path, monkeypatch):
        import repro.harness.checkpoint as checkpoint_module

        path = str(tmp_path / "sweep.state.json")
        checkpoint = SweepCheckpoint(path, ["grep"], 1, total=10,
                                     save_interval=1)
        real_write = checkpoint_module.atomic_write_json
        fail = {"on": True}

        def flaky(*args, **kwargs):
            if fail["on"]:
                raise OSError(28, "disk full")
            return real_write(*args, **kwargs)

        monkeypatch.setattr(checkpoint_module, "atomic_write_json", flaky)
        checkpoint.mark_done("key-1")  # save fails, swallowed
        assert not os.path.exists(path)
        fail["on"] = False
        checkpoint.mark_done("key-2")  # retried save lands both keys
        loaded = SweepCheckpoint.load(path)
        assert loaded is not None
        assert loaded.done == {"key-1", "key-2"}


# ----------------------------------------------------------------------
class TestRetryAfterHints:
    def scheduler(self, tmp_path, **kwargs):
        runner = SweepRunner(benchmarks=["grep"], scale=1, use_cache=False)
        return JobScheduler(
            runner, journal_path=str(tmp_path / "journal.jsonl"), **kwargs
        )

    def spec(self, limit=1):
        return GridSpec.from_dict(
            {"benchmarks": ["grep"], "grid": "smoke", "limit": limit}
        )

    def test_stopped_carries_retry_after(self, tmp_path):
        scheduler = self.scheduler(tmp_path)
        scheduler._stop_requested = True
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(self.spec())
        assert excinfo.value.reason == "stopped"
        assert excinfo.value.http_status == 503
        assert excinfo.value.retry_after_s == 10.0

    def test_job_too_large_carries_retry_after(self, tmp_path):
        scheduler = self.scheduler(tmp_path, max_job_points=2)
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(self.spec(limit=5))
        assert excinfo.value.reason == "job-too-large"
        assert excinfo.value.retry_after_s == 60.0

    def test_journal_error_rejection_rolls_back_seq(
        self, tmp_path, monkeypatch
    ):
        scheduler = self.scheduler(tmp_path)

        def broken_append(record):
            raise OSError(28, "disk full")

        original = scheduler._journal.append
        monkeypatch.setattr(scheduler._journal, "append", broken_append)
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(self.spec())
        assert excinfo.value.reason == "journal-error"
        assert excinfo.value.http_status == 503
        assert excinfo.value.retry_after_s == 1.0
        assert scheduler.stats["jobs.rejected.journal-error"] == 1
        # Nothing was registered: no job, no queue entry ...
        assert scheduler.jobs() == []
        # ... and the seq rolled back, so the retry gets the id the
        # failed attempt would have had (identical to a fault-free run).
        monkeypatch.setattr(scheduler._journal, "append", original)
        job = scheduler.submit(self.spec())
        assert job["job_id"].endswith("-0001")


# ----------------------------------------------------------------------
class TestClientRetries:
    def client(self, responses, **kwargs):
        """A client whose transport is scripted: exceptions or payloads."""
        import random

        sleeps = []
        kwargs.setdefault("retries", 3)
        kwargs.setdefault("backoff_s", 0.25)
        kwargs.setdefault("rng", random.Random(7))
        client = ServiceClient("http://127.0.0.1:1",
                               sleep=sleeps.append, **kwargs)
        script = list(responses)

        def scripted(method, path, body=None, timeout_s=None):
            action = script.pop(0)
            if isinstance(action, Exception):
                raise action
            return action

        client._request_once = scripted
        return client, sleeps

    def test_admission_rejection_retried_with_hint(self):
        client, sleeps = self.client([
            AdmissionRejected("queue-full", "full", retry_after_s=0.1),
            AdmissionRejected("queue-full", "full", retry_after_s=0.1),
            {"ok": True},
        ])
        assert client.health() == {"ok": True}
        assert len(sleeps) == 2
        # Retry-After overrides the exponential base; jitter is bounded
        # by half the configured backoff.
        for delay in sleeps:
            assert 0.1 <= delay <= 0.1 + 0.125

    def test_nonretryable_reason_raises_immediately(self):
        client, sleeps = self.client([
            AdmissionRejected("scale-mismatch", "wrong scale"),
            {"ok": True},
        ])
        with pytest.raises(AdmissionRejected):
            client.health()
        assert sleeps == []

    def test_transport_errors_retried(self):
        flaky = ServiceError("connection dropped")
        flaky.retryable = True
        client, sleeps = self.client([flaky, {"ok": True}])
        assert client.health() == {"ok": True}
        assert len(sleeps) == 1

    def test_job_not_found_never_retried(self):
        client, sleeps = self.client([JobNotFound("no such job"), {}])
        with pytest.raises(JobNotFound):
            client.health()
        assert sleeps == []

    def test_retries_exhausted_reraises(self):
        flaky = ServiceError("down")
        flaky.retryable = True
        client, sleeps = self.client([flaky] * 3, retries=2)
        with pytest.raises(ServiceError):
            client.health()
        assert len(sleeps) == 2

    def test_backoff_is_seeded_and_capped(self):
        import random

        delays = []
        for _ in range(2):
            client = ServiceClient(
                "http://127.0.0.1:1", retries=5, backoff_s=0.25,
                max_backoff_s=1.0, rng=random.Random(42),
            )
            delays.append([
                client._retry_delay(attempt, None)
                for attempt in range(1, 6)
            ])
        assert delays[0] == delays[1]  # same seed, same jitter
        assert all(delay <= 1.0 + 0.125 for delay in delays[0])


# ----------------------------------------------------------------------
class TestExecutorRetryKinds:
    def test_hang_retried_only_when_granted(self, tmp_path):
        for retry_kinds, expect_ok in (((), False), (("hang",), True)):
            runner = SweepRunner(benchmarks=["grep"], scale=1,
                                 use_cache=False)
            config = make_config()
            calls = {"n": 0}

            def hang_once(benchmark, cfg):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise SimulationHang("grep", str(cfg), 64, 64)
                return fake_result(cfg)

            runner.simulate_point = hang_once
            executor = PointExecutor(runner, ExecutionPolicy(
                retries=2, backoff_s=0.0, retry_kinds=retry_kinds,
            ))
            outcome = executor.execute("grep", config)
            if expect_ok:
                assert isinstance(outcome, SimResult)
                assert calls["n"] == 2
            else:
                assert outcome.kind == "hang"
                assert calls["n"] == 1


# ----------------------------------------------------------------------
class TestEndToEndChaos:
    def test_engine_budget_fault_trips_watchdog(self):
        plan = FaultPlan(seed=7, rules=(
            FaultRule("engine.budget", "budget", hits=(1,), budget=64),
        ), name="budget-test")
        runner = SweepRunner(benchmarks=["grep"], scale=1, use_cache=False)
        activate(ChaosEngine(plan))
        try:
            with pytest.raises(SimulationHang):
                runner.simulate_point("grep", make_config())
        finally:
            deactivate()
        # Fault-free rerun of the same point succeeds.
        result = runner.simulate_point("grep", make_config())
        assert result.cycles > 64

    def test_sweep_mode_converges(self):
        from repro.chaos.harness import run_chaos

        plan = FaultPlan(seed=11, rules=(
            FaultRule("cache.write", "io-error", hits=(1,)),
            FaultRule("cache.read", "corrupt", hits=(2,)),
            FaultRule("point.simulate", "crash", hits=(3,)),
        ), name="sweep-mini")
        report = run_chaos("sweep", plan, limit=4)
        assert report.converged, report.problems
        assert report.injected == {
            "cache.write/io-error": 1,
            "cache.read/corrupt": 1,
            "point.simulate/crash": 1,
        }
        assert report.recovered["cache.write"] == 1
        assert report.recovered["cache.read"] == 1
        assert report.recovered["executor.retry"] == 1

    def test_service_mode_converges(self):
        from repro.chaos.harness import run_chaos

        plan = FaultPlan(seed=11, rules=(
            FaultRule("journal.append", "torn-write", hits=(3,)),
            FaultRule("journal.append", "io-error", hits=(4,)),
            FaultRule("http.request", "http-503", hits=(2,)),
        ), name="service-mini")
        report = run_chaos("service", plan, limit=4)
        assert report.converged, report.problems
        assert set(report.job_states.values()) == {"done"}
        assert len(report.job_states) == 2
        assert report.injected["journal.append/torn-write"] == 1
        assert report.injected["journal.append/io-error"] == 1
        assert report.recovered["journal.append"] >= 1


class TestChaosCLI:
    def test_plan_and_smoke_are_exclusive(self, tmp_path):
        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(smoke_plan(7, "sweep").to_json(),
                             encoding="utf-8")
        assert main(["chaos", "--smoke", "--plan", str(plan_path)]) == 1

    def test_bad_plan_file_is_fatal(self, tmp_path):
        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text("{ not json", encoding="utf-8")
        assert main(["chaos", "--plan", str(plan_path)]) == 1

    def test_custom_plan_drill_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        plan = FaultPlan(seed=5, rules=(
            FaultRule("cache.write", "io-error", hits=(1,)),
        ), name="cli-mini")
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json(), encoding="utf-8")
        plan_out = tmp_path / "effective.json"
        exit_code = main([
            "chaos", "--plan", str(plan_path), "--limit", "2",
            "--mode", "sweep", "--plan-out", str(plan_out),
        ])
        assert exit_code == 0
        assert FaultPlan.from_json(
            plan_out.read_text(encoding="utf-8")
        ) == plan
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"): out.rindex("}") + 1])
        assert report["converged"] is True
