"""Mini-C lexer tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while whilex _bar x9")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.KEYWORD,
            TokenType.IDENT,
            TokenType.KEYWORD,
            TokenType.IDENT,
            TokenType.IDENT,
            TokenType.IDENT,
        ]

    def test_decimal_and_hex_numbers(self):
        assert values("0 42 0x10 0XFF") == [0, 42, 16, 255]

    def test_char_literals(self):
        assert values(r"'a' '\n' '\0' '\\' '\''") == [97, 10, 0, 92, 39]

    def test_string_literal(self):
        tokens = tokenize(r'"hi\tthere"')
        assert tokens[0].value == "hi\tthere"

    def test_position_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestComments:
    def test_line_comment(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")


class TestPunctuators:
    def test_maximal_munch(self):
        assert values("a<<=b") == ["a", "<<=", "b"]
        assert values("a<<b") == ["a", "<<", "b"]
        assert values("a<b") == ["a", "<", "b"]
        assert values("x+++y") == ["x", "++", "+", "y"]

    def test_all_compound_assigns(self):
        source = "+= -= *= /= %= &= |= ^= <<= >>="
        assert values(source) == source.split()


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")
