"""Struct support: layout, member access, pointers, semantic rules."""

import pytest

from repro.interp import run_program
from repro.lang import compile_source
from repro.lang.ctypes import CType, StructLayout
from repro.lang.errors import ParseError, SemanticError
from repro.lang.parser import parse_source


def run(source, optimize=True):
    return run_program(compile_source(source, optimize=optimize),
                       inputs={0: b""})


class TestLayout:
    def test_natural_alignment_and_padding(self):
        layout = StructLayout("t", [
            ("c", CType.char()),
            ("n", CType.int_()),
            ("d", CType.char()),
        ])
        assert layout.member("c") == (0, CType.char())
        assert layout.member("n")[0] == 4  # padded past the char
        assert layout.member("d")[0] == 8
        assert layout.size_bytes == 12  # rounded up to int alignment

    def test_char_only_struct_packs(self):
        layout = StructLayout("t", [("a", CType.char()), ("b", CType.char())])
        assert layout.size_bytes == 2
        assert layout.align_bytes == 1

    def test_nested_struct_offsets(self):
        inner = StructLayout("inner", [("x", CType.int_()), ("y", CType.int_())])
        outer = StructLayout("outer", [
            ("tag", CType.char()),
            ("body", CType.struct_(inner)),
        ])
        assert outer.member("body")[0] == 4
        assert outer.size_bytes == 12

    def test_array_member(self):
        layout = StructLayout("t", [("v", CType.array(CType.int_(), 5))])
        assert layout.size_bytes == 20

    def test_duplicate_member_rejected(self):
        with pytest.raises(ValueError):
            StructLayout("t", [("x", CType.int_()), ("x", CType.int_())])

    def test_incomplete_struct_has_no_size(self):
        layout = StructLayout("t")
        with pytest.raises(ValueError):
            CType.struct_(layout).size()

    def test_empty_struct_occupies_space(self):
        layout = StructLayout("t", [])
        assert layout.size_bytes >= 1


class TestParsing:
    def test_declaration_registers_tag(self):
        unit = parse_source(
            "struct p { int x; int y; }; int main() { return sizeof(struct p); }"
        )
        assert unit.structs[0].tag == "p"
        assert unit.structs[0].layout.size_bytes == 8

    def test_unknown_tag_rejected(self):
        with pytest.raises(ParseError):
            parse_source("int main() { struct nope n; return 0; }")

    def test_redefinition_rejected(self):
        with pytest.raises(ParseError):
            parse_source("struct a { int x; }; struct a { int y; }; "
                         "int main() { return 0; }")

    def test_self_reference_by_pointer_ok(self):
        parse_source("struct n { int v; struct n *next; }; "
                     "int main() { return 0; }")

    def test_self_reference_by_value_rejected(self):
        with pytest.raises(ParseError):
            parse_source("struct n { int v; struct n inner; }; "
                         "int main() { return 0; }")

    def test_multi_declarator_members(self):
        unit = parse_source("struct p { int x, y, *z; }; "
                            "int main() { return sizeof(struct p); }")
        layout = unit.structs[0].layout
        assert set(layout.members) == {"x", "y", "z"}
        assert layout.member("z")[1].is_pointer


class TestSemantics:
    def test_unknown_member_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("struct p { int x; }; "
                           "int main() { struct p q; return q.zzz; }")

    def test_dot_on_non_struct_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { int x; return x.y; }")

    def test_arrow_on_non_pointer_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("struct p { int x; }; "
                           "int main() { struct p q; return q->x; }")

    def test_whole_struct_assignment_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("struct p { int x; }; "
                           "int main() { struct p a; struct p b; a = b; }")

    def test_struct_param_by_value_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("struct p { int x; }; "
                           "int f(struct p q) { return 0; } "
                           "int main() { return 0; }")

    def test_struct_return_by_value_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("struct p { int x; }; "
                           "struct p f() { } int main() { return 0; }")

    def test_struct_as_scalar_value_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("struct p { int x; }; "
                           "int main() { struct p q; return q + 1; }")


class TestExecution:
    @pytest.mark.parametrize("optimize", [True, False], ids=["opt", "noopt"])
    def test_member_read_write(self, optimize):
        source = """
        struct point { int x; int y; };
        int main() {
            struct point p;
            p.x = 3;
            p.y = p.x * 7;
            return p.y - p.x;
        }
        """
        assert run(source, optimize).exit_code == 18

    def test_global_struct(self):
        source = """
        struct counter { int hits; char tag; };
        struct counter c;
        void bump() { c.hits++; }
        int main() {
            c.tag = 88;
            bump(); bump(); bump();
            return c.hits * 100 + c.tag;
        }
        """
        assert run(source).exit_code == 388

    def test_array_of_structs(self):
        source = """
        struct item { int key; int weight; };
        struct item items[8];
        int main() {
            int i; int total = 0;
            for (i = 0; i < 8; i++) {
                items[i].key = i;
                items[i].weight = i * 2;
            }
            for (i = 0; i < 8; i++) total += items[i].weight;
            return total;
        }
        """
        assert run(source).exit_code == 56

    def test_pointer_arrow_chain(self):
        source = """
        struct node { int value; struct node *next; };
        int main() {
            struct node a; struct node b; struct node c;
            a.value = 5; b.value = 6; c.value = 7;
            a.next = &b; b.next = &c; c.next = 0;
            return a.next->next->value * 10 + a.next->value;
        }
        """
        assert run(source).exit_code == 76

    def test_nested_struct_members(self):
        source = """
        struct point { int x; int y; };
        struct rect { struct point lo; struct point hi; };
        int main() {
            struct rect r;
            r.lo.x = 1; r.lo.y = 2; r.hi.x = 9; r.hi.y = 12;
            return (r.hi.x - r.lo.x) * (r.hi.y - r.lo.y);
        }
        """
        assert run(source).exit_code == 80

    def test_struct_pointer_function_arg(self):
        source = """
        struct acc { int total; };
        void add(struct acc *a, int v) { a->total += v; }
        int main() {
            struct acc a;
            a.total = 0;
            add(&a, 3); add(&a, 4);
            return a.total;
        }
        """
        assert run(source).exit_code == 7

    def test_struct_on_heap(self):
        source = """
        struct pair { int a; int b; };
        int main() {
            struct pair *p = sbrk(sizeof(struct pair) * 3);
            int i;
            for (i = 0; i < 3; i++) { p[i].a = i; p[i].b = i * i; }
            return p[2].a + p[2].b + (p + 1)->a;
        }
        """
        assert run(source).exit_code == 7

    def test_char_member_truncates(self):
        source = """
        struct s { char c; int pad; };
        int main() {
            struct s v;
            v.c = 300;
            return v.c;
        }
        """
        assert run(source).exit_code == 44

    def test_address_of_member(self):
        source = """
        struct s { int a; int b; };
        int main() {
            struct s v;
            int *p = &v.b;
            *p = 42;
            return v.b;
        }
        """
        assert run(source).exit_code == 42

    def test_member_incdec(self):
        source = """
        struct s { int n; };
        int main() {
            struct s v;
            v.n = 10;
            v.n++;
            ++v.n;
            v.n--;
            return v.n;
        }
        """
        assert run(source).exit_code == 11

    def test_member_compound_assign(self):
        source = """
        struct s { int n; };
        int main() {
            struct s v;
            v.n = 10;
            v.n *= 3;
            v.n -= 5;
            return v.n;
        }
        """
        assert run(source).exit_code == 25

    def test_sizeof_struct(self):
        source = """
        struct a { char c; };
        struct b { char c; int n; };
        int main() { return sizeof(struct a) * 100 + sizeof(struct b); }
        """
        assert run(source).exit_code == 108

    def test_linked_list_traversal(self):
        source = """
        struct node { int value; struct node *next; };
        int main() {
            struct node *head = 0;
            int i;
            for (i = 1; i <= 5; i++) {
                struct node *n = sbrk(sizeof(struct node));
                n->value = i * i;
                n->next = head;
                head = n;
            }
            int total = 0;
            while (head) {
                total += head->value;
                head = head->next;
            }
            return total;
        }
        """
        assert run(source).exit_code == 55
