"""Value-prediction subsystem tests.

Three layers, mirroring DESIGN.md §16:

* predictor-family unit behaviour: warm-up gating, confidence
  saturation and reset, direct-mapped eviction, the oracle's protocol;
* engine integration: speculative operand delivery hides load latency
  without ever changing the architectural work retired, including under
  hypothesis-driven *chaotic* predictors that deliver arbitrary values
  at arbitrary moments (the squash/replay path must be semantics-free);
* determinism: crc32-keyed tables make mispredict and value-speculation
  counts identical across processes with different ``PYTHONHASHSEED``.
"""

import json
import multiprocessing
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import run_program
from repro.machine import (
    BranchMode,
    Discipline,
    MachineConfig,
    build_templates,
)
from repro.machine.dynamic import DynamicEngine
from repro.predict import (
    CONFIDENCE_MAX,
    CONFIDENCE_THRESHOLD,
    ContextPredictor,
    LastValuePredictor,
    PerfectValuePredictor,
    StridePredictor,
    VALUE_PREDICTOR_KINDS,
    ValuePredictor,
    load_site,
    make_value_predictor,
)
from repro.program import parse_program


def drive(predictor, values, site="blk#3"):
    """Feed a value sequence through the two-call protocol."""
    delivered = []
    for actual in values:
        predicted = predictor.predict(site)
        delivered.append(predicted)
        predictor.update(site, actual, predicted)
    return delivered


# ----------------------------------------------------------------------
class TestFactory:
    @pytest.mark.parametrize("kind", [k for k in VALUE_PREDICTOR_KINDS
                                      if k != "none"])
    def test_all_kinds_construct(self, kind):
        predictor = make_value_predictor(kind)
        predictor.predict("b#0")
        predictor.update("b#0", 7, None)

    def test_none_is_not_a_predictor_object(self):
        with pytest.raises(ValueError):
            make_value_predictor("none")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_value_predictor("oracle")

    def test_load_site_identity(self):
        assert load_site("loop", 4) == "loop#4"

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LastValuePredictor(entries=0)
        with pytest.raises(ValueError):
            LastValuePredictor(threshold=0)
        with pytest.raises(ValueError):
            LastValuePredictor(threshold=5, maximum=3)


# ----------------------------------------------------------------------
class TestLastValue:
    def test_warm_up_gates_delivery(self):
        # First sight trains the table; the value must then repeat
        # `threshold` times before a prediction is delivered.
        predictor = LastValuePredictor()
        delivered = drive(predictor, [9] * (CONFIDENCE_THRESHOLD + 2))
        assert delivered[: CONFIDENCE_THRESHOLD + 1] == [None] * (
            CONFIDENCE_THRESHOLD + 1
        )
        assert delivered[-1] == 9
        assert predictor.confirmed == 1 and predictor.squashed == 0

    def test_miss_resets_confidence(self):
        predictor = LastValuePredictor()
        drive(predictor, [9] * 6)  # saturated and delivering
        delivered = drive(predictor, [5] + [5] * CONFIDENCE_THRESHOLD)
        assert delivered[0] == 9  # the stale delivery that squashes
        assert predictor.squashed == 1
        # After the reset the new value must re-earn its confidence.
        assert delivered[1: CONFIDENCE_THRESHOLD + 1] == [None] * (
            CONFIDENCE_THRESHOLD
        )

    def test_confidence_saturates_at_maximum(self):
        predictor = LastValuePredictor()
        drive(predictor, [4] * 20)
        slot = predictor._slot("blk#3")
        assert predictor._table[slot][2] == CONFIDENCE_MAX

    def test_collision_evicts_tag_and_training(self):
        predictor = LastValuePredictor(entries=1)
        drive(predictor, [9] * 6, site="a#0")
        # A different site maps to the same (only) slot: the occupant
        # and its saturated confidence are gone, not inherited.
        assert predictor.predict("b#0") is None
        predictor.update("b#0", 3, None)
        assert drive(predictor, [9], site="a#0") == [None]

    def test_accuracy_property(self):
        predictor = LastValuePredictor()
        assert predictor.accuracy == 1.0  # unused
        drive(predictor, [2] * 6 + [5])
        assert 0.0 < predictor.accuracy < 1.0


# ----------------------------------------------------------------------
class TestStride:
    def test_arithmetic_sequence_predicted(self):
        predictor = StridePredictor()
        values = list(range(0, 100, 8))
        delivered = drive(predictor, values)
        # First sight + one stride observation + warm-up, then hits.
        assert delivered[-1] == values[-1]
        assert predictor.confirmed > 0 and predictor.squashed == 0

    def test_zero_stride_degenerates_to_last_value(self):
        predictor = StridePredictor()
        delivered = drive(predictor, [7] * 8)
        assert delivered[-1] == 7

    def test_stride_change_resets(self):
        predictor = StridePredictor()
        drive(predictor, list(range(0, 48, 8)))
        delivered = drive(predictor, [100, 103, 106, 109, 112])
        assert delivered[0] == 48  # stale stride squashes once
        assert predictor.squashed == 1
        assert delivered[-1] == 112  # new stride re-earned confidence

    def test_collision_evicts(self):
        predictor = StridePredictor(entries=1)
        drive(predictor, list(range(0, 64, 8)), site="a#0")
        predictor.update("b#0", 1, None)
        assert drive(predictor, [64], site="a#0") == [None]


# ----------------------------------------------------------------------
class TestContext:
    def test_repeating_pattern_predicted(self):
        # Period-3 non-arithmetic sequence: a stride cannot lock on,
        # the 2-deep FCM can (each 2-history uniquely determines next).
        predictor = ContextPredictor()
        pattern = [7, 11, 13] * 8
        delivered = drive(predictor, pattern)
        assert delivered[-1] == pattern[-1]
        assert predictor.confirmed > 0

        stride = StridePredictor()
        stride_delivered = drive(stride, pattern)
        assert stride_delivered[-1] is None or stride.squashed > 0

    def test_history_warm_up(self):
        predictor = ContextPredictor(history=2)
        # With fewer than `history` values seen, no context exists.
        assert drive(predictor, [1, 2])[:2] == [None, None]

    def test_history_validation(self):
        with pytest.raises(ValueError):
            ContextPredictor(history=0)

    def test_level2_collision_evicts(self):
        predictor = ContextPredictor(entries=1)
        drive(predictor, [7, 11, 13] * 8, site="a#0")
        # Another site's contexts land in the same level-2 slot.
        drive(predictor, [2, 3, 5] * 4, site="b#0")
        before = predictor.squashed
        delivered = drive(predictor, [7, 11, 13] * 2, site="a#0")
        # The evicted contexts stop delivering (or squash on stale
        # data); either way nothing confirms from the clobbered table
        # until it retrains.
        assert delivered[0] is None or predictor.squashed > before


# ----------------------------------------------------------------------
class TestPerfect:
    def test_oracle_protocol(self):
        predictor = PerfectValuePredictor()
        assert predictor.perfect is True
        assert predictor.predict("a#0") is None  # needs the trace value
        predictor.update("a#0", 9, 9)
        assert predictor.predictions == 1
        assert predictor.confirmed == 1 and predictor.squashed == 0
        assert predictor.accuracy == 1.0


# ----------------------------------------------------------------------
class TestConfigValidation:
    @staticmethod
    def _config(**overrides):
        settings_ = dict(
            discipline=Discipline.DYNAMIC,
            issue_model=8,
            memory="A",
            branch_mode=BranchMode.SINGLE,
            window_blocks=256,
        )
        settings_.update(overrides)
        return MachineConfig(**settings_)

    def test_static_machine_rejects_value_prediction(self):
        with pytest.raises(ValueError):
            self._config(discipline=Discipline.STATIC, window_blocks=1,
                         value_predictor="last")

    def test_unknown_value_predictor_rejected(self):
        with pytest.raises(ValueError):
            self._config(value_predictor="oracle")

    @pytest.mark.parametrize("kind", VALUE_PREDICTOR_KINDS)
    def test_dynamic_machine_accepts_all_kinds(self, kind):
        assert self._config(value_predictor=kind).value_predictor == kind


# ----------------------------------------------------------------------
# Counter-protocol property: whatever the value stream, every delivered
# prediction settles exactly once and never outnumbers the lookups.
@given(values=st.lists(st.integers(min_value=-8, max_value=8),
                       min_size=1, max_size=80),
       kind=st.sampled_from(["last", "stride", "context"]))
@settings(max_examples=60, deadline=None)
def test_counter_protocol_holds_for_any_stream(values, kind):
    predictor = make_value_predictor(kind)
    drive(predictor, values)
    assert predictor.confirmed + predictor.squashed == predictor.predictions
    assert predictor.predictions <= predictor.lookups
    assert predictor.lookups == len(values)


# ----------------------------------------------------------------------
# Engine integration on hand-written assembly: a loop whose single
# static load walks an array, so each value-predictor kind sees the
# pattern its table is built for.
def _engine_result(asm, value_predictor="none", memory="C", **overrides):
    settings_ = dict(
        discipline=Discipline.DYNAMIC,
        issue_model=8,
        memory=memory,
        branch_mode=BranchMode.SINGLE,
        window_blocks=256,
        value_predictor=value_predictor,
    )
    settings_.update(overrides)
    config = MachineConfig(**settings_)
    program = parse_program(asm)
    outcome = run_program(program, inputs={0: b""})
    engine = DynamicEngine(build_templates(program), outcome.trace, config)
    return engine.run()


#: Store an arithmetic sequence, then loop-load it back: the loop's
#: load site sees values advancing by a constant stride of 8.
STRIDE_LOOP_ASM = """
.entry init
block init:
    mov r1, #8192
    mov r2, #0
    mov r3, #0
    jmp fill
block fill:
    mul r4, r2, #8
    mul r5, r2, #4
    add r6, r1, r5
    stw r4, [r6]
    add r2, r2, #1
    slt r7, r2, #24
    br r7, fill, loop !taken
block loop:
    mul r5, r3, #4
    add r6, r1, r5
    ldw r8, [r6]
    add r9, r9, r8
    add r3, r3, #1
    slt r7, r3, #24
    br r7, loop, done !taken
block done:
    sys exit(r9)
"""


#: Pointer chase: node i holds the address of node i+1, so the loads
#: form a serial 3-cycle-latency chain (memory C) that only value
#: prediction can break -- and the pointers advance by a constant 16,
#: exactly a stride predictor's pattern.
CHASE_ASM = """
.entry init
block init:
    mov r1, #8192
    mov r2, #0
    mov r7, #0
    jmp fill
block fill:
    mul r3, r2, #16
    add r4, r1, r3
    add r5, r4, #16
    stw r5, [r4]
    add r2, r2, #1
    slt r6, r2, #32
    br r6, fill, chase !taken
block chase:
    ldw r1, [r1]
    add r7, r7, #1
    slt r6, r7, #24
    br r6, chase, done !taken
block done:
    sys exit(r1)
"""


class TestEngineIntegration:
    @pytest.mark.parametrize("kind", VALUE_PREDICTOR_KINDS)
    def test_retired_work_is_invariant(self, kind):
        # Data speculation is a timing mechanism: the architectural
        # work retired must be byte-for-byte the baseline's.
        baseline = _engine_result(STRIDE_LOOP_ASM)
        result = _engine_result(STRIDE_LOOP_ASM, value_predictor=kind)
        assert result.retired_nodes == baseline.retired_nodes
        assert result.loads == baseline.loads
        assert result.stores == baseline.stores

    def test_stride_predictor_hides_load_latency(self):
        baseline = _engine_result(CHASE_ASM)
        stride = _engine_result(CHASE_ASM, value_predictor="stride")
        assert stride.value_predictions > 0
        assert stride.value_confirmed > 0
        assert stride.cycles < baseline.cycles

    def test_perfect_oracle_never_squashes(self):
        result = _engine_result(CHASE_ASM, value_predictor="perfect")
        assert result.value_squashed == 0
        assert result.value_predictions == result.value_confirmed > 0
        assert result.cycles <= _engine_result(
            CHASE_ASM, value_predictor="stride"
        ).cycles

    def test_counters_settle_exactly(self):
        for kind in ("last", "stride", "context"):
            result = _engine_result(STRIDE_LOOP_ASM, value_predictor=kind)
            assert (result.value_confirmed + result.value_squashed
                    == result.value_predictions)

    def test_none_records_nothing(self):
        result = _engine_result(STRIDE_LOOP_ASM)
        assert result.value_predictions == 0
        assert result.value_replays == 0


# ----------------------------------------------------------------------
# Chaotic speculation: a predictor that delivers hypothesis-chosen
# values at hypothesis-chosen moments.  However the squash/replay
# interleaving lands, the machine must retire exactly the baseline's
# architectural work -- data speculation may only ever cost or save
# cycles, never change semantics.
class ChaoticPredictor(ValuePredictor):
    kind = "chaos"

    def __init__(self, decisions):
        super().__init__()
        self._decisions = list(decisions)
        self._cursor = 0

    def predict(self, site):
        self.lookups += 1
        if not self._decisions:
            return None
        decision = self._decisions[self._cursor % len(self._decisions)]
        self._cursor += 1
        return decision  # None = hold back, else deliver this value

    def update(self, site, actual, predicted):
        self._settle(actual, predicted)


class TestChaoticInterleaving:
    @given(decisions=st.lists(
        st.one_of(st.none(), st.integers(min_value=-4, max_value=200)),
        min_size=1, max_size=32,
    ))
    @settings(max_examples=25, deadline=None)
    def test_any_interleaving_preserves_retired_work(self, decisions):
        import repro.machine.dynamic as dynamic_module

        baseline = _engine_result(STRIDE_LOOP_ASM)
        original = dynamic_module.make_value_predictor
        dynamic_module.make_value_predictor = (
            lambda kind: ChaoticPredictor(decisions)
        )
        try:
            result = _engine_result(
                STRIDE_LOOP_ASM, value_predictor="last"
            )
        finally:
            dynamic_module.make_value_predictor = original
        assert result.retired_nodes == baseline.retired_nodes
        assert (result.value_confirmed + result.value_squashed
                == result.value_predictions)
        if result.value_replays:
            assert result.value_squashed > 0


# ----------------------------------------------------------------------
# Cross-backend equivalence on the spec grid: serial and --jobs sweeps
# must produce byte-identical result caches (the value-speculation
# fields ride the same canonical encode/decode as every other counter).
fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool workers must inherit the parent's module state",
)


@fork_only
class TestSpecGridBackendEquivalence:
    def test_spec_grid_cache_identical_serial_vs_jobs(self, tmp_path,
                                                      monkeypatch,
                                                      grep_prepared,
                                                      capsys):
        from repro.cli import main
        from repro.harness.artifacts import default_artifact_root

        monkeypatch.setenv(
            "REPRO_ARTIFACT_DIR",
            os.path.abspath(default_artifact_root()),
        )
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"

        monkeypatch.setenv("REPRO_CACHE_DIR", str(serial_dir))
        assert main(["sweep", "--grid", "spec", "--benchmarks", "grep",
                     "--limit", "6"]) == 0
        monkeypatch.setenv("REPRO_CACHE_DIR", str(parallel_dir))
        assert main(["sweep", "--grid", "spec", "--benchmarks", "grep",
                     "--limit", "6", "--jobs", "2"]) == 0
        capsys.readouterr()

        serial = json.loads((serial_dir / "results.json").read_text())
        parallel = json.loads((parallel_dir / "results.json").read_text())
        assert len(serial) == 6
        assert any("|v" in key for key in serial)  # spec points present
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )


# ----------------------------------------------------------------------
# Determinism: value-speculation and branch-mispredict counts must not
# depend on the interpreter's string-hash salt (crc32-keyed tables).
_SEED_PROBE = """
import json, sys
sys.path.insert(0, {src!r})
from repro.interp import run_program
from repro.machine import BranchMode, Discipline, MachineConfig, build_templates
from repro.machine.dynamic import DynamicEngine
from repro.program import parse_program

asm = {asm!r}
config = MachineConfig(
    discipline=Discipline.DYNAMIC, issue_model=8, memory="C",
    branch_mode=BranchMode.SINGLE, window_blocks=256,
    value_predictor="stride",
)
program = parse_program(asm)
outcome = run_program(program, inputs={{0: b""}})
result = DynamicEngine(build_templates(program), outcome.trace, config).run()
print(json.dumps([result.cycles, result.mispredicts,
                  result.value_predictions, result.value_confirmed,
                  result.value_squashed, result.value_replays]))
"""


class TestHashSeedDeterminism:
    def test_counts_identical_across_hash_seeds(self):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        script = _SEED_PROBE.format(src=os.path.abspath(src),
                                    asm=STRIDE_LOOP_ASM)
        outputs = []
        for seed in ("1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True,
            )
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1]
        assert outputs[0][2] > 0  # the probe actually speculated
