"""Aggregation-helper tests."""

import pytest

from repro.machine.config import BranchMode, Discipline, MachineConfig
from repro.stats import (
    EMPTY_SUMMARY,
    SimResult,
    format_summary,
    geometric_mean_ipc,
    group_by,
    histogram_stats,
    mean_redundancy,
    speedup_matrix,
    summarize,
)


def result(benchmark="b", discipline=Discipline.DYNAMIC, window=4,
           mode=BranchMode.SINGLE, cycles=1000, retired=4000, discarded=0):
    config = MachineConfig(
        discipline=discipline,
        issue_model=8,
        memory="A",
        branch_mode=mode,
        window_blocks=window,
    )
    return SimResult(
        benchmark=benchmark,
        config=config,
        cycles=cycles,
        retired_nodes=retired,
        discarded_nodes=discarded,
        dynamic_blocks=100,
        branch_lookups=200,
        mispredicts=20,
        cache_accesses=1000,
        cache_misses=50,
        work_nodes=retired,
    )


class TestGroupBy:
    def test_by_benchmark(self):
        results = [result("x"), result("y"), result("x")]
        groups = group_by(results, lambda r: r.benchmark)
        assert len(groups["x"]) == 2
        assert len(groups["y"]) == 1


class TestMeans:
    def test_geometric_mean_ipc(self):
        results = [result(cycles=1000, retired=2000),
                   result(cycles=1000, retired=8000)]
        assert geometric_mean_ipc(results) == pytest.approx(4.0)

    def test_empty_inputs(self):
        assert geometric_mean_ipc([]) == 0.0
        assert mean_redundancy([]) == 0.0

    def test_mean_redundancy(self):
        results = [result(discarded=1000, retired=4000),
                   result(discarded=0, retired=4000)]
        assert mean_redundancy(results) == pytest.approx(0.1)

    def test_all_zero_ipc_is_floored_not_nan(self):
        # A fully degraded batch (every point at zero cycles/IPC) must
        # come back as a small finite float, never a NaN or a raise.
        results = [result(cycles=0), result(cycles=0)]
        mean = geometric_mean_ipc(results)
        assert mean == pytest.approx(1e-12)
        assert mean == mean  # not NaN

    def test_single_result_is_identity(self):
        only = result(cycles=1000, retired=3000)
        assert geometric_mean_ipc([only]) == pytest.approx(3.0)
        assert mean_redundancy([only]) == pytest.approx(only.redundancy)


class TestSpeedupMatrix:
    def test_speedups_relative_to_baseline(self):
        results = [
            result("x", Discipline.STATIC, 1, cycles=3000),
            result("x", Discipline.DYNAMIC, 4, cycles=1000),
            result("y", Discipline.STATIC, 1, cycles=2000),
            result("y", Discipline.DYNAMIC, 4, cycles=500),
        ]
        matrix = speedup_matrix(results, "static/single")
        assert matrix["x"]["dyn4/single"] == pytest.approx(3.0)
        assert matrix["y"]["dyn4/single"] == pytest.approx(4.0)
        assert matrix["x"]["static/single"] == pytest.approx(1.0)

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            speedup_matrix([result("x")], "static/single")

    def test_single_point_grid(self):
        # One benchmark, one discipline: the matrix is the 1.0 identity.
        matrix = speedup_matrix([result("x", Discipline.STATIC, 1)],
                                "static/single")
        assert matrix == {"x": {"static/single": pytest.approx(1.0)}}

    def test_zero_cycle_point_yields_zero_speedup(self):
        results = [
            result("x", Discipline.STATIC, 1, cycles=3000),
            result("x", Discipline.DYNAMIC, 4, cycles=0),
        ]
        matrix = speedup_matrix(results, "static/single")
        assert matrix["x"]["dyn4/single"] == 0.0

    def test_mismatched_grids_compare_what_exists(self):
        # Benchmark y ran fewer disciplines than x: each row only holds
        # the discipline lines that benchmark actually has.
        results = [
            result("x", Discipline.STATIC, 1, cycles=3000),
            result("x", Discipline.DYNAMIC, 4, cycles=1000),
            result("y", Discipline.STATIC, 1, cycles=2000),
        ]
        matrix = speedup_matrix(results, "static/single")
        assert set(matrix["x"]) == {"static/single", "dyn4/single"}
        assert set(matrix["y"]) == {"static/single"}


class TestSummarize:
    def test_fields_and_values(self):
        summary = summarize([result(discarded=1000)])
        assert summary["results"] == 1.0
        assert summary["geomean_ipc"] == pytest.approx(4.0)
        assert summary["branch_accuracy"] == pytest.approx(0.9)
        assert summary["cache_hit_rate"] == pytest.approx(0.95)
        assert summary["discard_fraction"] == pytest.approx(0.2)

    def test_empty_batch_keeps_every_key(self):
        summary = summarize([])
        assert summary == EMPTY_SUMMARY
        assert summary is not EMPTY_SUMMARY  # callers may mutate their copy
        assert summary["results"] == 0.0
        assert summary["branch_accuracy"] == 1.0
        assert summary["cache_hit_rate"] == 1.0

    def test_empty_and_populated_summaries_share_keys(self):
        assert set(summarize([])) == set(summarize([result()]))

    def test_format_summary_lines(self):
        text = format_summary(summarize([result()]))
        assert "geomean_ipc" in text
        assert "value_accuracy" in text
        assert len(text.splitlines()) == len(EMPTY_SUMMARY)

    def test_format_summary_handles_empty_batch(self):
        text = format_summary(summarize([]))
        assert len(text.splitlines()) == len(EMPTY_SUMMARY)


class TestHistogramStats:
    def test_empty_distribution(self):
        assert histogram_stats([]) == {"count": 0}

    def test_single_value(self):
        stats = histogram_stats([2.5])
        assert stats["count"] == 1
        assert stats["min"] == stats["max"] == stats["mean"] == 2.5
        assert stats["p50"] == stats["p90"] == 2.5

    def test_percentiles_stay_in_range(self):
        stats = histogram_stats([5.0, 1.0, 3.0, 4.0, 2.0])
        assert stats["min"] == 1.0
        assert stats["max"] == 5.0
        assert stats["mean"] == pytest.approx(3.0)
        assert stats["min"] <= stats["p50"] <= stats["p90"] <= stats["max"]

    def test_all_zero_values(self):
        stats = histogram_stats([0.0, 0.0, 0.0])
        assert stats["count"] == 3
        assert stats["mean"] == 0.0
        assert stats["p90"] == 0.0
