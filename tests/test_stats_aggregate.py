"""Aggregation-helper tests."""

import pytest

from repro.machine.config import BranchMode, Discipline, MachineConfig
from repro.stats import (
    SimResult,
    format_summary,
    geometric_mean_ipc,
    group_by,
    mean_redundancy,
    speedup_matrix,
    summarize,
)


def result(benchmark="b", discipline=Discipline.DYNAMIC, window=4,
           mode=BranchMode.SINGLE, cycles=1000, retired=4000, discarded=0):
    config = MachineConfig(
        discipline=discipline,
        issue_model=8,
        memory="A",
        branch_mode=mode,
        window_blocks=window,
    )
    return SimResult(
        benchmark=benchmark,
        config=config,
        cycles=cycles,
        retired_nodes=retired,
        discarded_nodes=discarded,
        dynamic_blocks=100,
        branch_lookups=200,
        mispredicts=20,
        cache_accesses=1000,
        cache_misses=50,
        work_nodes=retired,
    )


class TestGroupBy:
    def test_by_benchmark(self):
        results = [result("x"), result("y"), result("x")]
        groups = group_by(results, lambda r: r.benchmark)
        assert len(groups["x"]) == 2
        assert len(groups["y"]) == 1


class TestMeans:
    def test_geometric_mean_ipc(self):
        results = [result(cycles=1000, retired=2000),
                   result(cycles=1000, retired=8000)]
        assert geometric_mean_ipc(results) == pytest.approx(4.0)

    def test_empty_inputs(self):
        assert geometric_mean_ipc([]) == 0.0
        assert mean_redundancy([]) == 0.0

    def test_mean_redundancy(self):
        results = [result(discarded=1000, retired=4000),
                   result(discarded=0, retired=4000)]
        assert mean_redundancy(results) == pytest.approx(0.1)


class TestSpeedupMatrix:
    def test_speedups_relative_to_baseline(self):
        results = [
            result("x", Discipline.STATIC, 1, cycles=3000),
            result("x", Discipline.DYNAMIC, 4, cycles=1000),
            result("y", Discipline.STATIC, 1, cycles=2000),
            result("y", Discipline.DYNAMIC, 4, cycles=500),
        ]
        matrix = speedup_matrix(results, "static/single")
        assert matrix["x"]["dyn4/single"] == pytest.approx(3.0)
        assert matrix["y"]["dyn4/single"] == pytest.approx(4.0)
        assert matrix["x"]["static/single"] == pytest.approx(1.0)

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            speedup_matrix([result("x")], "static/single")


class TestSummarize:
    def test_fields_and_values(self):
        summary = summarize([result(discarded=1000)])
        assert summary["results"] == 1.0
        assert summary["geomean_ipc"] == pytest.approx(4.0)
        assert summary["branch_accuracy"] == pytest.approx(0.9)
        assert summary["cache_hit_rate"] == pytest.approx(0.95)
        assert summary["discard_fraction"] == pytest.approx(0.2)

    def test_empty(self):
        assert summarize([]) == {}

    def test_format_summary_lines(self):
        text = format_summary(summarize([result()]))
        assert "geomean_ipc" in text
        assert len(text.splitlines()) == 7
