"""Unit and property tests for 32-bit integer semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.intmath import (
    INT32_MAX,
    INT32_MIN,
    sar32,
    sdiv32,
    shl32,
    shr32,
    smod32,
    to_unsigned32,
    wrap32,
)

int32s = st.integers(min_value=INT32_MIN, max_value=INT32_MAX)
any_ints = st.integers(min_value=-(1 << 40), max_value=1 << 40)


class TestWrap32:
    def test_identity_in_range(self):
        for value in (0, 1, -1, INT32_MAX, INT32_MIN, 12345, -98765):
            assert wrap32(value) == value

    def test_wraps_positive_overflow(self):
        assert wrap32(INT32_MAX + 1) == INT32_MIN

    def test_wraps_negative_overflow(self):
        assert wrap32(INT32_MIN - 1) == INT32_MAX

    def test_wraps_large_multiple(self):
        assert wrap32(1 << 32) == 0
        assert wrap32((1 << 32) + 7) == 7

    @given(any_ints)
    def test_always_in_range(self, value):
        assert INT32_MIN <= wrap32(value) <= INT32_MAX

    @given(any_ints)
    def test_congruent_mod_2_32(self, value):
        assert (wrap32(value) - value) % (1 << 32) == 0

    @given(int32s)
    def test_roundtrip_unsigned(self, value):
        assert wrap32(to_unsigned32(value)) == value


class TestDivision:
    def test_truncates_toward_zero(self):
        assert sdiv32(7, 2) == 3
        assert sdiv32(-7, 2) == -3
        assert sdiv32(7, -2) == -3
        assert sdiv32(-7, -2) == 3

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            sdiv32(1, 0)
        with pytest.raises(ZeroDivisionError):
            smod32(1, 0)

    def test_mod_sign_follows_dividend(self):
        assert smod32(7, 3) == 1
        assert smod32(-7, 3) == -1
        assert smod32(7, -3) == 1
        assert smod32(-7, -3) == -1

    def test_int_min_by_minus_one_wraps(self):
        assert sdiv32(INT32_MIN, -1) == INT32_MIN

    @given(int32s, int32s.filter(lambda v: v != 0))
    def test_c_division_identity(self, a, b):
        quotient = sdiv32(a, b)
        remainder = smod32(a, b)
        if quotient != INT32_MIN or b != -1:
            assert wrap32(quotient * b + remainder) == a

    @given(int32s, int32s.filter(lambda v: v != 0))
    def test_remainder_smaller_than_divisor(self, a, b):
        assert abs(smod32(a, b)) < abs(b)


class TestShifts:
    def test_shl_basic(self):
        assert shl32(1, 4) == 16

    def test_shl_wraps(self):
        assert shl32(1, 31) == INT32_MIN

    def test_shift_count_mod_32(self):
        assert shl32(1, 32) == 1
        assert sar32(4, 33) == 2

    def test_sar_propagates_sign(self):
        assert sar32(-8, 2) == -2
        assert sar32(-1, 31) == -1

    def test_shr_zero_fills(self):
        assert shr32(-1, 28) == 15
        assert shr32(-8, 1) == 0x7FFFFFFC

    @given(int32s, st.integers(min_value=0, max_value=31))
    def test_shr_nonnegative(self, a, count):
        assert shr32(a, count) >= 0 or count == 0

    @given(st.integers(min_value=0, max_value=INT32_MAX),
           st.integers(min_value=0, max_value=31))
    def test_sar_equals_floor_division_for_nonnegative(self, a, count):
        assert sar32(a, count) == a >> count
