"""Cross-configuration invariants of the timing engines.

Sampled over real benchmark traces: whatever the machine configuration,
certain accounting identities and physical bounds must hold.
"""

import pytest

from repro.machine import (
    BranchMode,
    Discipline,
    MachineConfig,
    simulate,
)

CONFIG_SAMPLE = [
    MachineConfig(Discipline.STATIC, 1, "A", BranchMode.SINGLE),
    MachineConfig(Discipline.STATIC, 8, "D", BranchMode.ENLARGED),
    MachineConfig(Discipline.DYNAMIC, 1, "A", BranchMode.SINGLE, window_blocks=1),
    MachineConfig(Discipline.DYNAMIC, 5, "F", BranchMode.SINGLE, window_blocks=4),
    MachineConfig(Discipline.DYNAMIC, 8, "A", BranchMode.ENLARGED, window_blocks=256),
    MachineConfig(Discipline.DYNAMIC, 8, "G", BranchMode.ENLARGED, window_blocks=4),
    MachineConfig(Discipline.DYNAMIC, 8, "C", BranchMode.PERFECT, window_blocks=4),
    MachineConfig(Discipline.DYNAMIC, 2, "E", BranchMode.PERFECT, window_blocks=256),
]


@pytest.fixture(scope="module", params=["grep", "sort"])
def workload(request, grep_prepared, sort_prepared):
    return {"grep": grep_prepared, "sort": sort_prepared}[request.param]


@pytest.mark.parametrize("config", CONFIG_SAMPLE, ids=str)
class TestAccountingIdentities:
    def test_retired_matches_functional_trace(self, workload, config):
        result = simulate(workload, config)
        trace = workload.trace_for(config.branch_mode)
        assert result.retired_nodes == trace.retired_nodes

    def test_fault_count_matches_trace(self, workload, config):
        result = simulate(workload, config)
        trace = workload.trace_for(config.branch_mode)
        expected = sum(1 for f in trace.fault_indices if f >= 0)
        assert result.faults == expected

    def test_executed_at_least_retired(self, workload, config):
        result = simulate(workload, config)
        assert result.executed_nodes >= result.retired_nodes

    def test_mispredicts_bounded_by_lookups(self, workload, config):
        result = simulate(workload, config)
        assert result.mispredicts <= result.branch_lookups

    def test_dynamic_blocks_match_trace(self, workload, config):
        result = simulate(workload, config)
        assert result.dynamic_blocks == len(workload.trace_for(config.branch_mode))


@pytest.mark.parametrize("config", CONFIG_SAMPLE, ids=str)
class TestPhysicalBounds:
    def test_issue_bandwidth_lower_bound(self, workload, config):
        """Cycles can never beat total slots per cycle."""
        result = simulate(workload, config)
        slots = config.issue.total_slots
        trace = workload.trace_for(config.branch_mode)
        useful = trace.retired_nodes + trace.discarded_nodes
        assert result.cycles >= useful / slots * 0.99

    def test_serial_upper_bound(self, workload, config):
        """Cycles can't exceed fully serialised worst-case execution."""
        result = simulate(workload, config)
        worst_latency = config.memory_config.miss_cycles + 4
        bound = result.executed_nodes * worst_latency + result.dynamic_blocks * 8
        assert result.cycles < bound

    def test_perfect_mode_discards_only_faults(self, workload, config):
        if config.branch_mode is not BranchMode.PERFECT:
            pytest.skip("perfect-mode property")
        result = simulate(workload, config)
        assert result.mispredicts == 0


class TestDeterminism:
    def test_same_config_same_result(self, grep_prepared):
        config = CONFIG_SAMPLE[4]
        first = simulate(grep_prepared, config)
        second = simulate(grep_prepared, config)
        assert first.cycles == second.cycles
        assert first.discarded_nodes == second.discarded_nodes
        assert first.mispredicts == second.mispredicts
