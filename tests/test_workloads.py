"""Benchmark suite tests: every workload matches its Python oracle."""

import pytest

from repro.interp import run_program
from repro.workloads import WORKLOADS


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("kind", ["train", "eval"])
def test_output_matches_reference(name, kind):
    workload = WORKLOADS[name]
    program = workload.compile()
    inputs = workload.make_inputs(kind)
    result = run_program(program, inputs=inputs)
    assert result.exit_code == 0
    assert result.output == workload.reference(inputs)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_inputs_are_deterministic(name):
    workload = WORKLOADS[name]
    assert workload.make_inputs("eval") == workload.make_inputs("eval")
    assert workload.make_inputs("train") == workload.make_inputs("train")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_train_and_eval_differ(name):
    """The paper used different data sets for profiling and evaluation."""
    workload = WORKLOADS[name]
    assert workload.make_inputs("train") != workload.make_inputs("eval")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_scale_grows_input(name):
    workload = WORKLOADS[name]
    small = sum(len(v) for v in workload.make_inputs("eval", 1).values())
    large = sum(len(v) for v in workload.make_inputs("eval", 2).values())
    assert large > small


def test_workload_names():
    from repro.workloads import PAPER_WORKLOAD_NAMES

    assert PAPER_WORKLOAD_NAMES == ("sort", "grep", "diff", "cpp", "compress")
    assert set(WORKLOADS) == set(PAPER_WORKLOAD_NAMES) | {
        "hashjoin", "jsontok", "crc32"
    }
    # The paper's five lead the registry so figure pipelines that take
    # the first N benchmarks stay on the paper's suite.
    assert tuple(WORKLOADS)[:5] == PAPER_WORKLOAD_NAMES


def test_static_alu_mem_ratio_in_paper_range():
    """The paper reports a static ALU:MEM node ratio of about 2.5:1."""
    ratios = []
    for workload in WORKLOADS.values():
        alu, mem = workload.compile().static_node_counts()
        ratios.append(alu / mem)
    mean = sum(ratios) / len(ratios)
    assert 1.5 < mean < 4.5


def test_dynamic_blocks_are_small():
    """Over half of executed blocks should be small (paper Figure 2)."""
    workload = WORKLOADS["grep"]
    program = workload.compile()
    result = run_program(program, inputs=workload.make_inputs("eval"))
    trace = result.trace
    sizes = {
        label: program.block(label).datapath_size for label in program.blocks
    }
    small = sum(
        1 for i in trace.block_ids if sizes[trace.labels[i]] <= 4
    )
    assert small / len(trace) > 0.4


class TestPreparedWorkloads:
    def test_prepare_checks_equivalence(self, sort_prepared):
        assert sort_prepared.single_trace.retired_nodes > 0
        assert len(sort_prepared.enlarged) >= len(sort_prepared.single)

    def test_enlarged_program_validates(self, sort_prepared):
        sort_prepared.enlarged.validate()

    def test_traces_share_exit_code(self, sort_prepared):
        assert (
            sort_prepared.single_trace.exit_code
            == sort_prepared.enlarged_trace.exit_code
        )

    def test_schedule_cache_reuse(self, sort_prepared):
        from repro.machine import BranchMode, Discipline, MachineConfig

        cfg = MachineConfig(
            Discipline.STATIC, 4, "A", BranchMode.SINGLE
        )
        first = sort_prepared.schedules_for(cfg)
        second = sort_prepared.schedules_for(cfg)
        assert first is second


class TestExtraWorkloads:
    """The wc/uniq extension suite (not part of the paper's figures)."""

    @pytest.mark.parametrize("name", ["wc", "uniq"])
    @pytest.mark.parametrize("kind", ["train", "eval"])
    def test_output_matches_reference(self, name, kind):
        from repro.workloads import EXTRA_WORKLOADS

        workload = EXTRA_WORKLOADS[name]
        program = workload.compile()
        inputs = workload.make_inputs(kind)
        result = run_program(program, inputs=inputs)
        assert result.exit_code == 0
        assert result.output == workload.reference(inputs)

    def test_extras_not_in_paper_suite(self):
        from repro.workloads import EXTRA_WORKLOADS, WORKLOADS

        assert not set(EXTRA_WORKLOADS) & set(WORKLOADS)

    def test_uniq_collapses_runs(self):
        from repro.workloads import UNIQ

        inputs = {0: b"a\na\na\nb\nb\na\n"}
        program = UNIQ.compile()
        result = run_program(program, inputs=inputs)
        assert result.output == b"a\nb\na\n"
        assert result.output == UNIQ.reference(inputs)

    def test_wc_counts_edge_cases(self):
        from repro.workloads import WC

        inputs = {0: b"  one\ttwo \n\nthree"}
        program = WC.compile()
        result = run_program(program, inputs=inputs)
        assert result.output == WC.reference(inputs)
        assert result.output == b"2 3 17\n"

    def test_extras_prepare_through_full_pipeline(self):
        from repro.workloads import WC

        prepared_wl = WC.prepare()
        assert prepared_wl.single_trace.retired_nodes > 0
