"""Artifact-store tests: versioned roundtrip, corruption, invalidation.

The store's contract is load-or-None: any missing, stale or corrupt
state must be invisible (forcing a re-prepare), never a bad load.
"""

import json
import os
from dataclasses import replace

from repro.harness import artifacts as artifacts_mod
from repro.harness.artifacts import (
    ARTIFACT_FILES,
    ArtifactStore,
    default_artifact_root,
    workload_digest,
)
from repro.machine.config import (
    BranchMode,
    Discipline,
    MachineConfig,
)
from repro.machine.simulator import simulate
from repro.program.printer import format_program
from repro.workloads import WORKLOADS

GREP = WORKLOADS["grep"]


class TestDigest:
    def test_stable(self):
        assert workload_digest(GREP, 1) == workload_digest(GREP, 1)

    def test_covers_scale(self):
        assert workload_digest(GREP, 1) != workload_digest(GREP, 2)

    def test_covers_source(self):
        tweaked = replace(GREP, source=GREP.source + "\n")
        assert workload_digest(GREP, 1) != workload_digest(tweaked, 1)

    def test_covers_prepare_version(self, monkeypatch):
        before = workload_digest(GREP, 1)
        monkeypatch.setattr(artifacts_mod, "PREPARE_CACHE_VERSION", 999)
        assert workload_digest(GREP, 1) != before


class TestRoot:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "arts"))
        assert default_artifact_root() == str(tmp_path / "arts")

    def test_defaults_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_artifact_root() == os.path.join(
            str(tmp_path), "workloads"
        )


class TestRoundtrip:
    def test_save_then_load_simulates_identically(self, tmp_path,
                                                  grep_prepared):
        store = ArtifactStore(str(tmp_path))
        directory = store.save(GREP, 1, grep_prepared)
        assert store.contains(GREP, 1)
        assert sorted(os.listdir(directory)) == sorted(
            ARTIFACT_FILES + ("manifest.json",)
        )
        loaded = store.load(GREP, 1)
        assert loaded is not None
        assert format_program(loaded.single) == format_program(
            grep_prepared.single
        )
        assert format_program(loaded.enlarged) == format_program(
            grep_prepared.enlarged
        )
        config = MachineConfig(
            discipline=Discipline.DYNAMIC, issue_model=8, memory="A",
            branch_mode=BranchMode.ENLARGED, window_blocks=4,
        )
        assert simulate(loaded, config) == simulate(grep_prepared, config)

    def test_missing_is_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.load(GREP, 1) is None
        assert not store.contains(GREP, 1)

    def test_corrupt_manifest_is_invisible(self, tmp_path, grep_prepared):
        store = ArtifactStore(str(tmp_path))
        directory = store.save(GREP, 1, grep_prepared)
        with open(os.path.join(directory, "manifest.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.load(GREP, 1) is None

    def test_missing_artifact_file_is_invisible(self, tmp_path,
                                                grep_prepared):
        store = ArtifactStore(str(tmp_path))
        directory = store.save(GREP, 1, grep_prepared)
        os.remove(os.path.join(directory, "single.trace"))
        assert store.load(GREP, 1) is None

    def test_version_mismatch_is_invisible(self, tmp_path, grep_prepared):
        store = ArtifactStore(str(tmp_path))
        directory = store.save(GREP, 1, grep_prepared)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path, encoding="utf-8") as handle:
            raw = json.load(handle)
        raw["artifact_version"] = 999
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(raw, handle)
        assert store.load(GREP, 1) is None

    def test_corrupt_trace_body_is_invisible(self, tmp_path, grep_prepared):
        store = ArtifactStore(str(tmp_path))
        directory = store.save(GREP, 1, grep_prepared)
        with open(os.path.join(directory, "single.trace"), "wb") as handle:
            handle.write(b"garbage")
        assert store.load(GREP, 1) is None


class _FakeWorkload:
    """Duck-typed workload whose prepare() calls are countable."""

    name = "fake"
    source = "// counted"

    def __init__(self, prepared):
        self._prepared = prepared
        self.prepare_calls = 0

    def make_inputs(self, kind, scale):
        return {}

    def prepare(self, scale=1):
        self.prepare_calls += 1
        return self._prepared


class TestEnsure:
    def test_ensure_prepares_exactly_once(self, tmp_path, grep_prepared):
        fake = _FakeWorkload(grep_prepared)
        store = ArtifactStore(str(tmp_path))
        first = store.ensure(fake, 1)
        second = store.ensure(fake, 1)
        assert first == second
        assert fake.prepare_calls == 1
        assert store.load(fake, 1) is not None
