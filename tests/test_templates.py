"""Block-template compilation tests (the timing engines' input format)."""

from repro.isa import (
    AluOp,
    Imm,
    Reg,
    SyscallOp,
    alu,
    assert_node,
    branch,
    call,
    jump,
    load,
    movi,
    ret,
    store,
    syscall,
)
from repro.machine.templates import (
    BlockTemplate,
    T_ALU,
    T_ASSERT,
    T_BRANCH,
    T_CONTROL,
    T_LOAD,
    T_STORE,
    T_SYSCALL,
    build_templates,
)
from repro.program import BasicBlock


def template(body, term):
    return BlockTemplate(BasicBlock("blk", body, term))


class TestClassification:
    def test_node_classes(self):
        tmpl = template(
            [
                alu(AluOp.ADD, 1, Reg(2), Imm(1)),
                load(3, 62, 0),
                store(Reg(3), 62, 4),
                assert_node(1, True, "blk"),
            ],
            branch(1, "blk", "blk"),
        )
        classes = [cls for cls, _, _ in tmpl.nodes]
        assert classes == [T_ALU, T_LOAD, T_STORE, T_ASSERT, T_BRANCH]

    def test_control_terminators(self):
        assert template([], jump("blk")).nodes[-1][0] == T_CONTROL
        assert template([], ret()).nodes[-1][0] == T_CONTROL
        tmpl = template([], call("blk", "blk"))
        assert tmpl.nodes[-1][0] == T_CONTROL
        assert tmpl.control_target == "blk"
        assert tmpl.call_link == "blk"

    def test_syscall_excluded_from_datapath(self):
        tmpl = template([movi(1, 0)], syscall(SyscallOp.EXIT, None, (1,)))
        assert tmpl.nodes[-1][0] == T_SYSCALL
        assert tmpl.n_datapath == 1
        assert tmpl.is_exit

    def test_syscall_with_continuation_not_exit(self):
        tmpl = template([], syscall(SyscallOp.GETC, "blk", (1,), dest=0))
        assert not tmpl.is_exit
        assert tmpl.control_target == "blk"


class TestDataflowFields:
    def test_dest_and_sources(self):
        tmpl = template([alu(AluOp.ADD, 5, Reg(6), Reg(7))], ret())
        cls, dest, srcs = tmpl.nodes[0]
        assert dest == 5
        assert srcs == (6, 7)

    def test_store_has_no_dest(self):
        tmpl = template([store(Reg(3), 62, 0)], ret())
        _, dest, srcs = tmpl.nodes[0]
        assert dest == -1
        assert set(srcs) == {3, 62}

    def test_memory_count(self):
        tmpl = template([load(1, 62, 0), store(Reg(1), 62, 4), movi(2, 0)],
                        ret())
        assert tmpl.n_mem == 2


class TestBranchFields:
    def test_branch_targets_and_hint(self):
        tmpl = template([], branch(1, "t", "f", expect_taken=True))
        assert tmpl.has_branch
        assert tmpl.branch_taken == "t"
        assert tmpl.branch_alt == "f"
        assert tmpl.static_hint is True

    def test_assert_fault_targets_by_index(self):
        tmpl = template(
            [movi(1, 0), assert_node(1, False, "recover")],
            jump("t"),
        )
        assert tmpl.fault_targets == {1: "recover"}


class TestBuildTemplates:
    def test_covers_whole_program(self, sumloop_program):
        templates = build_templates(sumloop_program)
        assert set(templates) == set(sumloop_program.blocks)
        for label, tmpl in templates.items():
            block = sumloop_program.block(label)
            assert len(tmpl.nodes) == len(block)
            assert tmpl.n_datapath == block.datapath_size
