"""Behavioural edge-case tests for the benchmark programs themselves.

The oracle-equality tests prove the programs match their references on
generated inputs; these pin specific behaviours on crafted inputs.
"""

from repro.interp import run_program
from repro.workloads import WORKLOADS


def run(name, inputs):
    workload = WORKLOADS[name]
    program = workload.compile()
    result = run_program(program, inputs=inputs)
    assert result.output == workload.reference(inputs)
    return result


class TestSort:
    def test_empty_input(self):
        assert run("sort", {0: b""}).output == b""

    def test_single_line(self):
        assert run("sort", {0: b"only\n"}).output == b"only\n"

    def test_already_sorted(self):
        data = b"a\nb\nc\n"
        assert run("sort", {0: data}).output == data

    def test_reverse_sorted(self):
        assert run("sort", {0: b"c\nb\na\n"}).output == b"a\nb\nc\n"

    def test_duplicates_kept(self):
        assert run("sort", {0: b"x\nx\nx\n"}).output == b"x\nx\nx\n"

    def test_prefix_sorts_first(self):
        assert run("sort", {0: b"abc\nab\n"}).output == b"ab\nabc\n"

    def test_missing_trailing_newline(self):
        assert run("sort", {0: b"b\na"}).output == b"a\nb\n"

    def test_empty_lines_sort_first(self):
        assert run("sort", {0: b"z\n\nm\n"}).output == b"\nm\nz\n"

    def test_many_identical_then_one(self):
        data = b"m\n" * 50 + b"a\n"
        result = run("sort", {0: data})
        assert result.output == b"a\n" + b"m\n" * 50


class TestGrep:
    def test_no_matches(self):
        assert run("grep", {0: b"zzz\naaa\nbbb\n"}).output == b""

    def test_all_match(self):
        assert run("grep", {0: b"a\nabc\nbca\ncab\n"}).output == b"abc\nbca\ncab\n"

    def test_pattern_at_line_edges(self):
        result = run("grep", {0: b"ed\nedge\nfed\nmiddle-ed-middle\nnope\n"})
        assert result.output == b"edge\nfed\nmiddle-ed-middle\n"

    def test_empty_pattern_matches_everything(self):
        assert run("grep", {0: b"\nx\ny\n"}).output == b"x\ny\n"

    def test_pattern_longer_than_lines(self):
        assert run("grep", {0: b"abcdefgh\nab\ncd\n"}).output == b""

    def test_repeated_prefix_scan(self):
        # Classic naive-search stress: aab in aaaab.
        assert run("grep", {0: b"aab\naaaab\nabab\n"}).output == b"aaaab\n"


class TestDiff:
    def test_identical_files(self):
        data = b"one\ntwo\n"
        assert run("diff", {0: data, 3: data}).output == b""

    def test_pure_insertion(self):
        result = run("diff", {0: b"a\nc\n", 3: b"a\nb\nc\n"})
        assert result.output == b"> b\n"

    def test_pure_deletion(self):
        result = run("diff", {0: b"a\nb\nc\n", 3: b"a\nc\n"})
        assert result.output == b"< b\n"

    def test_complete_replacement(self):
        result = run("diff", {0: b"x\n", 3: b"y\n"})
        assert result.output in (b"< x\n> y\n", b"> y\n< x\n")

    def test_empty_old_file(self):
        assert run("diff", {0: b"", 3: b"n\n"}).output == b"> n\n"

    def test_empty_new_file(self):
        assert run("diff", {0: b"o\n", 3: b""}).output == b"< o\n"


class TestCpp:
    def test_simple_expansion(self):
        result = run("cpp", {0: b"#define X hello\nX world\n"})
        assert result.output == b"hello world\n"

    def test_chained_macros(self):
        source = b"#define A B\n#define B C\n#define C done\nA\n"
        assert run("cpp", {0: source}).output == b"done\n"

    def test_undef(self):
        source = b"#define X 1\nX\n#undef X\nX\n"
        assert run("cpp", {0: source}).output == b"1\nX\n"

    def test_redefinition(self):
        source = b"#define X old\nX\n#define X new\nX\n"
        assert run("cpp", {0: source}).output == b"old\nnew\n"

    def test_identifier_boundaries_respected(self):
        source = b"#define ab Z\nab abc ab1 1ab ab\n"
        assert run("cpp", {0: source}).output == b"Z abc ab1 1Z Z\n"

    def test_self_referential_macro_depth_capped(self):
        source = b"#define LOOP LOOP x\nLOOP\n"
        result = run("cpp", {0: source})
        # Expansion terminates at the depth cap instead of diverging.
        assert result.output.endswith(b"\n")
        assert b"LOOP" in result.output

    def test_unknown_directives_consumed(self):
        source = b"#include <stdio.h>\n#pragma x\ntext\n"
        assert run("cpp", {0: source}).output == b"text\n"


class TestCompress:
    def test_empty_input(self):
        assert run("compress", {0: b""}).output == b""

    def test_single_byte(self):
        result = run("compress", {0: b"A"})
        # One 12-bit code (65) packed into two bytes: 0x041, 0x0 pad.
        assert result.output == bytes([0x04, 0x10])

    def test_repetitive_input_compresses(self):
        data = b"ab" * 400
        result = run("compress", {0: data})
        assert len(result.output) < len(data) / 2

    def test_random_like_input_does_not_explode(self):
        data = bytes((i * 97 + 13) % 251 for i in range(600))
        result = run("compress", {0: data})
        # 12-bit codes over bytes: worst case 1.5x.
        assert len(result.output) <= len(data) * 3 // 2 + 2

    def test_dictionary_cap_respected(self):
        # Enough distinct digrams to overflow 4096 entries: must still
        # match the oracle (checked in run()) and terminate.
        data = bytes((i ^ (i >> 3)) & 0xFF for i in range(9000))
        run("compress", {0: data})
