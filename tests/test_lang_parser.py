"""Mini-C parser tests: AST shapes, precedence, declarations, errors."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_source


def parse_expr(text):
    """Parse `text` as the returned expression of a wrapper function."""
    unit = parse_source(f"int main() {{ return {text}; }}")
    return unit.functions[0].body.statements[0].value


def parse_stmts(text):
    unit = parse_source(f"int main() {{ {text} }}")
    return unit.functions[0].body.statements


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "-"

    def test_comparison_binds_looser_than_shift(self):
        expr = parse_expr("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_logical_lowest(self):
        expr = parse_expr("1 == 2 && 3 | 4")
        assert expr.op == "&&"
        assert expr.left.op == "=="
        assert expr.right.op == "|"

    def test_assignment_right_associative(self):
        stmts = parse_stmts("int a; int b; a = b = 1;")
        assign = stmts[2].expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Assign)

    def test_unary_chains(self):
        expr = parse_expr("-~!*p")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"
        assert expr.operand.operand.operand.op == "*"

    def test_prefix_and_postfix_incdec(self):
        pre = parse_expr("++x")
        post = parse_expr("x++")
        assert isinstance(pre, ast.IncDec) and pre.is_prefix
        assert isinstance(post, ast.IncDec) and not post.is_prefix

    def test_index_and_call(self):
        expr = parse_expr("f(a[1], 2)")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.args[0], ast.Index)

    def test_sizeof(self):
        expr = parse_expr("sizeof(int*)")
        assert isinstance(expr, ast.SizeOf)
        assert expr.target_type.is_pointer

    def test_unary_plus_is_dropped(self):
        expr = parse_expr("+4")
        assert isinstance(expr, ast.IntLiteral)


class TestDeclarations:
    def test_global_array(self):
        unit = parse_source("int grid[16]; int main() { return 0; }")
        decl = unit.globals[0]
        assert decl.ctype.is_array and decl.ctype.length == 16

    def test_global_initializers(self):
        unit = parse_source(
            'int x = 5; int v[3] = {1, 2, 3}; char msg[8] = "hi";'
            "int main() { return 0; }"
        )
        assert unit.globals[0].init.value == 5
        assert isinstance(unit.globals[1].init, list)
        assert isinstance(unit.globals[2].init, ast.StringLiteral)

    def test_multi_declarator_locals(self):
        stmts = parse_stmts("int a, *b, c = 2;")
        inner = stmts[0]
        assert isinstance(inner, ast.Block)
        assert len(inner.statements) == 3
        assert inner.statements[1].ctype.is_pointer

    def test_function_prototype(self):
        unit = parse_source("int f(int x); int main() { return f(1); } "
                            "int f(int x) { return x; }")
        assert unit.functions[0].body is None
        assert unit.functions[2].body is not None

    def test_void_param_list(self):
        unit = parse_source("int main(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_array_param_decays(self):
        unit = parse_source("int f(int v[4]) { return v[0]; } "
                            "int main() { return 0; }")
        assert unit.functions[0].params[0].ctype.is_pointer


class TestStatements:
    def test_if_else_chain(self):
        stmts = parse_stmts("if (1) ; else if (2) ; else ;")
        node = stmts[0]
        assert isinstance(node, ast.If)
        assert isinstance(node.else_body, ast.If)

    def test_for_all_parts_optional(self):
        stmts = parse_stmts("for (;;) break;")
        node = stmts[0]
        assert node.init is None and node.cond is None and node.step is None

    def test_for_with_declaration(self):
        stmts = parse_stmts("for (int i = 0; i < 4; i++) ;")
        assert isinstance(stmts[0].init, ast.VarDecl)

    def test_do_while(self):
        stmts = parse_stmts("do { } while (0);")
        assert isinstance(stmts[0], ast.DoWhile)

    def test_return_void(self):
        unit = parse_source("void f() { return; } int main() { return 0; }")
        assert unit.functions[0].body.statements[0].value is None


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() { return 1 + ; }",
            "int main() { if 1 return 0; }",
            "int main() { int a[-2]; }",
            "int main() { f(; }",
            "int main() { ",
            "int 3x;",
            "main() { }",
            "int main() { int x = {1}; }",  # brace init parses, sema rejects
        ],
    )
    def test_rejects(self, source):
        if "x = {1}" in source:
            pytest.skip("handled by sema, not the parser")
        with pytest.raises(ParseError):
            parse_source(source)

    def test_array_length_must_be_literal(self):
        with pytest.raises(ParseError):
            parse_source("int main() { int a[n]; }")


class TestFunctionPointerDeclarators:
    def test_global_fp(self):
        unit = parse_source("int (*handler)(int, int); int main() { return 0; }")
        decl = unit.globals[0]
        assert decl.ctype.is_function_pointer
        fn = decl.ctype.pointee
        assert fn.is_function and len(fn.params) == 2

    def test_fp_array(self):
        unit = parse_source("int (*ops[4])(int); int main() { return 0; }")
        decl = unit.globals[0]
        assert decl.ctype.is_array and decl.ctype.length == 4
        assert decl.ctype.element.is_function_pointer

    def test_fp_param_decays(self):
        unit = parse_source(
            "int apply(int (*f)(int), int x) { return f(x); }"
            " int main() { return 0; }"
        )
        param = unit.functions[0].params[0]
        assert param.ctype.is_function_pointer

    def test_void_param_list_means_empty(self):
        unit = parse_source("int (*f)(void); int main() { return 0; }")
        assert unit.globals[0].ctype.pointee.params == ()

    def test_param_names_ignored(self):
        unit = parse_source("int (*f)(int a, int b); int main() { return 0; }")
        assert len(unit.globals[0].ctype.pointee.params) == 2

    @pytest.mark.parametrize(
        "source",
        [
            "int (*f(int); int main() { return 0; }",     # missing ')' after name
            "int (*)(int); int main() { return 0; }",     # missing name
            "int (*f)(int,); int main() { return 0; }",   # trailing comma
            "int (*f)(void x); int main() { return 0; }", # named void param
            "int (*f)(int a[); int main() { return 0; }", # malformed array param
            "struct S { int x; }; struct S (*f)(int); int main() { return 0; }",
            "int (*f)(int, int, int, int, int, int, int); int main() { return 0; }",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse_source(source)


class TestMultiDimDeclarators:
    def test_two_dimensional_global(self):
        unit = parse_source("int grid[3][5]; int main() { return 0; }")
        ctype = unit.globals[0].ctype
        assert ctype.is_array and ctype.length == 3
        assert ctype.element.is_array and ctype.element.length == 5

    def test_nested_initializer_shape(self):
        unit = parse_source(
            "int t[2][2] = {{1, 2}, {3}}; int main() { return 0; }"
        )
        init = unit.globals[0].init
        assert isinstance(init, list) and len(init) == 2
        assert isinstance(init[0], list) and len(init[0]) == 2
        assert isinstance(init[1], list) and len(init[1]) == 1

    def test_chained_index_is_left_nested(self):
        expr = parse_expr("m[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.array, ast.Index)

    @pytest.mark.parametrize(
        "source",
        [
            "int m[2][0]; int main() { return 0; }",
            "int m[2][n]; int main() { return 0; }",
            "int m[2][]; int main() { return 0; }",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse_source(source)


class TestDiagnosticLocations:
    """No front-end diagnostic may report the 0:0 non-location."""

    BAD_PROGRAMS = [
        # lexer
        "int main() { return 'ab'; }",
        "int main() { /* unterminated",
        'int main() { return "open; }',
        "int main() { return 1 $ 2; }",
        # parser
        "int main() { return 1 + ; }",
        "int main() { int a[-2]; }",
        "int (*f(int); int main() { return 0; }",
        "int m[2][]; int main() { return 0; }",
        "main() { }",
        # sema
        "int main() { return x; }",
        "int main() { int x; int x; return 0; }",
        "int f() { return 0; } int main() { f(1); return 0; }",
        "int main() { int (*f)(int); f = f + 1; return 0; }",
        "int f(int x) { return x; } int main() { f[0]; return 0; }",
        "int t[2] = {1, 2, 3}; int main() { return 0; }",
        "int g() { return 0; }",  # no main
    ]

    @pytest.mark.parametrize("source", BAD_PROGRAMS)
    def test_error_carries_location(self, source):
        from repro.lang import compile_source
        from repro.lang.errors import CompileError

        with pytest.raises(CompileError) as info:
            compile_source(source)
        err = info.value
        assert err.line > 0, f"no line for: {err}"
        assert err.column > 0, f"no column for: {err}"
        assert str(err).startswith(f"{err.line}:{err.column}:")
