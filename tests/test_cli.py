"""CLI tests (cheap paths only; sweeps are covered by the harness tests)."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_axes(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out
        assert "4M+12A" in out
        assert "window sizes" in out


class TestDump:
    def test_dump_single(self, capsys, grep_prepared):
        assert main(["dump", "--benchmark", "grep"]) == 0
        out = capsys.readouterr().out
        assert ".entry _start" in out
        assert "block f_main" in out

    def test_dump_enlarged_contains_asserts(self, capsys, grep_prepared):
        assert main(["dump", "--benchmark", "grep", "--enlarged"]) == 0
        out = capsys.readouterr().out
        assert "assert " in out


class TestRun:
    def test_run_point(self, capsys, grep_prepared, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main([
            "run", "--benchmark", "grep", "--discipline", "dynamic",
            "--window", "4", "--issue", "8", "--memory", "A",
            "--branch", "enlarged",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "retired nodes" in out
        assert "cycles" in out


class TestTrace:
    def test_trace_writes_chrome_json(self, capsys, grep_prepared, tmp_path,
                                      monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out = tmp_path / "grep.trace.json"
        code = main([
            "trace", "--benchmark", "grep", "--discipline", "dynamic",
            "--window", "4", "--issue", "8", "--memory", "D",
            "--branch", "enlarged", "-o", str(out),
        ])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert events
        names = {event["name"] for event in events}
        assert "issue.slots" in names
        assert "window.occupancy" in names

    def test_trace_writes_jsonl(self, capsys, grep_prepared, tmp_path,
                                monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out = tmp_path / "grep.trace.jsonl"
        code = main([
            "trace", "--benchmark", "grep", "--discipline", "static",
            "--issue", "4", "--memory", "A", "--format", "jsonl",
            "-o", str(out),
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert "ts" in record and "name" in record


class TestSweepTelemetry:
    def test_metrics_out_written_even_at_limit(self, capsys, tmp_path,
                                               monkeypatch, grep_prepared):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        metrics = tmp_path / "telemetry.json"
        code = main([
            "sweep", "--benchmarks", "grep", "--limit", "2",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        assert "limit reached" in capsys.readouterr().out
        document = json.loads(metrics.read_text())
        assert document["schema"] == "repro.telemetry/1"
        assert document["counters"]["sweep.cache.miss"] == 2
        assert document["histograms"]["sweep.point.wall_s"]["count"] == 2
        assert len(document["points"]) == 2
        assert {"wall_s", "prepare_s", "simulate_s"} <= set(
            document["points"][0]
        )

    def test_telemetry_progress_line(self, capsys, tmp_path, monkeypatch,
                                     grep_prepared):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main([
            "sweep", "--benchmarks", "grep", "--limit", "1", "--telemetry",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "\r[1/560]" in captured.err


class TestArgumentErrors:
    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "nope"])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "7"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCompile:
    def test_compile_and_run(self, tmp_path, capsys):
        source = tmp_path / "prog.c"
        source.write_text(
            "int main() { int c = getc(0); while (c >= 0)"
            " { putc(1, c); c = getc(0); } return 3; }"
        )
        stdin = tmp_path / "in.txt"
        stdin.write_text("echo!")
        code = main(["compile", str(source), "--stdin", str(stdin)])
        assert code == 3
        out = capsys.readouterr()
        assert out.out == "echo!"
        assert "nodes retired" in out.err

    def test_dump_asm(self, tmp_path, capsys):
        source = tmp_path / "prog.c"
        source.write_text("int main() { return 0; }")
        assert main(["compile", str(source), "--dump-asm"]) == 0
        out = capsys.readouterr().out
        assert ".entry _start" in out
        assert "block f_main" in out

    def test_compile_error_propagates(self, tmp_path):
        source = tmp_path / "bad.c"
        source.write_text("int main( { }")
        import pytest as _pytest
        from repro.lang.errors import CompileError

        with _pytest.raises(CompileError):
            main(["compile", str(source)])


class TestDot:
    def test_dot_output(self, capsys, grep_prepared):
        assert main(["dump", "--benchmark", "grep", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph cfg {")
        assert '"_start"' in out
        assert out.rstrip().endswith("}")

    def test_dot_enlarged_shows_fault_edges(self, capsys, grep_prepared):
        assert main(["dump", "--benchmark", "grep", "--enlarged", "--dot"]) == 0
        out = capsys.readouterr().out
        assert 'label="fault"' in out
        assert "fillcolor=lightgrey" in out


class TestSweep:
    def test_sweep_limit_budgets_work(self, capsys, tmp_path, monkeypatch,
                                      grep_prepared):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["sweep", "--benchmarks", "grep", "--limit", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "limit reached" in out

    def test_sweep_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError):
            main(["sweep", "--benchmarks", "bogus", "--limit", "1"])
