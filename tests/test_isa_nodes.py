"""Tests for node construction, classification and dataflow queries."""

import pytest

from repro.isa import (
    AluOp,
    Imm,
    IssueClass,
    MemWidth,
    NodeKind,
    Reg,
    SyscallOp,
    alu,
    assert_node,
    branch,
    call,
    jump,
    load,
    mov,
    movi,
    ret,
    store,
    syscall,
)
from repro.isa.registers import parse_reg, reg_name


class TestOperands:
    def test_reg_bounds(self):
        Reg(0)
        Reg(63)
        with pytest.raises(ValueError):
            Reg(64)
        with pytest.raises(ValueError):
            Reg(-1)

    def test_imm_bounds(self):
        Imm(2**31 - 1)
        Imm(-(2**31))
        with pytest.raises(ValueError):
            Imm(2**31)

    def test_equality_and_hash(self):
        assert Reg(3) == Reg(3)
        assert Reg(3) != Reg(4)
        assert Imm(5) == Imm(5)
        assert Reg(5) != Imm(5)
        assert len({Reg(1), Reg(1), Imm(1)}) == 2


class TestRegisterNames:
    def test_roundtrip_all(self):
        for index in range(64):
            assert parse_reg(reg_name(index)) == index

    def test_special_names(self):
        assert reg_name(62) == "sp"
        assert parse_reg("sp") == 62
        assert parse_reg("r62") == 62

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            parse_reg("bogus")


class TestAluNodes:
    def test_binary(self):
        node = alu(AluOp.ADD, 1, Reg(2), Imm(3))
        assert node.kind is NodeKind.ALU
        assert node.dest_reg() == 1
        assert node.source_regs() == (2,)
        assert node.issue_class is IssueClass.ALU
        assert not node.is_terminator

    def test_unary_rejects_two_operands(self):
        with pytest.raises(ValueError):
            alu(AluOp.NEG, 1, Reg(2), Reg(3))

    def test_binary_requires_two_operands(self):
        with pytest.raises(ValueError):
            alu(AluOp.ADD, 1, Reg(2))

    def test_movi_and_mov(self):
        assert movi(4, 77).src1 == Imm(77)
        assert mov(4, 5).source_regs() == (5,)


class TestMemoryNodes:
    def test_load(self):
        node = load(3, 62, 8, MemWidth.BYTE)
        assert node.kind is NodeKind.LOAD
        assert node.is_memory
        assert node.issue_class is IssueClass.MEM
        assert node.source_regs() == (62,)
        assert node.dest_reg() == 3

    def test_store_sources_include_base_and_value(self):
        node = store(Reg(4), 62, 0)
        assert sorted(node.source_regs()) == [4, 62]
        assert node.dest_reg() is None

    def test_store_immediate_value(self):
        node = store(Imm(9), 10, 4)
        assert node.source_regs() == (10,)


class TestControlNodes:
    def test_branch(self):
        node = branch(5, "yes", "no", expect_taken=True)
        assert node.is_terminator
        assert node.issue_class is IssueClass.ALU
        assert node.target == "yes"
        assert node.alt_target == "no"
        assert node.expect_taken is True

    def test_jump_call_ret(self):
        assert jump("L").target == "L"
        node = call("f", "after")
        assert (node.target, node.alt_target) == ("f", "after")
        assert ret().kind is NodeKind.RET

    def test_assert_node(self):
        node = assert_node(7, True, "recover")
        assert not node.is_terminator
        assert node.source_regs() == (7,)
        assert node.target == "recover"

    def test_retarget(self):
        node = branch(1, "a", "b")
        mapped = node.retarget({"a": "x"})
        assert mapped.target == "x"
        assert mapped.alt_target == "b"
        # Unmapped nodes are returned unchanged (same object).
        assert node.retarget({"zz": "q"}) is node


class TestSyscallNodes:
    def test_exit_has_no_continuation(self):
        node = syscall(SyscallOp.EXIT, None, (0,))
        assert node.is_terminator
        assert node.issue_class is IssueClass.NONE
        with pytest.raises(ValueError):
            syscall(SyscallOp.EXIT, "somewhere", (0,))

    def test_getc_requires_continuation(self):
        with pytest.raises(ValueError):
            syscall(SyscallOp.GETC, None, (1,), dest=0)

    def test_args_are_sources(self):
        node = syscall(SyscallOp.WRITE, "next", (1, 2, 3), dest=0)
        assert node.source_regs() == (1, 2, 3)
        assert node.dest_reg() == 0
