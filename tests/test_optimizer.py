"""Optimizer tests: local passes, liveness, CFG simplification."""

from repro.isa import (
    AluOp,
    Imm,
    Reg,
    SyscallOp,
    alu,
    branch,
    jump,
    load,
    mov,
    movi,
    ret,
    store,
    syscall,
)
from repro.isa.ops import NodeKind
from repro.opt.liveness import compute_liveness
from repro.opt.localopt import eliminate_dead, forward_optimize
from repro.opt.simplify_cfg import merge_chains, remove_unreachable, thread_jumps
from repro.program import BasicBlock, Program


class TestForwardOptimize:
    def test_constant_folding(self):
        nodes = [
            movi(1, 6),
            movi(2, 7),
            alu(AluOp.MUL, 3, Reg(1), Reg(2)),
            ret(),
        ]
        out = forward_optimize(nodes)
        folded = out[2]
        assert folded.op is AluOp.MOV
        assert folded.src1 == Imm(42)

    def test_copy_propagation(self):
        nodes = [
            mov(2, 1),
            alu(AluOp.ADD, 3, Reg(2), Imm(5)),
            ret(),
        ]
        out = forward_optimize(nodes)
        assert out[1].src1 == Reg(1)

    def test_copy_invalidated_by_redefinition(self):
        nodes = [
            mov(2, 1),
            movi(1, 9),
            alu(AluOp.ADD, 3, Reg(2), Imm(0)),
            ret(),
        ]
        out = forward_optimize(nodes)
        # r2 must NOT be rewritten to r1 (r1 changed since the copy).
        add = out[2]
        assert add.src1 == Reg(2)

    def test_strength_reduction_mul_pow2(self):
        nodes = [alu(AluOp.MUL, 2, Reg(1), Imm(8)), ret()]
        out = forward_optimize(nodes)
        assert out[0].op is AluOp.SHL
        assert out[0].src2 == Imm(3)

    def test_add_zero_becomes_mov(self):
        nodes = [alu(AluOp.ADD, 2, Reg(1), Imm(0)), ret()]
        out = forward_optimize(nodes)
        assert out[0].op is AluOp.MOV

    def test_xor_self_is_zero(self):
        nodes = [alu(AluOp.XOR, 2, Reg(1), Reg(1)), ret()]
        out = forward_optimize(nodes)
        assert out[0].op is AluOp.MOV
        assert out[0].src1 == Imm(0)

    def test_cse_reuses_computation(self):
        nodes = [
            alu(AluOp.ADD, 2, Reg(1), Imm(4)),
            alu(AluOp.ADD, 3, Reg(1), Imm(4)),
            ret(),
        ]
        out = forward_optimize(nodes)
        second = out[1]
        assert second.op is AluOp.MOV
        assert second.src1 == Reg(2)

    def test_cse_invalidated_by_operand_write(self):
        nodes = [
            alu(AluOp.ADD, 2, Reg(1), Imm(4)),
            load(1, 10, 0),  # r1 now holds an unknown value
            alu(AluOp.ADD, 3, Reg(1), Imm(4)),
            ret(),
        ]
        out = forward_optimize(nodes)
        assert out[2].op is AluOp.ADD

    def test_redundant_load_elimination(self):
        nodes = [
            load(2, 10, 8),
            load(3, 10, 8),
            ret(),
        ]
        out = forward_optimize(nodes)
        assert out[1].op is AluOp.MOV
        assert out[1].src1 == Reg(2)

    def test_store_invalidates_loads(self):
        nodes = [
            load(2, 10, 8),
            store(Reg(5), 11, 0),
            load(3, 10, 8),
            ret(),
        ]
        out = forward_optimize(nodes)
        assert out[2].kind is NodeKind.LOAD

    def test_store_to_load_forwarding(self):
        nodes = [
            store(Reg(5), 10, 8),
            load(3, 10, 8),
            ret(),
        ]
        out = forward_optimize(nodes)
        assert out[1].op is AluOp.MOV
        assert out[1].src1 == Reg(5)

    def test_branch_condition_stays_register(self):
        nodes = [movi(1, 1), branch(1, "a", "b")]
        out = forward_optimize(nodes)
        assert out[1].src1 == Reg(1)

    def test_self_copy_removed(self):
        nodes = [mov(2, 3), mov(3, 3), ret()]
        out = forward_optimize(nodes)
        assert len(out) == 2

    def test_constant_reaches_store_value(self):
        nodes = [movi(2, 65), store(Reg(2), 10, 0), ret()]
        out = forward_optimize(nodes)
        assert out[1].src1 == Imm(65)


class TestDeadElimination:
    def test_removes_dead_alu(self):
        nodes = [movi(1, 5), movi(2, 6), ret()]
        out = eliminate_dead(nodes, live_out={2})
        assert len(out) == 2
        assert out[0].dest == 2

    def test_keeps_transitively_used(self):
        nodes = [
            movi(1, 5),
            alu(AluOp.ADD, 2, Reg(1), Imm(1)),
            ret(),
        ]
        out = eliminate_dead(nodes, live_out={2})
        assert len(out) == 3

    def test_never_removes_stores(self):
        nodes = [movi(1, 5), store(Reg(1), 10, 0), ret()]
        out = eliminate_dead(nodes, live_out=set())
        assert len(out) == 3

    def test_removes_dead_load(self):
        nodes = [load(1, 10, 0), ret()]
        out = eliminate_dead(nodes, live_out=set())
        assert len(out) == 1

    def test_overwritten_value_is_dead(self):
        nodes = [movi(1, 5), movi(1, 6), ret()]
        out = eliminate_dead(nodes, live_out={1})
        assert len(out) == 2
        assert out[0].src1 == Imm(6)


class TestLiveness:
    def test_branch_propagates_liveness(self):
        program = Program(
            [
                BasicBlock("a", [movi(1, 1), movi(2, 2)], branch(1, "u", "v")),
                BasicBlock("u", [], syscall(SyscallOp.EXIT, None, (2,))),
                BasicBlock("v", [], syscall(SyscallOp.EXIT, None, ())),
            ],
            entry="a",
        )
        info = compute_liveness(program)
        assert 2 in info.live_in["u"]
        assert 2 in info.live_out["a"]
        assert 2 not in info.live_in["v"]

    def test_loop_liveness(self):
        program = Program(
            [
                BasicBlock("head", [alu(AluOp.ADD, 1, Reg(1), Imm(1))],
                           branch(1, "head", "out")),
                BasicBlock("out", [], syscall(SyscallOp.EXIT, None, (1,))),
            ],
            entry="head",
        )
        info = compute_liveness(program)
        assert 1 in info.live_in["head"]

    def test_ret_boundary_includes_callee_saved(self):
        from repro.isa.registers import LOCAL_FIRST, RV

        program = Program([BasicBlock("f", [], ret())], entry="f")
        info = compute_liveness(program)
        assert RV in info.live_out["f"]
        assert LOCAL_FIRST in info.live_out["f"]


class TestSimplifyCfg:
    def test_thread_jumps(self):
        program = Program(
            [
                BasicBlock("a", [movi(1, 1)], branch(1, "hop", "end")),
                BasicBlock("hop", [], jump("end")),
                BasicBlock("end", [], syscall(SyscallOp.EXIT, None, (1,))),
            ],
            entry="a",
        )
        threaded = thread_jumps(program)
        assert threaded.block("a").terminator.target == "end"

    def test_thread_jump_chains(self):
        program = Program(
            [
                BasicBlock("a", [], jump("b")),
                BasicBlock("b", [], jump("c")),
                BasicBlock("c", [], jump("d")),
                BasicBlock("d", [], ret()),
            ],
            entry="a",
        )
        threaded = thread_jumps(program)
        assert threaded.block("a").terminator.target == "d"

    def test_jump_cycle_does_not_hang(self):
        program = Program(
            [
                BasicBlock("a", [], jump("b")),
                BasicBlock("b", [], jump("a")),
            ],
            entry="a",
        )
        thread_jumps(program)  # must terminate

    def test_remove_unreachable(self):
        program = Program(
            [
                BasicBlock("a", [], ret()),
                BasicBlock("dead", [], ret()),
            ],
            entry="a",
        )
        cleaned = remove_unreachable(program)
        assert "dead" not in cleaned.blocks

    def test_merge_single_pred_chain(self):
        program = Program(
            [
                BasicBlock("a", [movi(1, 1)], jump("b")),
                BasicBlock("b", [movi(2, 2)], ret()),
            ],
            entry="a",
        )
        merged = merge_chains(program)
        assert len(merged) == 1
        merged_block = merged.block("a")
        assert len(merged_block.body) == 2
        assert merged_block.terminator.kind is NodeKind.RET

    def test_no_merge_with_two_preds(self):
        program = Program(
            [
                BasicBlock("a", [movi(1, 1)], branch(1, "j", "k")),
                BasicBlock("j", [], jump("t")),
                BasicBlock("k", [], jump("t")),
                BasicBlock("t", [], ret()),
            ],
            entry="a",
        )
        merged = merge_chains(program)
        assert "t" in merged.blocks
