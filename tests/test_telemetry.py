"""Telemetry subsystem tests: collector API, exporters, null fast path."""

import io
import json
import tracemalloc

import pytest

import repro.telemetry.collector as collector_module
from repro.machine.config import BranchMode, Discipline, MachineConfig
from repro.machine.simulator import simulate
from repro.stats.aggregate import histogram_stats, telemetry_report
from repro.telemetry import (
    ATTRIBUTION_BUCKETS,
    EVENT_NAMES,
    Collector,
    MetricsCollector,
    NULL_COLLECTOR,
    ProgressLine,
    TID_MEM,
    TraceCollector,
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)

DYN_CONFIG = MachineConfig(
    discipline=Discipline.DYNAMIC,
    issue_model=8,
    memory="D",
    branch_mode=BranchMode.ENLARGED,
    window_blocks=4,
)
STATIC_CONFIG = MachineConfig(
    discipline=Discipline.STATIC,
    issue_model=4,
    memory="E",
    branch_mode=BranchMode.SINGLE,
)

#: Every SimResult field that must not depend on telemetry being on.
_COMPARED_FIELDS = (
    "cycles", "retired_nodes", "discarded_nodes", "dynamic_blocks",
    "mispredicts", "branch_lookups", "faults", "loads", "stores",
    "cache_accesses", "cache_misses", "write_buffer_hits",
    "issue_words", "issued_slots", "window_block_cycles", "window_samples",
)


class TestMetricsCollector:
    def test_count_accumulates(self):
        collector = MetricsCollector()
        collector.count("a")
        collector.count("a", 4)
        collector.count("b")
        assert collector.counters == {"a": 5, "b": 1}

    def test_observe_records_samples(self):
        collector = MetricsCollector()
        collector.observe("h", 1.0)
        collector.observe("h", 3.0)
        assert collector.histograms["h"] == [1.0, 3.0]

    def test_timer_accumulates(self):
        collector = MetricsCollector()
        with collector.time("t"):
            pass
        with collector.time("t"):
            pass
        total, count = collector.timers["t"]
        assert count == 2
        assert total >= 0.0

    def test_record_point(self):
        collector = MetricsCollector()
        collector.record_point(benchmark="sort", wall_s=1.5)
        assert collector.points == [{"benchmark": "sort", "wall_s": 1.5}]

    def test_metrics_collector_drops_events(self):
        collector = MetricsCollector()
        collector.event("issue.slot", 3)
        assert collector.events == []
        assert not collector.tracing


class TestNullCollector:
    def test_flags(self):
        assert not NULL_COLLECTOR.enabled
        assert not NULL_COLLECTOR.tracing
        assert isinstance(NULL_COLLECTOR, Collector)

    def test_writes_are_noops(self):
        NULL_COLLECTOR.count("a")
        NULL_COLLECTOR.observe("h", 1.0)
        NULL_COLLECTOR.event("issue.slot", 0)
        NULL_COLLECTOR.record_point(x=1)
        with NULL_COLLECTOR.time("t"):
            pass
        assert NULL_COLLECTOR.counters == {}
        assert NULL_COLLECTOR.histograms == {}
        assert NULL_COLLECTOR.timers == {}
        assert NULL_COLLECTOR.events == []
        assert NULL_COLLECTOR.points == []


class TestTraceCollector:
    def test_events_recorded_as_tuples(self):
        collector = TraceCollector()
        collector.event("mem.load", 7, 10, TID_MEM, {"addr": 4})
        assert collector.events == [(7, 10, "mem.load", TID_MEM, {"addr": 4})]
        assert collector.tracing and collector.enabled


@pytest.fixture(scope="module")
def traced_dynamic(request):
    """(SimResult, TraceCollector) for one dynamic point on grep."""
    prepared = request.getfixturevalue("grep_prepared")
    collector = TraceCollector()
    result = simulate(prepared, DYN_CONFIG, collector=collector)
    return result, collector


@pytest.fixture(scope="module")
def traced_static(request):
    prepared = request.getfixturevalue("grep_prepared")
    collector = TraceCollector()
    result = simulate(prepared, STATIC_CONFIG, collector=collector)
    return result, collector


class TestEnginesUnchangedByTracing:
    """Telemetry on vs off must not change any simulation statistic."""

    @pytest.mark.parametrize("config", [DYN_CONFIG, STATIC_CONFIG],
                             ids=["dynamic", "static"])
    def test_simresult_identical(self, grep_prepared, config):
        plain = simulate(grep_prepared, config)
        traced = simulate(grep_prepared, config, collector=TraceCollector())
        for field in _COMPARED_FIELDS:
            assert getattr(plain, field) == getattr(traced, field), field

    def test_null_collector_event_never_called(self, grep_prepared,
                                               monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("event() called on the disabled path")

        monkeypatch.setattr(Collector, "event", boom)
        simulate(grep_prepared, DYN_CONFIG)
        simulate(grep_prepared, STATIC_CONFIG)

    def test_null_path_makes_no_telemetry_allocations(self, grep_prepared):
        """The per-cycle hot loops allocate nothing in telemetry code."""
        simulate(grep_prepared, DYN_CONFIG)  # warm every lazy cache
        tracemalloc.start()
        try:
            simulate(grep_prepared, DYN_CONFIG)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        telemetry_file = collector_module.__file__
        stats = snapshot.filter_traces(
            [tracemalloc.Filter(True, telemetry_file)]
        ).statistics("filename")
        assert sum(s.count for s in stats) == 0


class TestTraceContents:
    def test_event_names_are_stable(self, traced_dynamic, traced_static):
        for _result, collector in (traced_dynamic, traced_static):
            names = {event[2] for event in collector.events}
            assert names
            assert names <= EVENT_NAMES

    def test_dynamic_trace_covers_all_hook_classes(self, traced_dynamic):
        _result, collector = traced_dynamic
        names = {event[2] for event in collector.events}
        assert {"issue.slot", "window.occupancy", "mem.load", "mem.store",
                "branch.resolve", "block.fault", "block.retire"} <= names

    def test_static_trace_has_no_window_events(self, traced_static):
        _result, collector = traced_static
        names = {event[2] for event in collector.events}
        assert "window.occupancy" not in names
        assert "issue.slot" in names

    def test_issued_slots_match_trace(self, traced_dynamic):
        result, collector = traced_dynamic
        slots = sum(1 for e in collector.events if e[2] == "issue.slot")
        assert slots == result.issued_slots

    def test_window_occupancy_bounded(self, traced_dynamic):
        _result, collector = traced_dynamic
        values = [e[4]["blocks"] for e in collector.events
                  if e[2] == "window.occupancy"]
        assert values
        assert all(1 <= v <= DYN_CONFIG.window_blocks for v in values)

    def test_mispredict_events_match_result(self, traced_dynamic):
        result, collector = traced_dynamic
        mispredicts = sum(
            1 for e in collector.events
            if e[2] == "branch.resolve" and e[4]["mispredict"]
        )
        assert mispredicts == result.mispredicts

    def test_memory_events_match_result(self, traced_dynamic):
        result, collector = traced_dynamic
        load_events = [e for e in collector.events if e[2] == "mem.load"]
        store_events = [e for e in collector.events if e[2] == "mem.store"]
        misses = sum(1 for e in load_events if e[4]["miss"])
        wb_hits = sum(1 for e in load_events if e[4]["wb_hit"])
        assert len(load_events) == result.loads
        assert len(store_events) == result.stores
        assert wb_hits == result.write_buffer_hits
        # cache_misses additionally counts store-probe misses.
        assert 0 < misses <= result.cache_misses


class TestChromeExporter:
    def test_document_is_valid_and_monotonic(self, traced_dynamic):
        _result, collector = traced_dynamic
        buffer = io.StringIO()
        write_chrome_trace(collector, buffer, benchmark="grep",
                           config=str(DYN_CONFIG))
        document = json.loads(buffer.getvalue())
        events = document["traceEvents"]
        assert events
        timestamps = [e["ts"] for e in events if "ts" in e]
        assert all(a <= b for a, b in zip(timestamps, timestamps[1:]))
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i", "C"}
        for event in events:
            assert event["name"]
            if event["ph"] == "X":
                assert event["dur"] >= 1

    def test_slot_events_become_counter_track(self, traced_dynamic):
        _result, collector = traced_dynamic
        document = chrome_trace(collector)
        names = {e["name"] for e in document["traceEvents"]}
        assert "issue.slots" in names
        assert "issue.slot" not in names  # folded, not emitted raw
        sample = next(e for e in document["traceEvents"]
                      if e["name"] == "issue.slots")
        assert set(sample["args"]) == {"alu", "mem"}

    def test_writes_to_path(self, traced_static, tmp_path):
        _result, collector = traced_static
        out = tmp_path / "trace.json"
        write_chrome_trace(collector, str(out))
        document = json.loads(out.read_text())
        assert document["traceEvents"]


class TestJsonlExporter:
    def test_lines_are_json_and_monotonic(self, traced_dynamic):
        _result, collector = traced_dynamic
        lines = list(jsonl_lines(collector))
        assert lines
        records = [json.loads(line) for line in lines]
        timestamps = [r["ts"] for r in records]
        assert all(a <= b for a, b in zip(timestamps, timestamps[1:]))
        assert {r["name"] for r in records} <= EVENT_NAMES

    def test_writes_to_path(self, traced_dynamic, tmp_path):
        _result, collector = traced_dynamic
        out = tmp_path / "trace.jsonl"
        write_jsonl(collector, str(out))
        first = out.read_text().splitlines()[0]
        assert "ts" in json.loads(first)


class TestDerivedSimResultFields:
    def test_dynamic_utilization_in_range(self, traced_dynamic):
        result, _collector = traced_dynamic
        assert 0.0 < result.issue_utilization <= 1.0
        assert 1.0 <= result.avg_window_blocks <= DYN_CONFIG.window_blocks

    def test_static_has_no_window_samples(self, traced_static):
        result, _collector = traced_static
        assert result.window_samples == 0
        assert result.avg_window_blocks == 0.0
        assert 0.0 < result.issue_utilization <= 1.0


class TestTelemetryReport:
    def test_histogram_stats(self):
        stats = histogram_stats([3.0, 1.0, 2.0])
        assert stats["count"] == 3
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)
        assert histogram_stats([]) == {"count": 0}

    def test_report_shape_and_json_roundtrip(self):
        collector = MetricsCollector()
        collector.count("sweep.cache.hit", 2)
        collector.observe("sweep.point.wall_s", 0.5)
        with collector.time("sweep.total_s"):
            pass
        collector.record_point(benchmark="sort", wall_s=0.5)
        report = telemetry_report(collector)
        parsed = json.loads(json.dumps(report))
        assert parsed["schema"] == "repro.telemetry/1"
        assert parsed["counters"]["sweep.cache.hit"] == 2
        assert parsed["histograms"]["sweep.point.wall_s"]["count"] == 1
        assert parsed["timers"]["sweep.total_s"]["count"] == 1
        assert parsed["points"][0]["benchmark"] == "sort"


class TestSpans:
    def test_add_span_records_attributes(self):
        collector = MetricsCollector()
        collector.add_span("phase.prepare", 0.25, benchmark="sort")
        assert collector.spans == [
            {"name": "phase.prepare", "dur_s": 0.25, "benchmark": "sort"}
        ]

    def test_span_context_manager_times(self):
        collector = MetricsCollector()
        with collector.span("phase.simulate", benchmark="grep"):
            pass
        (span,) = collector.spans
        assert span["name"] == "phase.simulate"
        assert span["benchmark"] == "grep"
        assert span["dur_s"] >= 0.0

    def test_null_collector_span_is_noop(self):
        NULL_COLLECTOR.add_span("x", 1.0)
        with NULL_COLLECTOR.span("y"):
            pass
        assert NULL_COLLECTOR.spans == []

    def test_snapshot_merge_round_trip(self):
        worker = MetricsCollector()
        worker.count("sweep.cache.miss")
        worker.add_span("phase.simulate", 0.5, benchmark="sort")
        snap = json.loads(json.dumps(worker.snapshot()))
        parent = MetricsCollector()
        parent.merge(snap)
        parent.merge(snap)
        assert parent.counters["sweep.cache.miss"] == 2
        assert len(parent.spans) == 2
        assert parent.spans[0]["name"] == "phase.simulate"


#: Attribution must hold on every engine/mode combination, including
#: the sequential (issue model 1) dynamic path and both branch schemes.
_ATTR_CONFIGS = [
    DYN_CONFIG,
    STATIC_CONFIG,
    MachineConfig(discipline=Discipline.DYNAMIC, issue_model=1,
                  memory="A", branch_mode=BranchMode.SINGLE,
                  window_blocks=1),
    MachineConfig(discipline=Discipline.STATIC, issue_model=8,
                  memory="A", branch_mode=BranchMode.ENLARGED),
]
_ATTR_IDS = ["dyn8", "static4", "dyn-seq", "static-enlarged"]


class TestCycleAttribution:
    @pytest.mark.parametrize("config", _ATTR_CONFIGS, ids=_ATTR_IDS)
    def test_buckets_sum_exactly_to_cycles(self, grep_prepared, config):
        collector = MetricsCollector()
        result = simulate(grep_prepared, config, collector=collector)
        buckets = {
            name[len("attr."):]: value
            for name, value in result.extra.items()
            if name.startswith("attr.")
        }
        assert set(buckets) == set(ATTRIBUTION_BUCKETS)
        assert all(value >= 0 for value in buckets.values())
        assert sum(buckets.values()) == result.cycles
        engine = ("dynamic" if config.discipline is Discipline.DYNAMIC
                  else "static")
        for name in ATTRIBUTION_BUCKETS:
            assert (collector.counters[f"cycles.{engine}.{name}"]
                    == buckets[name]), name

    def test_disabled_collector_attaches_nothing(self, grep_prepared):
        result = simulate(grep_prepared, DYN_CONFIG)
        assert not any(name.startswith("attr.") for name in result.extra)

    def test_disabled_collector_sees_no_writes(self, grep_prepared):
        """Zero-cost-when-disabled tripwire: a disabled collector must
        never receive a single write call from either engine."""

        class Tripwire(Collector):
            enabled = False
            tracing = False

            def count(self, *args, **kwargs):
                raise AssertionError("count() on the disabled path")

            def observe(self, *args, **kwargs):
                raise AssertionError("observe() on the disabled path")

            def event(self, *args, **kwargs):
                raise AssertionError("event() on the disabled path")

            def record_point(self, *args, **kwargs):
                raise AssertionError("record_point() on the disabled path")

            def add_span(self, *args, **kwargs):
                raise AssertionError("add_span() on the disabled path")

        simulate(grep_prepared, DYN_CONFIG, collector=Tripwire())
        simulate(grep_prepared, STATIC_CONFIG, collector=Tripwire())

    def test_attribution_does_not_change_timing(self, grep_prepared):
        plain = simulate(grep_prepared, DYN_CONFIG)
        counted = simulate(grep_prepared, DYN_CONFIG,
                           collector=MetricsCollector())
        for field in _COMPARED_FIELDS:
            assert getattr(plain, field) == getattr(counted, field), field


class TestReportSections:
    def test_phases_and_attribution_in_report(self):
        collector = MetricsCollector()
        collector.add_span("phase.simulate", 0.5, benchmark="sort")
        collector.add_span("phase.simulate", 0.25, benchmark="grep")
        collector.add_span("phase.prepare", 0.1, benchmark="sort")
        collector.count("cycles.dynamic.issued_full", 75)
        collector.count("cycles.dynamic.issue_stall", 25)
        report = json.loads(json.dumps(telemetry_report(collector)))
        assert report["phases"]["phase.simulate"] == {
            "total_s": 0.75, "count": 2,
        }
        assert report["phases"]["phase.prepare"]["count"] == 1
        attribution = report["attribution"]["dynamic"]
        assert attribution["total_cycles"] == 100
        assert attribution["buckets"]["issued_full"] == 75
        assert attribution["shares"]["issue_stall"] == pytest.approx(0.25)

    def test_empty_collector_report_sections(self):
        report = telemetry_report(MetricsCollector())
        assert report["phases"] == {}
        assert report["attribution"] == {}


class TestProgressLine:
    def test_updates_rewrite_one_line(self):
        stream = io.StringIO()
        progress = ProgressLine(10, stream=stream)
        progress.update(1, "longer text here")
        progress.update(2, "short")
        progress.finish()
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert text.endswith("\n")
        assert "[2/10] short" in text

    def test_finish_without_updates_writes_nothing(self):
        stream = io.StringIO()
        ProgressLine(5, stream=stream).finish()
        assert stream.getvalue() == ""
