"""Interpreter tests: memory, faults, block atomicity, syscalls, traces.

Hand-written assembly (via the parser) pins down the architectural
semantics that the compiler tests can't reach directly -- especially the
block-atomic store buffer and assert-fault rollback.
"""

import pytest

from repro.interp import (
    Interpreter,
    InterpreterError,
    NodeBudgetExceeded,
    SimMemory,
    SyscallError,
    SyscallHost,
    run_program,
)
from repro.interp.memory import MemoryFault
from repro.interp.trace import NOT_TAKEN, OTHER, TAKEN
from repro.lang import compile_source
from repro.program import parse_program
from repro.program.program import GLOBAL_BASE


def run_asm(text, inputs=None, record_trace=True):
    program = parse_program(text)
    return run_program(program, inputs=inputs or {0: b""},
                       record_trace=record_trace)


class TestSimMemory:
    def test_word_roundtrip(self):
        memory = SimMemory(0x10000)
        memory.store_word(0x2000, -123456)
        assert memory.load_word(0x2000) == -123456

    def test_byte_roundtrip_unsigned(self):
        memory = SimMemory(0x10000)
        memory.store_byte(0x2000, 0xFF)
        assert memory.load_byte(0x2000) == 255

    def test_little_endian(self):
        memory = SimMemory(0x10000)
        memory.store_word(0x2000, 0x04030201)
        assert [memory.load_byte(0x2000 + i) for i in range(4)] == [1, 2, 3, 4]

    def test_null_page_guarded(self):
        memory = SimMemory(0x10000)
        with pytest.raises(MemoryFault):
            memory.load_word(0)
        with pytest.raises(MemoryFault):
            memory.store_byte(0xFFF, 1)

    def test_out_of_range(self):
        memory = SimMemory(0x10000)
        with pytest.raises(MemoryFault):
            memory.load_word(0x10000 - 2)

    def test_data_loaded_at_global_base(self):
        memory = SimMemory(0x10000, data=b"\x2a\x00\x00\x00")
        assert memory.load_word(GLOBAL_BASE) == 42

    def test_read_cstring(self):
        memory = SimMemory(0x10000, data=b"hi\x00rest")
        assert memory.read_cstring(GLOBAL_BASE) == b"hi"


class TestSyscallHost:
    def test_getc_stream_and_eof(self):
        host = SyscallHost(inputs={0: b"ab"})
        assert [host.getc(0), host.getc(0), host.getc(0)] == [97, 98, -1]

    def test_getc_unknown_fd(self):
        host = SyscallHost(inputs={0: b""})
        with pytest.raises(SyscallError):
            host.getc(5)

    def test_putc_collects_output(self):
        host = SyscallHost(inputs={})
        host.putc(1, 0x41)
        host.putc(1, 0x158)  # truncated to a byte
        assert host.output_bytes(1) == b"AX"

    def test_read_block_chunks(self):
        host = SyscallHost(inputs={0: b"abcdef"})
        assert host.read_block(0, 4) == b"abcd"
        assert host.read_block(0, 4) == b"ef"
        assert host.read_block(0, 4) == b""

    def test_write_block(self):
        host = SyscallHost(inputs={})
        assert host.write_block(1, b"xyz") == 3
        assert host.output_bytes(1) == b"xyz"

    def test_fd_cannot_be_input_and_output(self):
        with pytest.raises(SyscallError):
            SyscallHost(inputs={1: b""})


class TestBlockAtomicity:
    def test_store_buffer_visible_to_own_block_loads(self):
        result = run_asm("""
.entry a
block a:
    mov r1, #8192
    mov r2, #77
    stw r2, [r1]
    ldw r3, [r1]
    sys exit(r3)
""")
        assert result.exit_code == 77

    def test_byte_store_merges_into_word(self):
        result = run_asm("""
.entry a
block a:
    mov r1, #8192
    mov r2, #305419896
    stw r2, [r1]
    stb r1, [r1+1]
    ldw r3, [r1]
    sys exit(r3)
""")
        # 0x12345678 with byte 1 overwritten by 8192 & 0xFF == 0.
        assert result.exit_code == 0x12340078

    def test_fault_discards_stores_and_registers(self):
        result = run_asm("""
.entry a
block a:
    mov r1, #8192
    mov r2, #1
    jmp b
block b:
    mov r2, #99
    stw r2, [r1]
    assert r2, 0, fault=c
    jmp c
block c:
    ldw r4, [r1]
    sys exit(r4)
""")
        # Block b faults (r2 is 99, expected falsy): its store is discarded
        # and r2 rolls back, so c loads the never-written zero.
        assert result.exit_code == 0

    def test_fault_register_rollback(self):
        result = run_asm("""
.entry a
block a:
    mov r2, #5
    jmp b
block b:
    mov r2, #50
    assert r2, 0, fault=c
    jmp c
block c:
    sys exit(r2)
""")
        assert result.exit_code == 5

    def test_assert_passes_silently(self):
        result = run_asm("""
.entry a
block a:
    mov r2, #1
    assert r2, 1, fault=bad
    sys exit(r2)
block bad:
    mov r2, #9
    sys exit(r2)
""")
        assert result.exit_code == 1


class TestTraps:
    def test_division_by_zero(self):
        with pytest.raises(InterpreterError):
            run_asm("""
.entry a
block a:
    mov r1, #0
    div r2, r1, r1
    sys exit(r2)
""")

    def test_unmapped_load(self):
        with pytest.raises(InterpreterError):
            run_asm("""
.entry a
block a:
    mov r1, #0
    ldw r2, [r1]
    sys exit(r2)
""")

    def test_ret_without_call(self):
        with pytest.raises(InterpreterError):
            run_asm("""
.entry a
block a:
    ret
""")

    def test_node_budget(self):
        program = parse_program("""
.entry spin
block spin:
    add r1, r1, #1
    jmp spin
""")
        host = SyscallHost(inputs={0: b""})
        interp = Interpreter(program, host, max_nodes=1000)
        with pytest.raises(NodeBudgetExceeded):
            interp.run()

    def test_sbrk_negative(self):
        with pytest.raises(InterpreterError):
            run_program(
                compile_source("int main() { sbrk(-4); return 0; }"),
                inputs={0: b""},
            )


class TestTraceRecording:
    def test_outcomes_and_labels(self):
        result = run_asm("""
.entry a
block a:
    mov r1, #1
    br r1, yes, no
block yes:
    mov r2, #0
    br r2, done, no
block no:
    jmp done
block done:
    sys exit(r1)
""")
        trace = result.trace
        assert [trace.label_of(i) for i in range(len(trace))] == [
            "a", "yes", "no", "done",
        ]
        assert trace.outcomes[0] == TAKEN
        assert trace.outcomes[1] == NOT_TAKEN
        assert trace.outcomes[2] == OTHER

    def test_address_count_matches_static_mem_count(self, sumloop_program):
        result = run_program(sumloop_program, inputs={0: b""})
        trace = result.trace
        mem_counts = {
            label: sum(1 for n in sumloop_program.block(label).nodes()
                       if n.is_memory)
            for label in sumloop_program.blocks
        }
        expected = sum(mem_counts[trace.label_of(i)] for i in range(len(trace)))
        assert len(trace.addresses) == expected

    def test_faulted_blocks_record_all_addresses(self):
        result = run_asm("""
.entry a
block a:
    mov r1, #8192
    mov r2, #1
    jmp b
block b:
    stw r2, [r1]
    assert r2, 0, fault=c
    ldw r3, [r1+4]
    stw r3, [r1+8]
    jmp c
block c:
    sys exit(r2)
""")
        trace = result.trace
        # Block b has 3 memory nodes; despite faulting at the assert all
        # three addresses must be recorded (speculative completion).
        position = [trace.label_of(i) for i in range(len(trace))].index("b")
        assert trace.fault_indices[position] == 1
        assert len(trace.addresses) == 3

    def test_retired_and_discarded_counts(self):
        result = run_asm("""
.entry a
block a:
    mov r2, #1
    jmp b
block b:
    mov r3, #2
    assert r2, 0, fault=c
    jmp c
block c:
    sys exit(r2)
""")
        trace = result.trace
        assert trace.discarded_nodes == 3  # mov + assert + jmp of block b
        assert trace.retired_nodes == 2  # a: mov + jmp; c: only the syscall

    def test_no_trace_mode(self):
        result = run_asm(
            ".entry a\nblock a:\n    mov r1, #3\n    sys exit(r1)\n",
            record_trace=False,
        )
        assert result.trace is None
        assert result.exit_code == 3


class TestCallStack:
    def test_nested_calls_return_in_order(self):
        result = run_asm("""
.entry main
block main:
    mov r1, #0
    call f, ret=after_f
block after_f:
    sys exit(r1)
block f:
    add r1, r1, #1
    call g, ret=after_g
block after_g:
    add r1, r1, #10
    ret
block g:
    add r1, r1, #100
    ret
""")
        assert result.exit_code == 111
