"""Semantic analysis tests: scoping, typing, lvalues, global inits."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse_source
from repro.lang.sema import analyze


def check(source):
    return analyze(parse_source(source))


def check_fails(source, fragment=""):
    with pytest.raises(SemanticError) as excinfo:
        check(source)
    assert fragment in str(excinfo.value)


MAIN = "int main() { return 0; }"


class TestScoping:
    def test_undefined_identifier(self):
        check_fails("int main() { return nope; }", "undefined identifier")

    def test_undefined_function(self):
        check_fails("int main() { return f(); }", "undefined function")

    def test_shadowing_in_inner_scope(self):
        check("int main() { int x = 1; { int x = 2; } return x; }")

    def test_inner_scope_not_visible_outside(self):
        check_fails("int main() { { int y = 1; } return y; }")

    def test_redefinition_same_scope(self):
        check_fails("int main() { int x; int x; }", "redefinition")

    def test_global_redefinition(self):
        check_fails("int g; int g; " + MAIN, "redefinition")

    def test_function_redefinition(self):
        check_fails("int f() { return 1; } int f() { return 2; } " + MAIN)

    def test_prototype_then_definition_ok(self):
        check("int f(int a); int f(int a) { return a; } " + MAIN)

    def test_conflicting_prototype(self):
        check_fails("int f(int a); char *f(int a) { return 0; } " + MAIN)

    def test_missing_main(self):
        check_fails("int f() { return 0; }", "main")

    def test_builtin_cannot_be_redefined(self):
        check_fails("int getc(int fd) { return 0; } " + MAIN, "built-in")


class TestTypes:
    def test_void_variable_rejected(self):
        check_fails("int main() { void v; }", "void")

    def test_deref_non_pointer(self):
        check_fails("int main() { int x; return *x; }", "dereference")

    def test_deref_void_pointer(self):
        check_fails("void *p() ; int main() { void *q; return *q; }")

    def test_index_non_pointer(self):
        check_fails("int main() { int x; return x[0]; }", "indexing")

    def test_pointer_plus_pointer_rejected(self):
        check_fails(
            "int main() { int *a; int *b; return (a + b) == 0; }"
        )

    def test_pointer_minus_pointer_is_int(self):
        check("int main() { int *a; int *b; return a - b; }")

    def test_modulo_on_pointer_rejected(self):
        check_fails("int main() { int *a; return a % 2; }", "arithmetic")

    def test_array_assignment_rejected(self):
        check_fails("int main() { int a[4]; int b[4]; a = b; }")

    def test_call_arity_checked(self):
        check_fails(
            "int f(int a, int b) { return a; } int main() { return f(1); }",
            "expects 2 arguments",
        )

    def test_too_many_params(self):
        params = ", ".join(f"int a{i}" for i in range(7))
        check_fails(f"int f({params}) {{ return 0; }} " + MAIN, "parameters")

    def test_sizeof_values(self):
        result = check("int main() { return sizeof(int) + sizeof(char); }")
        assert result is not None


class TestLValues:
    def test_assign_to_literal(self):
        check_fails("int main() { 3 = 4; }", "not assignable")

    def test_assign_to_call(self):
        check_fails(
            "int f() { return 1; } int main() { f() = 2; }", "not assignable"
        )

    def test_incdec_requires_lvalue(self):
        check_fails("int main() { return (1 + 2)++; }", "not assignable")

    def test_address_of_marks_symbol(self):
        unit = parse_source("int main() { int x; int *p = &x; return *p; }")
        analyze(unit)
        decl = unit.functions[0].body.statements[0]
        assert decl.symbol.addr_taken

    def test_unaddressed_scalar_not_marked(self):
        unit = parse_source("int main() { int x = 1; return x; }")
        analyze(unit)
        decl = unit.functions[0].body.statements[0]
        assert not decl.symbol.addr_taken

    def test_arrays_always_addr_taken(self):
        unit = parse_source("int main() { int a[4]; return a[0]; }")
        analyze(unit)
        assert unit.functions[0].body.statements[0].symbol.addr_taken


class TestControlChecks:
    def test_break_outside_loop(self):
        check_fails("int main() { break; }", "break")

    def test_continue_outside_loop(self):
        check_fails("int main() { continue; }", "continue")

    def test_break_inside_loop_ok(self):
        check("int main() { while (1) break; return 0; }")

    def test_void_return_with_value(self):
        check_fails("void f() { return 3; } " + MAIN, "void function")

    def test_nonvoid_return_without_value(self):
        check_fails("int f() { return; } " + MAIN, "without a value")


class TestGlobalInits:
    def test_constant_folding(self):
        result = check("int x = 2 * 3 + (1 << 4); " + MAIN)
        assert result.global_inits["x"] == 22

    def test_non_constant_rejected(self):
        check_fails("int g; int x = g + 1; " + MAIN, "constant")

    def test_array_too_many_elements(self):
        check_fails("int v[2] = {1, 2, 3}; " + MAIN, "too many")

    def test_string_too_long(self):
        check_fails('char s[2] = "abc"; ' + MAIN, "too long")

    def test_string_pointer_init(self):
        result = check('char *s = "hello"; ' + MAIN)
        kind, label = result.global_inits["s"]
        assert kind == "string_ref"
        assert result.strings[label] == b"hello\x00"

    def test_string_interning(self):
        result = check('char *a = "x"; char *b = "x"; ' + MAIN)
        assert len(result.strings) == 1

    def test_local_array_initializer_rejected(self):
        check_fails("int main() { int a[2] = {1, 2}; }", "elementwise")

    def test_brace_on_scalar_rejected(self):
        check_fails("int x = {1}; " + MAIN, "non-array")
