"""Harness tests: result cache, aggregation, figure data plumbing."""

import json
import math

import pytest

from repro.harness.cache import CACHE_VERSION, ResultCache, result_key
from repro.harness.figures import (
    FIGURE2_BUCKETS,
    FIGURE5_COMPOSITES,
    _bucketize,
    discipline_lines,
    render_series_table,
)
from repro.harness.runner import SweepRunner, geometric_mean
from repro.machine.config import BranchMode, Discipline, MachineConfig
from repro.stats.results import SimResult


def make_config(**overrides):
    defaults = dict(
        discipline=Discipline.DYNAMIC,
        issue_model=8,
        memory="A",
        branch_mode=BranchMode.SINGLE,
        window_blocks=4,
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


def make_result(config, cycles=1000):
    return SimResult(
        benchmark="bench",
        config=config,
        cycles=cycles,
        retired_nodes=4000,
        discarded_nodes=100,
        dynamic_blocks=800,
        mispredicts=10,
        branch_lookups=100,
        faults=2,
        loads=300,
        stores=200,
        cache_accesses=500,
        cache_misses=25,
        write_buffer_hits=40,
        issue_words=1000,
        issued_slots=4100,
        window_block_cycles=2400,
        window_samples=800,
        work_nodes=4000,
    )


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_zero_tolerated(self):
        value = geometric_mean([0.0, 1.0])
        assert value >= 0.0 and math.isfinite(value)


class TestSimResultMetrics:
    def test_retired_per_cycle_uses_work(self):
        result = make_result(make_config(), cycles=2000)
        result.work_nodes = 8000
        assert result.retired_per_cycle == 4.0

    def test_redundancy(self):
        result = make_result(make_config())
        assert result.redundancy == pytest.approx(100 / 4100)

    def test_branch_accuracy(self):
        result = make_result(make_config())
        assert result.branch_accuracy == pytest.approx(0.9)

    def test_cache_hit_rate(self):
        result = make_result(make_config())
        assert result.cache_hit_rate == pytest.approx(0.95)

    def test_summary_is_one_line(self):
        assert "\n" not in make_result(make_config()).summary()

    def test_issue_utilization(self):
        result = make_result(make_config(issue_model=2))  # 1M+1A: width 2
        # 4100 issued datapath nodes over 1000 words x 2 slots.
        assert result.issue_utilization == pytest.approx(4100 / 2000)

    def test_issue_utilization_sequential_width_is_one(self):
        result = make_result(make_config(issue_model=1))
        assert result.issue_utilization == pytest.approx(4100 / 1000)

    def test_issue_utilization_zero_without_counters(self):
        result = make_result(make_config())
        result.issue_words = 0
        assert result.issue_utilization == 0.0

    def test_avg_window_blocks(self):
        result = make_result(make_config())
        assert result.avg_window_blocks == pytest.approx(2400 / 800)

    def test_avg_window_blocks_zero_without_samples(self):
        result = make_result(make_config())
        result.window_samples = 0
        assert result.avg_window_blocks == 0.0


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(path=str(tmp_path / "results.json"))
        config = make_config()
        cache.put(make_result(config), scale=1)
        loaded = cache.get("bench", config, 1)
        assert loaded is not None
        assert loaded.cycles == 1000
        assert loaded.retired_nodes == 4000
        assert loaded.work_nodes == 4000

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(path=str(tmp_path / "results.json"))
        assert cache.get("bench", make_config(), 1) is None

    def test_persistence_across_instances(self, tmp_path):
        path = str(tmp_path / "results.json")
        config = make_config()
        ResultCache(path=path).put(make_result(config), scale=1)
        assert ResultCache(path=path).get("bench", config, 1) is not None

    def test_scale_is_part_of_key(self, tmp_path):
        cache = ResultCache(path=str(tmp_path / "results.json"))
        config = make_config()
        cache.put(make_result(config), scale=1)
        assert cache.get("bench", config, 2) is None

    def test_key_distinguishes_configs(self):
        a = result_key("b", make_config(issue_model=3), 1)
        b = result_key("b", make_config(issue_model=4), 1)
        assert a != b
        assert f"v{CACHE_VERSION}" in a

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text("{not json")
        cache = ResultCache(path=str(path))
        assert cache.get("bench", make_config(), 1) is None

    def test_corrupt_file_counts_telemetry(self, tmp_path):
        from repro.telemetry import MetricsCollector

        path = tmp_path / "results.json"
        path.write_text("{truncated...")
        collector = MetricsCollector()
        cache = ResultCache(path=str(path), collector=collector)
        assert cache.get("bench", make_config(), 1) is None
        assert collector.counters["cache.corrupt"] == 1

    def test_corrupt_entry_recomputed_not_raised(self, tmp_path):
        """A truncated on-disk entry is dropped and recomputed (regression:
        this used to raise KeyError from SimResult reconstruction)."""
        from repro.telemetry import MetricsCollector

        path = tmp_path / "results.json"
        config = make_config()
        ResultCache(path=str(path)).put(make_result(config), scale=1)

        # Truncate the stored entry the way an interrupted writer or an
        # older code version would: fields missing.
        data = json.loads(path.read_text())
        (key,) = data.keys()
        del data[key]["cycles"]
        path.write_text(json.dumps(data))

        collector = MetricsCollector()
        cache = ResultCache(path=str(path), collector=collector)
        assert cache.get("bench", config, 1) is None  # no exception
        assert collector.counters["cache.corrupt"] == 1

        # The recomputed result can be stored and read back again.
        cache.put(make_result(config), scale=1)
        assert cache.get("bench", config, 1) is not None

    def test_entry_with_wrong_shape_recomputed(self, tmp_path):
        path = tmp_path / "results.json"
        config = make_config()
        cache = ResultCache(path=str(path))
        cache.put(make_result(config), scale=1)
        data = json.loads(path.read_text())
        (key,) = data.keys()
        data[key] = "not a dict"
        path.write_text(json.dumps(data))
        assert ResultCache(path=str(path)).get("bench", config, 1) is None


class TestFigureHelpers:
    def test_discipline_lines_count_and_labels(self):
        lines = discipline_lines()
        labels = [label for label, *_ in lines]
        assert len(labels) == 10
        assert "static/single" in labels
        assert "dyn256/perfect" in labels

    def test_bucketize_fractions_sum_to_one(self):
        from collections import Counter

        histogram = Counter({1: 5, 6: 3, 100: 2})
        fractions = _bucketize(histogram)
        assert len(fractions) == len(FIGURE2_BUCKETS) + 1
        assert sum(fractions) == pytest.approx(1.0)
        assert fractions[0] == pytest.approx(0.5)
        assert fractions[-1] == pytest.approx(0.2)

    def test_figure5_composites_shape(self):
        assert len(FIGURE5_COMPOSITES) == 14
        labels = [f"{m}{letter}" for m, letter in FIGURE5_COMPOSITES]
        assert "5B" in labels and "5D" in labels
        assert labels.index("5B") + 1 == labels.index("5D")

    def test_render_series_table(self):
        table = render_series_table(
            "title", ["c1", "c2"], {"line": [1.0, 2.0], "_hidden": [9.9]}
        )
        assert "title" in table
        assert "line" in table
        assert "_hidden" not in table
        assert "9.9" not in table


class TestSweepRunnerCaching:
    def test_run_point_uses_cache(self, tmp_path, monkeypatch, grep_prepared):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = SweepRunner(benchmarks=["grep"])
        config = make_config(issue_model=2)
        first = runner.run_point("grep", config)
        calls = []
        monkeypatch.setattr(
            "repro.harness.runner.simulate",
            lambda *a, **k: calls.append(1),
        )
        second = runner.run_point("grep", config)
        assert calls == []  # served from the on-disk cache
        assert second.cycles == first.cycles

    def test_unknown_benchmark_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKLOADS", "nonexistent")
        from repro.harness.runner import default_benchmarks

        with pytest.raises(ValueError):
            default_benchmarks()

    def test_benchmark_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKLOADS", "sort,grep")
        from repro.harness.runner import default_benchmarks

        assert default_benchmarks() == ["sort", "grep"]

    def test_run_point_records_telemetry(self, tmp_path, monkeypatch,
                                         grep_prepared):
        from repro.telemetry import MetricsCollector

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        collector = MetricsCollector()
        runner = SweepRunner(benchmarks=["grep"], collector=collector)
        config = make_config(issue_model=3)
        runner.run_point("grep", config)  # simulated
        runner.run_point("grep", config)  # served from the on-disk cache
        assert collector.counters["sweep.cache.miss"] == 1
        assert collector.counters["sweep.cache.hit"] == 1
        assert len(collector.histograms["sweep.point.wall_s"]) == 1
        assert len(collector.histograms["sweep.point.prepare_s"]) == 1
        assert len(collector.histograms["sweep.point.simulate_s"]) == 1
        cached_flags = [point["cached"] for point in collector.points]
        assert cached_flags == [False, True]
        assert all(point["benchmark"] == "grep"
                   for point in collector.points)
