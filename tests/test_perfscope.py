"""Perfscope, Prometheus exposition, and structured-logging tests."""

import io
import json
import time

import pytest

import repro.telemetry.logging as rlog
from repro.telemetry import prometheus
from repro.telemetry.perfscope import (
    SamplingProfiler,
    host_block,
    measure_overhead,
    profile_call,
)


@pytest.fixture(autouse=True)
def _reset_log_mode():
    """Leave the process-wide log format pristine (lazy env read)."""
    yield
    rlog._JSON_MODE = None


def _busy(duration_s: float) -> int:
    """Burn the CPU for a wall-clock duration; returns loop count."""
    end = time.perf_counter() + duration_s
    total = 0
    while time.perf_counter() < end:
        total += 1
    return total


class TestSamplingProfiler:
    def test_collapsed_stack_format(self):
        prof = SamplingProfiler(interval_s=0.001)
        with prof:
            _busy(0.2)
        assert prof.samples > 0
        lines = prof.collapsed()
        assert lines
        counts = []
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            counts.append(int(count))
            # every frame is module:function, frames joined with ';'
            for frame in stack.split(";"):
                assert ":" in frame
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == prof.samples
        # the busy loop must dominate the leaf frames
        leaves = prof.hot_frames(top_n=3)
        assert any("_busy" in row["frame"] for row in leaves)

    def test_hot_frames_shares_sum_to_one(self):
        prof = SamplingProfiler(interval_s=0.001)
        with prof:
            _busy(0.1)
        rows = prof.hot_frames(top_n=100)
        assert rows
        assert sum(row["samples"] for row in rows) == prof.samples
        assert abs(sum(row["share"] for row in rows) - 1.0) < 0.01

    def test_double_start_rejected(self):
        prof = SamplingProfiler(interval_s=0.01)
        prof.start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_stop_is_idempotent(self):
        prof = SamplingProfiler(interval_s=0.01)
        prof.start()
        prof.stop()
        prof.stop()
        assert prof.samples >= 0


class TestProfileCall:
    def test_returns_result_and_sorted_table(self):
        result, rows = profile_call(lambda: sum(range(100_000)), top_n=5)
        assert result == sum(range(100_000))
        assert 0 < len(rows) <= 5
        for row in rows:
            assert set(row) == {"function", "file", "line", "calls",
                                "tottime_s", "cumtime_s"}
        tottimes = [row["tottime_s"] for row in rows]
        assert tottimes == sorted(tottimes, reverse=True)

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("profiled failure")

        with pytest.raises(RuntimeError, match="profiled failure"):
            profile_call(boom)


class TestHostBlock:
    def test_shape_and_env_filter(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2")
        monkeypatch.setenv("DEFINITELY_NOT_OURS", "x")
        block = host_block()
        assert {"platform", "machine", "python", "python_impl",
                "cpu_count", "repro_env"} <= set(block)
        assert block["repro_env"]["REPRO_BENCH_SCALE"] == "2"
        assert "DEFINITELY_NOT_OURS" not in block["repro_env"]
        json.dumps(block)  # BENCH_* documents must serialize


class TestMeasureOverhead:
    def test_best_of_is_positive_wall_time(self):
        calls = []
        wall = measure_overhead(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3
        assert 0.0 <= wall < 1.0


class TestPrometheus:
    def test_sanitize(self):
        assert prometheus.sanitize("service.jobs.accepted") == \
            "repro_service_jobs_accepted"
        assert prometheus.sanitize("a-b c") == "repro_a_b_c"
        assert prometheus.sanitize("9lives") == "repro__9lives"

    def test_render_parse_round_trip(self):
        text = prometheus.render_exposition(
            {"service.jobs.accepted": 2, "cycles.dynamic.issued_full": 10},
            {"service.queue.depth": 1.5},
            {"service.job.queue_wait_s": [0.004, 0.2, 7.0]},
        )
        assert text.endswith("\n")
        families = prometheus.parse_exposition(text)
        accepted = families["repro_service_jobs_accepted"]
        assert accepted["type"] == "counter"
        assert accepted["samples"]["repro_service_jobs_accepted"] == 2
        gauge = families["repro_service_queue_depth"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"]["repro_service_queue_depth"] == 1.5
        hist = families["repro_service_job_queue_wait_s_seconds"]
        assert hist["type"] == "histogram"
        prefix = "repro_service_job_queue_wait_s_seconds"
        assert hist["samples"][prefix + "_count"] == 3
        assert hist["samples"][prefix + "_sum"] == pytest.approx(7.204)
        assert hist["samples"][prefix + '_bucket{le="+Inf"}'] == 3

    def test_histogram_buckets_are_cumulative(self):
        lines = prometheus.render_histogram(
            "x", [0.002, 0.002, 100.0], buckets=(0.001, 0.01, 1.0)
        )
        text = "\n".join(lines) + "\n"
        samples = prometheus.parse_exposition(text)[
            "repro_x_seconds"]["samples"]
        assert samples['repro_x_seconds_bucket{le="0.001"}'] == 0
        assert samples['repro_x_seconds_bucket{le="0.01"}'] == 2
        assert samples['repro_x_seconds_bucket{le="1"}'] == 2
        assert samples['repro_x_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_x_seconds_count"] == 3

    def test_empty_exposition_is_valid(self):
        text = prometheus.render_exposition({}, {}, {})
        assert text == "\n"
        assert prometheus.parse_exposition(text) == {}

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            prometheus.parse_exposition("this is not a sample line\n")


class TestStructuredLogger:
    def test_json_mode_emits_one_object_per_line(self):
        stream = io.StringIO()
        rlog.configure(True)
        logger = rlog.StructuredLogger("svc", stream=stream)
        logger.bind(job_id="j-1").info("job_accepted", points=40,
                                       note="two words")
        record = json.loads(stream.getvalue())
        assert record["level"] == "info"
        assert record["component"] == "svc"
        assert record["event"] == "job_accepted"
        assert record["job_id"] == "j-1"
        assert record["points"] == 40
        assert record["note"] == "two words"
        assert isinstance(record["ts"], float)

    def test_human_mode_format(self):
        stream = io.StringIO()
        rlog.configure(False)
        logger = rlog.StructuredLogger("svc", stream=stream)
        logger.warning("queue_full", depth=3, note="two words")
        line = stream.getvalue().strip()
        assert line.startswith("WARNING svc: queue_full")
        assert "depth=3" in line
        assert 'note="two words"' in line

    def test_bind_does_not_mutate_parent(self):
        parent = rlog.get_logger("p")
        child = parent.bind(x=1)
        grandchild = child.bind(y=2)
        assert parent.context == {}
        assert child.context == {"x": 1}
        assert grandchild.context == {"x": 1, "y": 2}

    def test_env_variable_controls_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        assert rlog.configure(None) is True
        monkeypatch.setenv("REPRO_LOG_JSON", "false")
        assert rlog.configure(None) is False
        monkeypatch.delenv("REPRO_LOG_JSON")
        assert rlog.configure(None) is False

    def test_broken_stream_never_raises(self):
        class Broken(io.StringIO):
            def write(self, *_args):
                raise ValueError("I/O operation on closed file")

        rlog.configure(False)
        logger = rlog.StructuredLogger("svc", stream=Broken())
        logger.error("still_fine")  # must not raise
