"""Smoke-run the documented example scripts.

The examples double as user-facing documentation; a refactor that
breaks their imports or output contract should fail CI, not a reader.
Each script runs in a subprocess under a temporary working directory
and cache so it cannot pollute (or be rescued by) the repo state.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO_ROOT, "examples")


def run_example(name, tmp_path, timeout_s=240.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_ARTIFACT_DIR"] = str(tmp_path / "artifacts")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        cwd=str(tmp_path), env=env, timeout=timeout_s,
        capture_output=True, text=True,
    )


class TestExamples:
    def test_quickstart(self, tmp_path):
        proc = run_example("quickstart.py", tmp_path)
        assert proc.returncode == 0, proc.stderr
        # The script prints a static-vs-dynamic comparison.
        assert "static" in proc.stdout.lower()
        assert "dynamic" in proc.stdout.lower()

    @pytest.mark.slow
    def test_window_sweep(self, tmp_path):
        proc = run_example("window_sweep.py", tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip(), "expected a results table on stdout"
