"""Property tests for crash recovery: random kill points always converge.

Two invariants, driven by hypothesis:

* journal replay never raises and always returns a consistent prefix of
  the written records, wherever a crash truncates the file; and
* a sweep killed after any number of cache writes and then resumed
  produces a result cache byte-identical to an uninterrupted run.

Simulation results are synthetic (derived from indices, never
``hash()`` -- it is salted per process) so examples stay fast and
reproducible.
"""

import json
import os

from hypothesis import given, settings, strategies as st

from repro.harness.cache import ResultCache
from repro.machine.config import BranchMode, Discipline, MachineConfig
from repro.service.jobs import JobJournal
from repro.stats.results import SimResult
from repro.telemetry import MetricsCollector

WINDOWS = (1, 2, 4, 8, 16)


def make_config(index):
    return MachineConfig(
        discipline=Discipline.DYNAMIC,
        issue_model=8,
        memory="A",
        branch_mode=BranchMode.SINGLE,
        window_blocks=WINDOWS[index % len(WINDOWS)],
    )


def make_result(index):
    cycles = 1000 + 37 * index
    return SimResult(
        benchmark="grep",
        config=make_config(index),
        cycles=cycles,
        retired_nodes=4 * cycles + index,
        discarded_nodes=10 * index,
        dynamic_blocks=500 + index,
        mispredicts=index,
        branch_lookups=100 + index,
        faults=index % 3,
        loads=300, stores=200, cache_accesses=500, cache_misses=25,
        write_buffer_hits=40, issue_words=cycles, issued_slots=4 * cycles,
    )


def journal_record(index):
    return {"event": "accept", "job_id": f"job-{index:03d}", "seq": index}


def _parses(fragment):
    try:
        json.loads(fragment)
    except ValueError:
        return False
    return True


class TestJournalTruncationProperty:
    @given(
        count=st.integers(min_value=1, max_value=8),
        cut=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_replay_survives_any_truncation_point(self, count, cut, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("journal")
        path = str(tmp / "journal.jsonl")
        journal = JobJournal(path)
        for index in range(count):
            journal.append(journal_record(index))
        journal.close()

        with open(path, "rb") as handle:
            content = handle.read()
        cut = min(cut, len(content))
        with open(path, "wb") as handle:
            handle.write(content[:cut])

        collector = MetricsCollector()
        records = JobJournal.replay(path, collector=collector)

        # Every record whose full line survived the cut, in order.  A
        # cut that removes only the newline leaves an intact record
        # behind, and replay recovers it rather than discarding it.
        survived = content[:cut].count(b"\n")
        fragment = content[:cut].rpartition(b"\n")[2]
        fragment_intact = fragment and _parses(fragment)
        expected = list(range(survived + (1 if fragment_intact else 0)))
        assert [record["seq"] for record in records] == expected
        # A trailing fragment is a torn tail, never on-disk damage.
        assert collector.counters.get("journal.garbled", 0) == 0
        assert collector.counters.get("journal.torn_tail", 0) == (
            1 if fragment and not fragment_intact else 0
        )

    @given(count=st.integers(min_value=1, max_value=6),
           cut=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_new_writer_after_truncation_converges(self, count, cut,
                                                   tmp_path_factory):
        """A healed journal accepts new records and replays them all."""
        tmp = tmp_path_factory.mktemp("journal")
        path = str(tmp / "journal.jsonl")
        journal = JobJournal(path)
        for index in range(count):
            journal.append(journal_record(index))
        journal.close()

        with open(path, "rb") as handle:
            content = handle.read()
        cut = min(cut, len(content))
        with open(path, "wb") as handle:
            handle.write(content[:cut])

        journal = JobJournal(path)  # heals a torn tail on open
        journal.append(journal_record(999))
        journal.close()

        records = JobJournal.replay(path)
        seqs = [record["seq"] for record in records]
        survived = content[:cut].count(b"\n")
        # Healing terminates the fragment; if the cut removed only the
        # newline, the fragment is a whole record and replays too.
        fragment = content[:cut].rpartition(b"\n")[2]
        if fragment and _parses(fragment):
            survived += 1
        assert seqs == list(range(survived)) + [999]


class TestSweepKillResumeProperty:
    # One distinct window size per point: every index maps to a unique
    # cache key (a collision would alias two points onto one entry).
    N = len(WINDOWS)

    @given(kill_after=st.integers(min_value=0, max_value=N))
    @settings(max_examples=25, deadline=None)
    def test_killed_and_resumed_cache_is_byte_identical(self, kill_after,
                                                        tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cache")
        results = [make_result(index) for index in range(self.N)]

        reference_path = str(tmp / "reference.json")
        reference = ResultCache(path=reference_path)
        for result in results:
            reference.put(result, scale=1)

        # The interrupted arm: write some, "crash" (drop the object),
        # resume with a fresh cache over the same file, then serve every
        # point the way a resumed sweep does (cache hit or recompute).
        killed_path = str(tmp / "killed.json")
        first = ResultCache(path=killed_path)
        for result in results[:kill_after]:
            first.put(result, scale=1)
        del first

        resumed = ResultCache(path=killed_path)
        for index, result in enumerate(results):
            hit = resumed.get("grep", make_config(index), 1)
            if hit is None:
                resumed.put(result, scale=1)
            else:
                assert hit.cycles == result.cycles
        resumed.flush()

        with open(reference_path, "rb") as handle:
            want = handle.read()
        with open(killed_path, "rb") as handle:
            got = handle.read()
        assert got == want
        assert len(json.loads(want)) == self.N

    @given(kill_after=st.integers(min_value=0, max_value=N),
           corrupt_index=st.integers(min_value=0, max_value=N - 1))
    @settings(max_examples=25, deadline=None)
    def test_resume_with_one_corrupt_entry_converges(self, kill_after,
                                                     corrupt_index,
                                                     tmp_path_factory):
        """Corruption discovered on resume quarantines, recomputes, converges."""
        tmp = tmp_path_factory.mktemp("cache")
        results = [make_result(index) for index in range(self.N)]

        reference_path = str(tmp / "reference.json")
        reference = ResultCache(path=reference_path)
        for result in results:
            reference.put(result, scale=1)

        killed_path = str(tmp / "killed.json")
        first = ResultCache(path=killed_path)
        for result in results[:kill_after]:
            first.put(result, scale=1)
        del first

        # Flip bits in one stored entry (when the kill left one behind).
        document = json.loads(open(killed_path, encoding="utf-8").read()) \
            if os.path.exists(killed_path) else {}
        keys = sorted(document)
        if keys:
            victim = keys[corrupt_index % len(keys)]
            document[victim] = {"cycles": None}
            with open(killed_path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(document))

        resumed = ResultCache(path=killed_path)
        for index, result in enumerate(results):
            if resumed.get("grep", make_config(index), 1) is None:
                resumed.put(result, scale=1)
        resumed.flush()

        with open(reference_path, "rb") as handle:
            want = handle.read()
        with open(killed_path, "rb") as handle:
            got = handle.read()
        assert got == want
