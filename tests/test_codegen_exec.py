"""End-to-end execution tests: compile Mini-C, run, check behaviour.

These are the compiler's ground-truth tests: each case states a program
and the exit code (and possibly output) it must produce.  Every case runs
both optimised and unoptimised, so the optimisation pipeline is checked
for semantic preservation at the same time.
"""

import pytest

from repro.lang import compile_source
from repro.interp import run_program


def run(source, inputs=None, optimize=True):
    program = compile_source(source, optimize=optimize)
    return run_program(program, inputs=inputs or {0: b""})


def exit_code(source, inputs=None, optimize=True):
    return run(source, inputs, optimize).exit_code


# Each entry: (test id, source, expected exit code)
CASES = [
    ("return_constant", "int main() { return 42; }", 42),
    ("arith_mixed", "int main() { return 2 + 3 * 4 - 5; }", 9),
    ("division_truncates", "int main() { return -7 / 2 + 10; }", 7),
    ("modulo_sign", "int main() { return -7 % 3 + 5; }", 4),
    ("bitwise", "int main() { return (12 & 10) | (1 ^ 3); }", 10),
    ("shifts", "int main() { return (1 << 5) + (64 >> 3); }", 40),
    ("comparisons",
     "int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (3 >= 4) + (5 == 5)"
     " + (5 != 5); }", 4),
    ("unary_ops", "int main() { int x = 5; return -x + ~x + 20 + !0; }", 10),
    ("logical_and_short_circuit",
     "int g; int set() { g = 1; return 1; } "
     "int main() { 0 && set(); return g; }", 0),
    ("logical_or_short_circuit",
     "int g; int set() { g = 1; return 1; } "
     "int main() { 1 || set(); return g; }", 0),
    ("logical_values",
     "int main() { return (2 && 3) * 10 + (0 || 7 != 0); }", 11),
    ("if_else", "int main() { int x = 5; if (x > 3) return 1; else return 2; }", 1),
    ("nested_if",
     "int main() { int a = 1; int b = 2;"
     " if (a) { if (b > 5) return 1; else return 2; } return 3; }", 2),
    ("while_sum",
     "int main() { int i = 0; int s = 0;"
     " while (i < 10) { s += i; i++; } return s; }", 45),
    ("do_while_runs_once",
     "int main() { int n = 0; do n++; while (0); return n; }", 1),
    ("for_with_decl",
     "int main() { int s = 0; for (int i = 1; i <= 4; i++) s += i; return s; }",
     10),
    ("break_statement",
     "int main() { int i; for (i = 0; i < 100; i++) if (i == 7) break;"
     " return i; }", 7),
    ("continue_statement",
     "int main() { int s = 0; int i;"
     " for (i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }",
     20),
    ("nested_loops",
     "int main() { int s = 0; int i; int j;"
     " for (i = 0; i < 5; i++) for (j = 0; j < 5; j++) s++; return s; }", 25),
    ("compound_assigns",
     "int main() { int x = 100; x += 5; x -= 3; x *= 2; x /= 4; x %= 13;"
     " return x; }", 12),
    ("compound_bitwise",
     "int main() { int x = 12; x &= 10; x |= 1; x ^= 2; x <<= 2; x >>= 1;"
     " return x; }", 22),
    ("prefix_postfix",
     "int main() { int x = 5; int a = x++; int b = ++x; int c = x--;"
     " int d = --x; return a * 1000 + b * 100 + c * 10 + d; }", 5775),
    ("incdec_memory",
     "int main() { int a[1]; a[0] = 5; a[0]++; ++a[0]; a[0]--;"
     " return a[0]; }", 6),
    ("global_scalar_init", "int g = 37; int main() { return g; }", 37),
    ("global_array_init",
     "int v[4] = {10, 20, 30}; int main() { return v[0] + v[1] + v[2] + v[3]; }",
     60),
    ("global_char_array",
     'char s[6] = "AB"; int main() { return s[0] + s[2]; }', 65),
    ("string_pointer_global",
     'char *msg = "hi"; int main() { return msg[0]; }', 104),
    ("string_literal_expr", 'int main() { return "xyz"[1]; }', 121),
    ("local_array",
     "int main() { int a[8]; int i; for (i = 0; i < 8; i++) a[i] = i * i;"
     " return a[7]; }", 49),
    ("char_locals",
     "int main() { char c = 200; char d = 100; return (c + d) % 45; }", 30),
    ("char_wraps_on_increment",
     "int main() { char c = 255; c++; return c; }", 0),
    ("char_assign_truncates",
     "int main() { char c = 300; return c; }", 44),
    ("char_is_unsigned",
     "int main() { char c = 255; return c > 0; }", 1),
    ("pointer_deref",
     "int main() { int x = 11; int *p = &x; *p = 22; return x; }", 22),
    ("pointer_arith",
     "int main() { int a[5]; int *p = a; int i;"
     " for (i = 0; i < 5; i++) a[i] = i + 1;"
     " p = p + 3; return *p + *(p - 2); }", 6),
    ("pointer_diff",
     "int main() { int a[10]; int *p = &a[7]; int *q = &a[2]; return p - q; }",
     5),
    ("pointer_compound",
     "int main() { int a[4]; int *p = a; a[2] = 9; p += 2; return *p; }", 9),
    ("pointer_incdec",
     "int main() { int a[3]; int *p = a; a[0] = 1; a[1] = 2;"
     " int first = *p++; return first * 10 + *p; }", 12),
    ("char_pointer_walk",
     'char *s = "hello"; int main() { int n = 0; char *p = s;'
     " while (*p) { n++; p++; } return n; }", 5),
    ("address_of_array_element",
     "int main() { int a[4]; int *p = &a[2]; *p = 5; return a[2]; }", 5),
    ("function_call", "int add(int a, int b) { return a + b; } "
     "int main() { return add(3, 4); }", 7),
    ("six_args",
     "int f(int a, int b, int c, int d, int e, int g)"
     " { return a + b + c + d + e + g; } "
     "int main() { return f(1, 2, 3, 4, 5, 6); }", 21),
    ("recursion_factorial",
     "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); } "
     "int main() { return fact(6) % 251; }", 218),
    ("mutual_recursion",
     "int is_odd(int n); "
     "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); } "
     "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); } "
     "int main() { return is_even(10) * 10 + is_odd(7); }", 11),
    ("call_in_expression",
     "int sq(int x) { return x * x; } "
     "int main() { return sq(2) + sq(3) * sq(1); }", 13),
    ("nested_calls",
     "int inc(int x) { return x + 1; } "
     "int main() { return inc(inc(inc(0))); }", 3),
    ("spill_across_call",
     "int id(int x) { return x; } "
     "int main() { int a = 3; return a * 7 + id(a) + a * 2; }", 30),
    ("void_function",
     "int g; void bump(int by) { g += by; } "
     "int main() { bump(4); bump(5); return g; }", 9),
    ("globals_shared_across_functions",
     "int counter; void tick() { counter++; } "
     "int main() { int i; for (i = 0; i < 9; i++) tick(); return counter; }", 9),
    ("overflow_wraps",
     "int main() { int x = 2147483647; x = x + 1; return x < 0; }", 1),
    ("mul_overflow_wraps",
     "int main() { int x = 65536; return x * x == 0; }", 1),
    ("sizeof_arith",
     "int main() { return sizeof(int) + sizeof(char) + sizeof(int*)"
     " + sizeof(int[10]); }", 49),
    ("ternary_style_minmax",
     "int max(int a, int b) { if (a > b) return a; return b; } "
     "int main() { return max(3, 9) * max(7, 2); }", 63),
    ("deep_expression",
     "int main() { int a = 1; int b = 2; int c = 3; int d = 4;"
     " return ((a + b) * (c + d)) + ((a * b) + (c * d)) * ((a + c) * (b + d)); }",
     357),
    ("assignment_value",
     "int main() { int a; int b; b = (a = 21) * 2; return b - a; }", 21),
    ("comparison_chain_via_ands",
     "int main() { int x = 5; return (1 < x && x < 9) + (x == 5 && x != 4); }",
     2),
    ("many_locals_spill_to_stack",
     "int main() { "
     + " ".join(f"int v{i} = {i};" for i in range(40))
     + " return " + " + ".join(f"v{i}" for i in range(40)) + "; }",
     sum(range(40))),
]


@pytest.mark.parametrize("optimize", [True, False], ids=["opt", "noopt"])
@pytest.mark.parametrize(
    "source,expected", [(s, e) for _, s, e in CASES],
    ids=[name for name, _, _ in CASES],
)
def test_exit_code(source, expected, optimize):
    assert exit_code(source, optimize=optimize) == expected


class TestIO:
    def test_echo_via_getc_putc(self):
        source = (
            "int main() { int c = getc(0); while (c >= 0)"
            " { putc(1, c); c = getc(0); } return 0; }"
        )
        result = run(source, inputs={0: b"hello\n"})
        assert result.output == b"hello\n"

    def test_read_write_block(self):
        source = """
        int main() {
            char buf[64];
            int n = read(0, buf, 64);
            write(1, buf, n);
            return n;
        }
        """
        result = run(source, inputs={0: b"block io"})
        assert result.output == b"block io"
        assert result.exit_code == 8

    def test_read_chunks(self):
        source = """
        int main() {
            char buf[4];
            int total = 0;
            int n = read(0, buf, 4);
            while (n > 0) { total += n; n = read(0, buf, 4); }
            return total;
        }
        """
        assert run(source, inputs={0: b"x" * 11}).exit_code == 11

    def test_sbrk_heap(self):
        source = """
        int main() {
            int *p = sbrk(40);
            int *q = sbrk(40);
            int i;
            for (i = 0; i < 10; i++) p[i] = i;
            for (i = 0; i < 10; i++) q[i] = p[i] * 2;
            return q[9] + (q - p >= 10);
        }
        """
        assert run(source).exit_code == 19

    def test_exit_builtin_stops_program(self):
        source = "int main() { exit(7); return 1; }"
        assert run(source).exit_code == 7

    def test_getc_eof(self):
        source = "int main() { return getc(0) < 0; }"
        assert run(source, inputs={0: b""}).exit_code == 1


class TestOptimizedMatchesUnoptimized:
    """The optimiser must never change observable behaviour."""

    @pytest.mark.parametrize(
        "source", [s for _, s, _ in CASES[:20]],
        ids=[name for name, _, _ in CASES[:20]],
    )
    def test_same_exit(self, source):
        assert exit_code(source, optimize=True) == exit_code(source, optimize=False)

    def test_optimizer_reduces_node_count(self):
        source = CASES[0][1]
        opt = compile_source(source, optimize=True)
        raw = compile_source(source, optimize=False)
        assert sum(opt.static_node_counts()) <= sum(raw.static_node_counts())


class TestTernary:
    def test_basic_selection(self):
        assert exit_code("int main() { int x = 5; return x > 3 ? 10 : 20; }") == 10
        assert exit_code("int main() { int x = 1; return x > 3 ? 10 : 20; }") == 20

    def test_nested_right_associative(self):
        source = ("int main() { int x = 2; "
                  "return x == 1 ? 100 : x == 2 ? 200 : 300; }")
        assert exit_code(source) == 200

    def test_only_selected_arm_evaluates(self):
        source = (
            "int g; int bump() { g++; return g; } "
            "int main() { int r = 1 ? 7 : bump(); return r * 10 + g; }"
        )
        assert exit_code(source) == 70

    def test_in_condition_and_argument(self):
        source = (
            "int pick(int a) { return a * 2; } "
            "int main() { int x = 3; return pick(x < 5 ? x : 0); }"
        )
        assert exit_code(source) == 6

    def test_with_pointers(self):
        source = """
        int main() {
            int a = 1; int b = 2;
            int *p = a > b ? &a : &b;
            *p = 99;
            return b;
        }
        """
        assert exit_code(source) == 99

    def test_assignment_of_ternary(self):
        source = "int main() { int m; m = 4 < 5 ? 4 : 5; return m; }"
        assert exit_code(source) == 4

    def test_unoptimized_matches(self):
        source = "int main() { int x = 9; return x % 2 ? 111 : 222; }"
        assert exit_code(source, optimize=True) == exit_code(source, optimize=False)


class TestSwitch:
    def test_simple_dispatch(self):
        source = """
        int classify(int x) {
            switch (x) {
                case 1: return 10;
                case 2: return 20;
                default: return 99;
            }
        }
        int main() { return classify(1) + classify(2) + classify(7); }
        """
        assert exit_code(source) == 129

    def test_fallthrough(self):
        source = """
        int main() {
            int r = 0;
            switch (2) {
                case 1: r += 1;
                case 2: r += 2;
                case 3: r += 4;
                default: r += 8;
            }
            return r;
        }
        """
        assert exit_code(source) == 14  # 2 falls into 3 and default

    def test_break_stops_fallthrough(self):
        source = """
        int main() {
            int r = 0;
            switch (2) {
                case 2: r += 2; break;
                case 3: r += 4;
            }
            return r;
        }
        """
        assert exit_code(source) == 2

    def test_default_position_independent(self):
        source = """
        int main() {
            int r = 0;
            switch (42) {
                default: r = 5; break;
                case 1: r = 1;
            }
            return r;
        }
        """
        assert exit_code(source) == 5

    def test_no_match_no_default(self):
        source = """
        int main() {
            int r = 7;
            switch (9) { case 1: r = 0; }
            return r;
        }
        """
        assert exit_code(source) == 7

    def test_char_case_labels(self):
        source = """
        int main() {
            switch ('b') {
                case 'a': return 1;
                case 'b': return 2;
            }
            return 0;
        }
        """
        assert exit_code(source) == 2

    def test_negative_case(self):
        source = """
        int main() {
            switch (0 - 3) { case -3: return 1; }
            return 0;
        }
        """
        assert exit_code(source) == 1

    def test_switch_in_loop_with_continue(self):
        source = """
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 6; i++) {
                switch (i % 3) {
                    case 0: continue;
                    case 1: total += 10; break;
                    default: total += 1;
                }
            }
            return total;
        }
        """
        assert exit_code(source) == 22

    def test_unoptimized_matches(self):
        source = """
        int main() {
            int r = 0;
            int i;
            for (i = 0; i < 10; i++) {
                switch (i & 3) {
                    case 0: r += 1; break;
                    case 1: r += 2;
                    case 2: r += 3; break;
                    default: r += 4;
                }
            }
            return r;
        }
        """
        assert exit_code(source, optimize=True) == exit_code(source, optimize=False)


class TestSwitchErrors:
    def test_duplicate_case_rejected(self):
        import pytest
        from repro.lang.errors import SemanticError

        with pytest.raises(SemanticError):
            run("int main() { switch (1) { case 1: case 1: ; } return 0; }")

    def test_multiple_defaults_rejected(self):
        import pytest
        from repro.lang.errors import SemanticError

        with pytest.raises(SemanticError):
            run("int main() { switch (1) { default: default: ; } return 0; }")

    def test_nonconstant_case_rejected(self):
        import pytest
        from repro.lang.errors import ParseError

        with pytest.raises(ParseError):
            run("int main() { int x; switch (1) { case x: ; } return 0; }")


class TestFunctionPointers:
    def test_call_through_variable(self):
        source = """
        int add(int a, int b) { return a + b; }
        int main() {
            int (*f)(int, int);
            f = add;
            return f(30, 12);
        }
        """
        assert exit_code(source) == 42

    def test_address_of_and_deref_call(self):
        source = """
        int twice(int x) { return x * 2; }
        int main() {
            int (*f)(int);
            f = &twice;
            return (*f)(21);
        }
        """
        assert exit_code(source) == 42

    def test_reassignment_switches_target(self):
        source = """
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int main() {
            int (*op)(int, int);
            int r;
            op = add;
            r = op(10, 3);
            op = sub;
            return r * 10 + op(10, 3);
        }
        """
        assert exit_code(source) == 137

    def test_global_table_with_static_init(self):
        source = """
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int mul(int a, int b) { return a * b; }
        int (*ops[4])(int, int) = {add, sub, mul};
        int main() {
            int r = 0;
            int i;
            for (i = 0; i < 3; i++) r += ops[i](7, 3);
            return r;
        }
        """
        # (7+3) + (7-3) + (7*3) = 35
        assert exit_code(source) == 35

    def test_pointer_as_argument(self):
        source = """
        int inc(int x) { return x + 1; }
        int apply(int (*f)(int), int seed) { return f(f(seed)); }
        int main() { return apply(inc, 40); }
        """
        assert exit_code(source) == 42

    def test_null_pointer_call_exits_127(self):
        source = """
        int id(int x) { return x; }
        int main() {
            int (*f)(int);
            f = 0;
            return f(1);
        }
        """
        assert exit_code(source) == 127

    def test_unoptimized_matches(self):
        source = """
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int (*ops[2])(int, int) = {add, sub};
        int main() {
            int r = 0;
            int i;
            for (i = 0; i < 2; i++) r = r * 100 + ops[i](5, 2);
            return r;
        }
        """
        assert exit_code(source, optimize=True) == exit_code(source, optimize=False)


class TestMultiDimArrays:
    def test_write_then_read(self):
        source = """
        int main() {
            int m[3][4];
            int i;
            int j;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            return m[2][3];
        }
        """
        assert exit_code(source) == 23

    def test_global_nested_initializer(self):
        source = """
        int t[2][3] = {{1, 2, 3}, {4, 5, 6}};
        int main() { return t[0][0] + t[0][2] + t[1][1] + t[1][2]; }
        """
        assert exit_code(source) == 15

    def test_partial_rows_zero_padded(self):
        source = """
        int t[3][3] = {{1}, {2, 3}};
        int main() {
            return t[0][0] + t[0][1] * 10
                 + t[1][0] + t[1][2] * 10
                 + t[2][0] + t[2][1] + t[2][2];
        }
        """
        assert exit_code(source) == 3

    def test_three_dimensions(self):
        source = """
        int cube[2][2][2];
        int main() {
            int i;
            for (i = 0; i < 8; i++)
                cube[i / 4][(i / 2) % 2][i % 2] = i;
            return cube[1][0][1] * 10 + cube[0][1][0];
        }
        """
        assert exit_code(source) == 52

    def test_char_matrix(self):
        source = """
        char grid[2][4];
        int main() {
            grid[1][2] = 200;
            return grid[1][2] - 150 + grid[0][3];
        }
        """
        # char loads zero-extend: 200 stays 200.
        assert exit_code(source) == 50

    def test_row_pointer_arithmetic(self):
        source = """
        int t[2][3] = {{1, 2, 3}, {4, 5, 6}};
        int main() {
            int *row = t[1];
            return row[0] + *(row + 2);
        }
        """
        assert exit_code(source) == 10

    def test_unoptimized_matches(self):
        source = """
        int t[4][4];
        int main() {
            int i;
            int j;
            int s = 0;
            for (i = 0; i < 4; i++)
                for (j = 0; j < 4; j++)
                    t[i][j] = i ^ j;
            for (i = 0; i < 4; i++)
                for (j = 0; j < 4; j++)
                    s += t[j][i];
            return s;
        }
        """
        assert exit_code(source, optimize=True) == exit_code(source, optimize=False)
