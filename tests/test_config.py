"""Machine configuration space tests."""

import pytest

from repro.machine.config import (
    BranchMode,
    Discipline,
    FIGURE4_MEMORY_ORDER,
    ISSUE_MODELS,
    MEMORY_CONFIGS,
    MachineConfig,
    PAPER_ISSUE_MODELS,
    PAPER_MEMORIES,
    cache_configuration_space,
    full_configuration_space,
    scheduling_disciplines,
)


class TestIssueModels:
    def test_paper_table(self):
        shapes = {
            index: (ISSUE_MODELS[index].mem_slots, ISSUE_MODELS[index].alu_slots)
            for index in PAPER_ISSUE_MODELS
        }
        assert shapes == {
            1: (1, 1),
            2: (1, 1),
            3: (1, 2),
            4: (1, 3),
            5: (2, 4),
            6: (2, 6),
            7: (4, 8),
            8: (4, 12),
        }
        assert ISSUE_MODELS[1].sequential
        assert not ISSUE_MODELS[2].sequential

    def test_total_slots(self):
        assert ISSUE_MODELS[1].total_slots == 1
        assert ISSUE_MODELS[8].total_slots == 16

    def test_extension_models_present_but_not_in_paper_space(self):
        assert ISSUE_MODELS[9].total_slots == 32
        assert ISSUE_MODELS[10].total_slots == 64
        assert 9 not in PAPER_ISSUE_MODELS


class TestMemoryConfigs:
    def test_paper_table(self):
        assert MEMORY_CONFIGS["A"].hit_cycles == 1
        assert MEMORY_CONFIGS["A"].is_perfect
        assert MEMORY_CONFIGS["C"].hit_cycles == 3
        assert MEMORY_CONFIGS["D"].cache_bytes == 1024
        assert MEMORY_CONFIGS["E"].cache_bytes == 16 * 1024
        assert MEMORY_CONFIGS["F"].hit_cycles == 2
        for letter in "DEFG":
            assert MEMORY_CONFIGS[letter].miss_cycles == 10

    def test_figure4_order_covers_all_paper_memories(self):
        assert sorted(FIGURE4_MEMORY_ORDER) == sorted(PAPER_MEMORIES)

    def test_extension_memories_present_but_not_in_paper_space(self):
        assert MEMORY_CONFIGS["H"].cache_bytes == 4 * 1024
        assert MEMORY_CONFIGS["I"].cache_bytes == 64 * 1024
        for letter in "HI":
            assert MEMORY_CONFIGS[letter].hit_cycles == 1
            assert MEMORY_CONFIGS[letter].miss_cycles == 10
            assert letter not in PAPER_MEMORIES


class TestMachineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(Discipline.DYNAMIC, 11, "A", BranchMode.SINGLE)
        with pytest.raises(ValueError):
            MachineConfig(Discipline.DYNAMIC, 8, "Z", BranchMode.SINGLE)
        with pytest.raises(ValueError):
            MachineConfig(Discipline.DYNAMIC, 8, "A", BranchMode.SINGLE,
                          window_blocks=0)
        with pytest.raises(ValueError):
            MachineConfig(Discipline.STATIC, 8, "A", BranchMode.PERFECT)

    def test_discipline_keys(self):
        static = MachineConfig(Discipline.STATIC, 2, "A", BranchMode.SINGLE)
        assert static.discipline_key() == "static/single"
        dynamic = MachineConfig(
            Discipline.DYNAMIC, 2, "A", BranchMode.ENLARGED, window_blocks=256
        )
        assert dynamic.discipline_key() == "dyn256/enlarged"


class TestConfigurationSpace:
    def test_ten_discipline_lines(self):
        lines = scheduling_disciplines()
        assert len(lines) == 10
        perfect = [line for line in lines if line[2] is BranchMode.PERFECT]
        assert {window for _, window, _ in perfect} == {4, 256}

    def test_560_points(self):
        """The paper: '560 individual data points for each benchmark'."""
        points = list(full_configuration_space())
        assert len(points) == 560
        assert len({str(p) for p in points}) == 560

    def test_paper_space_excludes_extension_memories(self):
        assert {p.memory for p in full_configuration_space()} == set(PAPER_MEMORIES)

    def test_cache_space_default_ladder(self):
        points = list(cache_configuration_space())
        assert len(points) == 24
        assert {p.memory for p in points} == {"D", "H", "E", "I"}
        assert all(not p.memory_config.is_perfect for p in points)
        assert all(p.memory_config.hit_cycles == 1 for p in points)

    def test_cache_space_respects_workload_override(self):
        from repro.workloads import WORKLOADS

        for name, workload in WORKLOADS.items():
            letters = {p.memory for p in cache_configuration_space(name)}
            if workload.cache_memories:
                assert letters == set(workload.cache_memories)
            else:
                assert letters == {"D", "H", "E", "I"}
        # Unknown benchmarks fall back to the default ladder.
        assert {p.memory for p in cache_configuration_space("nosuch")} == \
            {"D", "H", "E", "I"}
