"""Machine configuration space tests."""

import pytest

from repro.machine.config import (
    BranchMode,
    Discipline,
    FIGURE4_MEMORY_ORDER,
    ISSUE_MODELS,
    MEMORY_CONFIGS,
    MachineConfig,
    PAPER_ISSUE_MODELS,
    full_configuration_space,
    scheduling_disciplines,
)


class TestIssueModels:
    def test_paper_table(self):
        shapes = {
            index: (ISSUE_MODELS[index].mem_slots, ISSUE_MODELS[index].alu_slots)
            for index in PAPER_ISSUE_MODELS
        }
        assert shapes == {
            1: (1, 1),
            2: (1, 1),
            3: (1, 2),
            4: (1, 3),
            5: (2, 4),
            6: (2, 6),
            7: (4, 8),
            8: (4, 12),
        }
        assert ISSUE_MODELS[1].sequential
        assert not ISSUE_MODELS[2].sequential

    def test_total_slots(self):
        assert ISSUE_MODELS[1].total_slots == 1
        assert ISSUE_MODELS[8].total_slots == 16

    def test_extension_models_present_but_not_in_paper_space(self):
        assert ISSUE_MODELS[9].total_slots == 32
        assert ISSUE_MODELS[10].total_slots == 64
        assert 9 not in PAPER_ISSUE_MODELS


class TestMemoryConfigs:
    def test_paper_table(self):
        assert MEMORY_CONFIGS["A"].hit_cycles == 1
        assert MEMORY_CONFIGS["A"].is_perfect
        assert MEMORY_CONFIGS["C"].hit_cycles == 3
        assert MEMORY_CONFIGS["D"].cache_bytes == 1024
        assert MEMORY_CONFIGS["E"].cache_bytes == 16 * 1024
        assert MEMORY_CONFIGS["F"].hit_cycles == 2
        for letter in "DEFG":
            assert MEMORY_CONFIGS[letter].miss_cycles == 10

    def test_figure4_order_covers_all(self):
        assert sorted(FIGURE4_MEMORY_ORDER) == sorted(MEMORY_CONFIGS)


class TestMachineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(Discipline.DYNAMIC, 11, "A", BranchMode.SINGLE)
        with pytest.raises(ValueError):
            MachineConfig(Discipline.DYNAMIC, 8, "Z", BranchMode.SINGLE)
        with pytest.raises(ValueError):
            MachineConfig(Discipline.DYNAMIC, 8, "A", BranchMode.SINGLE,
                          window_blocks=0)
        with pytest.raises(ValueError):
            MachineConfig(Discipline.STATIC, 8, "A", BranchMode.PERFECT)

    def test_discipline_keys(self):
        static = MachineConfig(Discipline.STATIC, 2, "A", BranchMode.SINGLE)
        assert static.discipline_key() == "static/single"
        dynamic = MachineConfig(
            Discipline.DYNAMIC, 2, "A", BranchMode.ENLARGED, window_blocks=256
        )
        assert dynamic.discipline_key() == "dyn256/enlarged"


class TestConfigurationSpace:
    def test_ten_discipline_lines(self):
        lines = scheduling_disciplines()
        assert len(lines) == 10
        perfect = [line for line in lines if line[2] is BranchMode.PERFECT]
        assert {window for _, window, _ in perfect} == {4, 256}

    def test_560_points(self):
        """The paper: '560 individual data points for each benchmark'."""
        points = list(full_configuration_space())
        assert len(points) == 560
        assert len({str(p) for p in points}) == 560
