"""Static-engine specifics: schedules, interlocks, fault handling."""

from repro.interp import run_program
from repro.machine import (
    BranchMode,
    Discipline,
    MachineConfig,
    build_templates,
)
from repro.machine.static_engine import StaticEngine
from repro.program import parse_program
from repro.sched.list_scheduler import schedule_program


def static_config(issue=8, memory="A", hints=True):
    return MachineConfig(
        discipline=Discipline.STATIC,
        issue_model=issue,
        memory=memory,
        branch_mode=BranchMode.SINGLE,
        static_hints=hints,
    )


def run_static(asm, cfg, inputs=None):
    program = parse_program(asm)
    result = run_program(program, inputs=inputs or {0: b""})
    templates = build_templates(program)
    schedules = schedule_program(program, cfg.issue, cfg.memory_config)
    engine = StaticEngine(templates, schedules, result.trace, cfg, "t")
    return engine.run()


PARALLEL = """
.entry a
block a:
    mov r1, #1
    mov r2, #2
    mov r3, #3
    mov r4, #4
    mov r5, #5
    mov r6, #6
    sys exit(r1)
"""

CHAIN = """
.entry a
block a:
    mov r1, #1
    add r2, r1, #1
    add r3, r2, #1
    add r4, r3, #1
    add r5, r4, #1
    add r6, r5, #1
    sys exit(r6)
"""


class TestStaticTiming:
    def test_wide_word_packs_parallel_work(self):
        wide = run_static(PARALLEL, static_config(issue=8))
        narrow = run_static(PARALLEL, static_config(issue=2))
        assert wide.cycles < narrow.cycles

    def test_chain_unaffected_by_width(self):
        wide = run_static(CHAIN, static_config(issue=8))
        narrow = run_static(CHAIN, static_config(issue=2))
        # A pure dependence chain issues one node per cycle regardless.
        assert wide.cycles == narrow.cycles

    def test_compiler_hides_hit_latency(self):
        # Two loads + independent work: the scheduler interleaves so the
        # 3-cycle hit latency is overlapped.
        asm = """
.entry a
block a:
    mov r1, #8192
    ldw r2, [r1]
    ldw r3, [r1+4]
    mov r4, #1
    mov r5, #2
    add r6, r2, r3
    sys exit(r6)
"""
        fast = run_static(asm, static_config(memory="A"))
        slow = run_static(asm, static_config(memory="C"))
        # The compiler knows the latency; the penalty must be less than
        # the naive 2 loads x 2 extra cycles.
        assert slow.cycles - fast.cycles <= 3

    def test_cache_miss_stalls_consumer(self):
        asm = """
.entry a
block a:
    mov r1, #8192
    ldw r2, [r1]
    add r3, r2, #1
    sys exit(r3)
"""
        miss = run_static(asm, static_config(memory="D"))   # cold miss: 10
        perfect = run_static(asm, static_config(memory="A"))
        assert miss.cycles > perfect.cycles + 5

    def test_retired_counts_exclude_syscalls(self):
        result = run_static(PARALLEL, static_config())
        assert result.retired_nodes == 6


class TestStaticFaults:
    ASM = """
.entry top
block top:
    mov r1, #1
    jmp big
block big:
    mov r2, #7
    assert r1, 0, fault=fix
    mov r3, #8
    jmp after
block fix:
    mov r3, #0
    jmp after
block after:
    sys exit(r3)
"""

    def test_fault_discards_issued_nodes(self):
        result = run_static(self.ASM, static_config())
        assert result.faults == 1
        assert result.discarded_nodes >= 1
        # top(2) + fix(2) retire; big retires nothing.
        assert result.retired_nodes == 4

    def test_fault_cheaper_at_narrow_width(self):
        # At width 1 the assert issues before the block's tail, so fewer
        # nodes are in flight to discard.
        narrow = run_static(self.ASM, static_config(issue=1))
        wide = run_static(self.ASM, static_config(issue=8))
        assert narrow.discarded_nodes <= wide.discarded_nodes


class TestStaticPrediction:
    LOOP = """
.entry top
block top:
    mov r1, #0
    mov r2, #30
    jmp head
block head:
    add r1, r1, #1
    slt r3, r1, r2
    br r3, head, done
block done:
    sys exit(r1)
"""

    def test_loop_branches_predicted_after_warmup(self):
        result = run_static(self.LOOP, static_config())
        assert result.branch_lookups == 30
        assert result.mispredicts <= 4

    def test_mispredicts_add_cycles(self):
        good = run_static(self.LOOP, static_config())
        # Force worst-case prediction via the ablation family.
        bad_cfg = MachineConfig(
            discipline=Discipline.STATIC,
            issue_model=8,
            memory="A",
            branch_mode=BranchMode.SINGLE,
            predictor="nottaken",
        )
        bad = run_static(self.LOOP, bad_cfg)
        assert bad.mispredicts > good.mispredicts
        assert bad.cycles > good.cycles
