"""Tests for basic blocks, programs and CFG queries."""

import pytest

from repro.isa import AluOp, Imm, Reg, alu, branch, call, jump, movi, ret, store
from repro.isa import SyscallOp, syscall
from repro.program import BasicBlock, Program, ProgramError
from repro.program import cfg


def block(label, body, term):
    return BasicBlock(label, body, term)


def diamond_program():
    """entry -> (left|right) -> join -> exit."""
    return Program(
        [
            block("entry", [movi(1, 1)], branch(1, "left", "right")),
            block("left", [movi(2, 10)], jump("join")),
            block("right", [movi(2, 20)], jump("join")),
            block("join", [], syscall(SyscallOp.EXIT, None, (2,))),
        ],
        entry="entry",
    )


class TestBasicBlock:
    def test_rejects_non_terminator(self):
        with pytest.raises(ValueError):
            BasicBlock("b", [], movi(1, 0))

    def test_rejects_terminator_in_body(self):
        with pytest.raises(ValueError):
            BasicBlock("b", [jump("x")], jump("y"))

    def test_len_includes_terminator(self):
        blk = block("b", [movi(1, 0), movi(2, 0)], ret())
        assert len(blk) == 3

    def test_datapath_size_excludes_syscall(self):
        blk = block("b", [movi(1, 0)], syscall(SyscallOp.EXIT, None, (1,)))
        assert blk.datapath_size == 1

    def test_successors_branch(self):
        blk = block("b", [], branch(1, "t", "f"))
        assert set(blk.successor_labels()) == {"t", "f"}

    def test_successors_include_assert_faults(self):
        from repro.isa import assert_node

        blk = block("b", [assert_node(1, True, "recover")], jump("next"))
        assert set(blk.successor_labels()) == {"recover", "next"}

    def test_count_by_class(self):
        blk = block(
            "b",
            [movi(1, 0), store(Reg(1), 62, 0), alu(AluOp.ADD, 2, Reg(1), Imm(1))],
            ret(),
        )
        n_alu, n_mem = blk.count_by_class()
        assert (n_alu, n_mem) == (3, 1)  # terminator RET is ALU class


class TestProgram:
    def test_validates_entry(self):
        with pytest.raises(ProgramError):
            Program([block("a", [], ret())], entry="missing")

    def test_validates_targets(self):
        with pytest.raises(ProgramError):
            Program([block("a", [], jump("nowhere"))], entry="a")

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ProgramError):
            Program([block("a", [], ret()), block("a", [], ret())], entry="a")

    def test_data_size_consistency(self):
        with pytest.raises(ProgramError):
            Program([block("a", [], ret())], entry="a", data=b"xxxx", data_size=2)

    def test_replace_blocks_preserves_layout(self):
        program = diamond_program()
        new_left = block("left", [movi(2, 99)], jump("join"))
        updated = program.replace_blocks({"left": new_left})
        assert list(updated.blocks) == list(program.blocks)
        assert updated.block("left").body[0].src1 == Imm(99)

    def test_static_node_counts(self):
        program = diamond_program()
        n_alu, n_mem = program.static_node_counts()
        assert n_mem == 0
        # 3 movi + 1 branch + 2 jumps; syscall excluded
        assert n_alu == 6

    def test_conditional_branch_labels(self):
        assert diamond_program().conditional_branch_labels() == ["entry"]


class TestCfg:
    def test_successors_views(self):
        program = diamond_program()
        succs = cfg.successors(program)
        assert set(succs["entry"]) == {"left", "right"}
        assert succs["join"] == ()

    def test_call_fallthrough_view(self):
        program = Program(
            [
                block("main", [], call("fn", "after")),
                block("after", [], syscall(SyscallOp.EXIT, None, ())),
                block("fn", [], ret()),
            ],
            entry="main",
        )
        assert cfg.successors(program)["main"] == ("after",)
        assert set(cfg.control_successors(program)["main"]) == {"fn", "after"}

    def test_predecessors(self):
        preds = cfg.predecessors(diamond_program())
        assert set(preds["join"]) == {"left", "right"}
        assert preds["entry"] == []

    def test_reachability(self):
        program = Program(
            [
                block("a", [], jump("b")),
                block("b", [], ret()),
                block("orphan", [], ret()),
            ],
            entry="a",
        )
        assert cfg.unreachable_labels(program) == {"orphan"}

    def test_back_edges_in_loop(self):
        program = Program(
            [
                block("head", [], branch(1, "body", "exit")),
                block("body", [], jump("head")),
                block("exit", [], ret()),
            ],
            entry="head",
        )
        assert cfg.back_edges(program) == {("body", "head")}

    def test_no_back_edges_in_diamond(self):
        assert cfg.back_edges(diamond_program()) == set()


class TestDotExport:
    def test_structure(self):
        from repro.program import program_to_dot

        program = diamond_program()
        dot = program_to_dot(program, title="demo")
        assert dot.startswith("digraph cfg {")
        assert '"entry" -> "left" [label="T"];' in dot
        assert '"entry" -> "right" [label="F"];' in dot
        assert "peripheries=2" in dot  # entry highlighted
        assert 'label="demo"' in dot

    def test_elision_cap(self):
        from repro.isa import movi, jump, ret
        from repro.program import program_to_dot

        blocks = [BasicBlock(f"b{i}", [movi(1, i)], jump(f"b{i + 1}"))
                  for i in range(20)]
        blocks.append(BasicBlock("b20", [], ret()))
        program = Program(blocks, entry="b0")
        dot = program_to_dot(program, max_blocks=5)
        assert "elided" in dot
