"""Trace serialisation and prepared-workload disk cache tests."""

import io
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import run_program
from repro.interp.trace import Trace
from repro.interp.trace_io import (
    TraceFormatError,
    load_trace,
    load_trace_file,
    save_trace,
    save_trace_file,
)
from repro.harness.artifacts import ArtifactStore, workload_digest
from repro.machine import MachineConfig, Discipline, BranchMode, simulate
from repro.workloads import WORKLOADS
from repro.workloads import base as wl_base


def roundtrip(trace: Trace) -> Trace:
    buffer = io.BytesIO()
    save_trace(trace, buffer)
    buffer.seek(0)
    return load_trace(buffer)


def make_trace() -> Trace:
    trace = Trace()
    for label, outcome, fault, addrs in [
        ("a", 2, -1, [0x2000, 0x2004]),
        ("b", 1, -1, []),
        ("a", 0, 3, [0x3000, 0xFFFFFFFF]),
    ]:
        trace.block_ids.append(trace.intern(label))
        trace.outcomes.append(outcome)
        trace.fault_indices.append(fault)
        trace.addresses.extend(addrs)
    trace.exit_code = -7
    trace.retired_nodes = 123456789
    trace.discarded_nodes = 42
    return trace


class TestTraceRoundtrip:
    def test_all_fields_preserved(self):
        original = make_trace()
        loaded = roundtrip(original)
        assert loaded.labels == original.labels
        assert loaded.block_ids == original.block_ids
        assert loaded.outcomes == original.outcomes
        assert loaded.fault_indices == original.fault_indices
        assert loaded.addresses == original.addresses
        assert loaded.exit_code == original.exit_code
        assert loaded.retired_nodes == original.retired_nodes
        assert loaded.discarded_nodes == original.discarded_nodes

    def test_empty_trace(self):
        loaded = roundtrip(Trace())
        assert len(loaded) == 0
        assert loaded.addresses == []

    def test_real_trace_roundtrip(self, sumloop_program, tmp_path):
        result = run_program(sumloop_program, inputs={0: b""})
        path = str(tmp_path / "t.trace")
        save_trace_file(result.trace, path)
        loaded = load_trace_file(path)
        assert loaded.block_ids == result.trace.block_ids
        assert loaded.addresses == result.trace.addresses

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.BytesIO(b"NOPE" + b"\x00" * 64))

    def test_bad_version_rejected(self):
        buffer = io.BytesIO()
        save_trace(Trace(), buffer)
        raw = bytearray(buffer.getvalue())
        raw[4] = 99  # corrupt the version field
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(io.BytesIO(bytes(raw)))


class TestTraceTruncation:
    """A stream that ends early must always raise TraceFormatError.

    Truncation is the common corruption mode (a killed writer, a partial
    copy); the loader must never surface it as ``struct.error`` or
    ``EOFError``, and never return a silently short trace.
    """

    def test_every_prefix_is_rejected(self):
        raw = serialize(make_trace())
        assert len(raw) > 40  # the loop below must cover every section
        for cut in range(len(raw)):
            with pytest.raises(TraceFormatError, match="truncated|magic"):
                load_trace(io.BytesIO(raw[:cut]))

    def test_empty_stream_is_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.BytesIO(b""))

    def test_undecodable_label_is_a_format_error(self):
        raw = bytearray(serialize(make_trace()))
        # The first label ("a", length 1) sits right after the label
        # count; stamp an invalid UTF-8 byte over it.
        header = 4 + 4 + 4 + 8 + 8 + 4 + 2
        raw[header] = 0xFF
        with pytest.raises(TraceFormatError, match="label"):
            load_trace(io.BytesIO(bytes(raw)))


def serialize(trace: Trace) -> bytes:
    buffer = io.BytesIO()
    save_trace(trace, buffer)
    return buffer.getvalue()


@st.composite
def traces(draw):
    """A random small trace with consistent parallel arrays."""
    labels = draw(st.lists(
        st.text(st.characters(max_codepoint=0x2FF), max_size=8),
        min_size=1, max_size=5, unique=True,
    ))
    trace = Trace()
    for label in labels:
        trace.intern(label)
    n_blocks = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_blocks):
        trace.block_ids.append(
            draw(st.integers(min_value=0, max_value=len(labels) - 1))
        )
        trace.outcomes.append(draw(st.integers(min_value=0, max_value=255)))
        trace.fault_indices.append(
            draw(st.integers(min_value=-1, max_value=2**31 - 1))
        )
    trace.addresses = draw(st.lists(
        st.integers(min_value=0, max_value=2**64 - 1), max_size=16
    ))
    trace.exit_code = draw(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    trace.retired_nodes = draw(st.integers(min_value=0, max_value=2**64 - 1))
    trace.discarded_nodes = draw(st.integers(min_value=0, max_value=2**63))
    return trace


class TestTraceProperties:
    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_roundtrip_preserves_every_field(self, trace):
        loaded = roundtrip(trace)
        assert loaded.labels == trace.labels
        assert loaded.block_ids == trace.block_ids
        assert loaded.outcomes == trace.outcomes
        assert loaded.fault_indices == trace.fault_indices
        assert loaded.addresses == trace.addresses
        assert loaded.exit_code == trace.exit_code
        assert loaded.retired_nodes == trace.retired_nodes
        assert loaded.discarded_nodes == trace.discarded_nodes

    @settings(max_examples=60, deadline=None)
    @given(traces(), st.data())
    def test_any_truncation_is_a_format_error(self, trace, data):
        raw = serialize(trace)
        cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        with pytest.raises(TraceFormatError):
            load_trace(io.BytesIO(raw[:cut]))


class TestPreparedDiskCache:
    @pytest.fixture()
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(wl_base, "_PREPARED_CACHE", {})
        return tmp_path

    def test_cache_roundtrip_equivalence(self, isolated_cache):
        workload = WORKLOADS["grep"]
        first = wl_base.prepared(workload)
        # Clear the in-process cache so the next call must hit disk.
        wl_base._PREPARED_CACHE.clear()
        second = wl_base.prepared(workload)
        assert second is not first
        assert second.single_trace.retired_nodes == first.single_trace.retired_nodes
        assert list(second.single.blocks) == list(first.single.blocks)
        assert list(second.enlarged.blocks) == list(first.enlarged.blocks)

        config = MachineConfig(
            Discipline.DYNAMIC, 8, "A", BranchMode.ENLARGED, window_blocks=4
        )
        assert (
            simulate(first, config).cycles == simulate(second, config).cycles
        )

    def test_digest_depends_on_source(self, isolated_cache):
        workload = WORKLOADS["grep"]
        digest = workload_digest(workload, 1)
        altered = wl_base.Workload(
            workload.name, workload.source + "\n// change",
            workload.make_inputs, workload.reference,
        )
        assert workload_digest(altered, 1) != digest

    def test_digest_depends_on_scale(self):
        workload = WORKLOADS["grep"]
        assert workload_digest(workload, 1) != workload_digest(workload, 2)

    def test_corrupt_artefact_triggers_reprepare(self, isolated_cache):
        workload = WORKLOADS["grep"]
        wl_base.prepared(workload)
        directory = ArtifactStore().directory(workload, 1)
        with open(os.path.join(directory, "single.trace"), "wb") as handle:
            handle.write(b"garbage")
        wl_base._PREPARED_CACHE.clear()
        again = wl_base.prepared(workload)  # must silently re-prepare
        assert again.single_trace.retired_nodes > 0
