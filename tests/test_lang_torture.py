"""Compiler torture tests: complete classic algorithms with known outputs.

Each program is a realistic piece of C that exercises many language
features at once; outputs are independently computable, so these pin the
whole front end + optimiser + interpreter chain.
"""

import pytest

from repro.interp import run_program
from repro.lang import compile_source


def run(source, inputs=None, optimize=True):
    program = compile_source(source, optimize=optimize)
    return run_program(program, inputs=inputs or {0: b""})


class TestSieve:
    SOURCE = """
    char composite[1000];
    int main() {
        int count = 0;
        int i;
        int j;
        for (i = 2; i < 1000; i++) {
            if (!composite[i]) {
                count++;
                for (j = i + i; j < 1000; j += i) composite[j] = 1;
            }
        }
        return count;
    }
    """

    def test_prime_count_below_1000(self):
        assert run(self.SOURCE).exit_code == 168

    def test_unoptimized_agrees(self):
        assert run(self.SOURCE, optimize=False).exit_code == 168


class TestMatrixMultiply:
    SOURCE = """
    int a[16];
    int b[16];
    int c[16];
    int main() {
        int i; int j; int k;
        for (i = 0; i < 4; i++)
            for (j = 0; j < 4; j++) {
                a[i * 4 + j] = i + j;
                b[i * 4 + j] = i * j + 1;
            }
        for (i = 0; i < 4; i++)
            for (j = 0; j < 4; j++) {
                int sum = 0;
                for (k = 0; k < 4; k++)
                    sum += a[i * 4 + k] * b[k * 4 + j];
                c[i * 4 + j] = sum;
            }
        return c[0] + c[5] * 10 + c[15] * 100;
    }
    """

    def test_result(self):
        # Python reference computed inline:
        a = [[i + j for j in range(4)] for i in range(4)]
        b = [[i * j + 1 for j in range(4)] for i in range(4)]
        c = [[sum(a[i][k] * b[k][j] for k in range(4)) for j in range(4)]
             for i in range(4)]
        expected = c[0][0] + c[1][1] * 10 + c[3][3] * 100
        assert run(self.SOURCE).exit_code == expected


class TestEightQueens:
    SOURCE = """
    int cols[8];
    int solutions;

    int safe(int row, int col) {
        int r;
        for (r = 0; r < row; r++) {
            int other = cols[r];
            if (other == col) return 0;
            if (other - col == row - r) return 0;
            if (col - other == row - r) return 0;
        }
        return 1;
    }

    void place(int row) {
        int col;
        if (row == 8) { solutions++; return; }
        for (col = 0; col < 8; col++) {
            if (safe(row, col)) {
                cols[row] = col;
                place(row + 1);
            }
        }
    }

    int main() {
        place(0);
        return solutions;
    }
    """

    def test_92_solutions(self):
        assert run(self.SOURCE).exit_code == 92


class TestCollatz:
    SOURCE = """
    int steps(int n) {
        int count = 0;
        while (n != 1) {
            if (n & 1) n = 3 * n + 1;
            else n = n / 2;
            count++;
        }
        return count;
    }
    int main() {
        int longest = 0;
        int best = 0;
        int n;
        for (n = 1; n <= 200; n++) {
            int s = steps(n);
            if (s > longest) { longest = s; best = n; }
        }
        return best * 1000 + longest;
    }
    """

    def test_longest_chain_below_200(self):
        def steps(n):
            count = 0
            while n != 1:
                n = 3 * n + 1 if n % 2 else n // 2
                count += 1
            return count

        best, longest = max(
            ((n, steps(n)) for n in range(1, 201)), key=lambda t: t[1]
        )
        assert run(self.SOURCE).exit_code == best * 1000 + longest


class TestStringAlgorithms:
    SOURCE = """
    char buf[256];

    int my_strlen(char *s) {
        int n = 0;
        while (s[n]) n++;
        return n;
    }

    void my_strcpy(char *dst, char *src) {
        int i = 0;
        while ((dst[i] = src[i])) i++;
    }

    void reverse(char *s) {
        int i = 0;
        int j = my_strlen(s) - 1;
        while (i < j) {
            char t = s[i];
            s[i] = s[j];
            s[j] = t;
            i++;
            j--;
        }
    }

    int is_palindrome(char *s) {
        int i = 0;
        int j = my_strlen(s) - 1;
        while (i < j) {
            if (s[i] != s[j]) return 0;
            i++;
            j--;
        }
        return 1;
    }

    int main() {
        my_strcpy(buf, "simulator");
        reverse(buf);
        int r = buf[0];                 /* 'r' */
        int pal = is_palindrome("racecar") * 2 + is_palindrome("race");
        return r * 10 + pal;
    }
    """

    def test_combined(self):
        assert run(self.SOURCE).exit_code == ord("r") * 10 + 2


class TestBinarySearchTree:
    SOURCE = """
    struct node { int key; struct node *left; struct node *right; };

    struct node *insert(struct node *root, int key) {
        if (!root) {
            struct node *n = sbrk(sizeof(struct node));
            n->key = key;
            n->left = 0;
            n->right = 0;
            return n;
        }
        if (key < root->key) root->left = insert(root->left, key);
        else if (key > root->key) root->right = insert(root->right, key);
        return root;
    }

    int count_inorder(struct node *root, int *prev) {
        int bad = 0;
        if (!root) return 0;
        bad += count_inorder(root->left, prev);
        if (*prev > root->key) bad++;
        *prev = root->key;
        bad += count_inorder(root->right, prev);
        return bad;
    }

    int depth(struct node *root) {
        if (!root) return 0;
        int l = depth(root->left);
        int r = depth(root->right);
        return 1 + (l > r ? l : r);
    }

    int main() {
        struct node *root = 0;
        int i;
        int seed = 7;
        for (i = 0; i < 64; i++) {
            seed = (seed * 1103515245 + 12345) & 32767;
            root = insert(root, seed);
        }
        int prev = -1;
        int violations = count_inorder(root, &prev);
        return violations * 100 + depth(root);
    }
    """

    def test_bst_invariant_holds(self):
        result = run(self.SOURCE)
        violations, depth = divmod(result.exit_code, 100)
        assert violations == 0
        assert 6 <= depth <= 30  # 64 random keys


class TestFixedPointMath:
    SOURCE = """
    int isqrt(int n) {
        int x = n;
        int y = (x + 1) / 2;
        if (n < 2) return n;
        while (y < x) {
            x = y;
            y = (x + n / x) / 2;
        }
        return x;
    }
    int main() {
        int total = 0;
        int n;
        for (n = 0; n < 200; n++) total += isqrt(n);
        return total;
    }
    """

    def test_integer_sqrt_sum(self):
        import math

        expected = sum(math.isqrt(n) for n in range(200))
        assert run(self.SOURCE).exit_code == expected


class TestRecursiveDescentCalculator:
    """An expression evaluator written in Mini-C -- a compiler inside
    the compiled program, exercising recursion and character handling."""

    SOURCE = """
    char expr[128];
    int pos;

    int parse_expr();

    int parse_atom() {
        int value = 0;
        if (expr[pos] == '(') {
            pos++;
            value = parse_expr();
            pos++;
            return value;
        }
        while (expr[pos] >= '0' && expr[pos] <= '9') {
            value = value * 10 + (expr[pos] - '0');
            pos++;
        }
        return value;
    }

    int parse_term() {
        int value = parse_atom();
        while (expr[pos] == '*' || expr[pos] == '/') {
            char op = expr[pos];
            pos++;
            int rhs = parse_atom();
            if (op == '*') value *= rhs;
            else value /= rhs;
        }
        return value;
    }

    int parse_expr() {
        int value = parse_term();
        while (expr[pos] == '+' || expr[pos] == '-') {
            char op = expr[pos];
            pos++;
            int rhs = parse_term();
            if (op == '+') value += rhs;
            else value -= rhs;
        }
        return value;
    }

    int main() {
        int n = read(0, expr, 127);
        expr[n] = 0;
        pos = 0;
        return parse_expr();
    }
    """

    @pytest.mark.parametrize("text,expected", [
        ("1+2*3", 7),
        ("(1+2)*3", 9),
        ("100/5/2", 10),
        ("2*(3+4)-(5-1)", 10),
        ("((((7))))", 7),
        ("10-2-3", 5),
    ])
    def test_evaluates(self, text, expected):
        result = run(self.SOURCE, inputs={0: text.encode()})
        assert result.exit_code == expected
