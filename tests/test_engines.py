"""Timing-engine tests: known cycle counts, squash accounting, monotonicity."""

import pytest

from repro.interp import run_program
from repro.lang import compile_source
from repro.machine import (
    BranchMode,
    Discipline,
    MachineConfig,
    build_templates,
    simulate,
)
from repro.machine.dynamic import DynamicEngine
from repro.machine.simulator import prepare_workload
from repro.program import parse_program


def config(discipline=Discipline.DYNAMIC, issue=8, memory="A",
           mode=BranchMode.SINGLE, window=256, hints=True):
    return MachineConfig(
        discipline=discipline,
        issue_model=issue,
        memory=memory,
        branch_mode=mode,
        window_blocks=window,
        static_hints=hints,
    )


def engine_run(asm, cfg, inputs=None):
    program = parse_program(asm)
    result = run_program(program, inputs=inputs or {0: b""})
    templates = build_templates(program)
    engine = DynamicEngine(templates, result.trace, cfg, benchmark="t")
    return engine.run()


STRAIGHT_LINE = """
.entry a
block a:
    mov r1, #1
    add r2, r1, #1
    add r3, r2, #1
    add r4, r3, #1
    sys exit(r4)
"""

INDEPENDENT = """
.entry a
block a:
    mov r1, #1
    mov r2, #2
    mov r3, #3
    mov r4, #4
    sys exit(r4)
"""


class TestDynamicBasics:
    def test_dependent_chain_serialises(self):
        chain = engine_run(STRAIGHT_LINE, config())
        parallel = engine_run(INDEPENDENT, config())
        assert chain.cycles > parallel.cycles
        assert chain.retired_nodes == parallel.retired_nodes == 4

    def test_narrow_issue_limits_parallel_work(self):
        wide = engine_run(INDEPENDENT, config(issue=8))
        seq = engine_run(INDEPENDENT, config(issue=1))
        assert seq.cycles > wide.cycles

    def test_retired_matches_functional_trace(self):
        result = engine_run(STRAIGHT_LINE, config())
        assert result.retired_nodes == 4
        assert result.discarded_nodes == 0

    def test_memory_latency_extends_chain(self):
        asm = """
.entry a
block a:
    mov r1, #8192
    ldw r2, [r1]
    add r3, r2, #1
    sys exit(r3)
"""
        fast = engine_run(asm, config(memory="A"))
        slow = engine_run(asm, config(memory="C"))
        assert slow.cycles == fast.cycles + 2

    def test_store_load_forwarding_dependence(self):
        asm = """
.entry a
block a:
    mov r1, #8192
    mov r2, #5
    stw r2, [r1]
    ldw r3, [r1]
    sys exit(r3)
"""
        result = engine_run(asm, config())
        # The load must wait for the store: strictly more cycles than an
        # equivalent block without the conflict.
        asm_nc = asm.replace("ldw r3, [r1]", "ldw r3, [r1+8]")
        no_conflict = engine_run(asm_nc, config())
        assert result.cycles >= no_conflict.cycles


LOOP_ASM = """
.entry top
block top:
    mov r1, #0
    mov r2, #50
    jmp head
block head:
    add r1, r1, #1
    slt r3, r1, r2
    br r3, head, done
block done:
    sys exit(r1)
"""


class TestBranchHandling:
    def test_loop_mispredicts_cost_cycles(self):
        real = engine_run(LOOP_ASM, config(mode=BranchMode.SINGLE))
        # Perfect mode needs an enlarged-style setup; compare instead
        # against hint-less prediction which must mispredict more early.
        assert real.branch_lookups == 50
        assert real.mispredicts >= 1
        assert real.discarded_nodes > 0

    def test_perfect_mode_never_mispredicts(self):
        result = engine_run(LOOP_ASM, config(mode=BranchMode.PERFECT, window=4))
        assert result.mispredicts == 0
        assert result.discarded_nodes == 0

    def test_static_hint_avoids_cold_mispredicts(self):
        biased = """
.entry top
block top:
    mov r1, #0
    mov r2, #40
    jmp head
block head:
    add r1, r1, #1
    slt r3, r1, r2
    br r3, head, done !taken
block done:
    sys exit(r1)
"""
        with_hints = engine_run(biased, config(hints=True))
        without = engine_run(biased, config(hints=False))
        assert with_hints.mispredicts <= without.mispredicts

    def test_window_one_cannot_speculate(self):
        result = engine_run(LOOP_ASM, config(window=1))
        assert result.discarded_nodes == 0  # no room for wrong-path work


class TestFaultHandling:
    FAULTY = """
.entry top
block top:
    mov r1, #3
    jmp big
block big:
    add r2, r1, #1
    assert r1, 0, fault=fix
    add r3, r2, #1
    jmp after
block fix:
    mov r3, #0
    jmp after
block after:
    sys exit(r3)
"""

    def test_fault_discards_block(self):
        result = engine_run(self.FAULTY, config())
        assert result.faults == 1
        assert result.discarded_nodes >= 1

    def test_faulted_blocks_do_not_retire(self):
        result = engine_run(self.FAULTY, config())
        # top (mov+jmp) + fix (mov+jmp) + after (syscall only, 0 datapath)
        assert result.retired_nodes == 4


class TestWindowAndWidthMonotonicity:
    @pytest.fixture(scope="class")
    def loops(self):
        source = """
        int a[64];
        int main() {
            int i; int s = 0;
            for (i = 0; i < 64; i++) a[i] = i ^ (i << 2);
            for (i = 0; i < 64; i++) if (a[i] & 4) s += a[i];
            return s & 255;
        }
        """
        return prepare_workload(
            "loops", compile_source(source), {0: b""}, {0: b""}
        )

    def test_wider_issue_not_slower(self, loops):
        previous = None
        for issue in range(1, 9):
            result = simulate(loops, config(issue=issue, window=4))
            if previous is not None:
                assert result.cycles <= previous * 1.01
            previous = result.cycles

    def test_bigger_window_not_slower(self, loops):
        cycles = [
            simulate(loops, config(window=w)).cycles for w in (1, 4, 256)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_faster_memory_not_slower(self, loops):
        slow = simulate(loops, config(memory="C"))
        fast = simulate(loops, config(memory="A"))
        assert fast.cycles <= slow.cycles

    def test_small_cache_not_faster_than_big(self, loops):
        small = simulate(loops, config(memory="D"))
        big = simulate(loops, config(memory="E"))
        assert big.cycles <= small.cycles * 1.01

    def test_static_engine_runs_all_memories(self, loops):
        for memory in "ABCDEFG":
            result = simulate(
                loops,
                config(discipline=Discipline.STATIC, issue=4, memory=memory,
                       window=1),
            )
            assert result.cycles > 0
            assert result.retired_nodes == loops.single_trace.retired_nodes


class TestCrossEngineInvariants:
    def test_dynamic_beats_sequential_static(self, grep_prepared):
        dyn = simulate(
            grep_prepared, config(issue=8, window=256, mode=BranchMode.ENLARGED)
        )
        static = simulate(
            grep_prepared,
            config(discipline=Discipline.STATIC, issue=1, window=1),
        )
        assert dyn.retired_per_cycle > static.retired_per_cycle

    def test_perfect_at_least_as_good_as_real(self, grep_prepared):
        real = simulate(
            grep_prepared, config(issue=8, window=4, mode=BranchMode.ENLARGED)
        )
        perfect = simulate(
            grep_prepared, config(issue=8, window=4, mode=BranchMode.PERFECT)
        )
        assert perfect.retired_per_cycle >= real.retired_per_cycle * 0.98

    def test_work_normalisation(self, grep_prepared):
        result = simulate(grep_prepared, config())
        assert result.work_nodes == grep_prepared.single_trace.retired_nodes
