"""Validation-oracle tests: invariants, dominance, baselines, CLI gating.

The contracts under test (see DESIGN.md "Validation & regression
gating"):

* layer one (``invariants``) flags structurally impossible results and
  nothing else -- a clean synthetic result produces zero findings;
* layer two (``dominance``) orders the grid: a strictly more capable
  machine that loses produces one typed ``error`` finding per violated
  adjacent pair, partial grids compare as far as their coverage goes;
* layer three (``baseline``) gates drift against a committed golden
  snapshot, failing loudly on stale ``CACHE_VERSION`` instead of
  silently comparing nothing;
* the CLI wires all three behind exit code 4, and serial and
  ``--jobs N`` sweeps of one grid report byte-identical findings.
"""

import json
import multiprocessing

import pytest

from repro.cli import main
from repro.harness.cache import CACHE_VERSION
from repro.harness.runner import SweepRunner
from repro.machine.config import (
    BranchMode,
    Discipline,
    MachineConfig,
    smoke_configuration_space,
)
from repro.stats.results import SimResult
from repro.validate import (
    DEFAULT_REL_TOL,
    ValidationFinding,
    check_baseline,
    check_dominance,
    check_result,
    count_by_severity,
    default_baseline_path,
    has_errors,
    record_baseline,
    run_oracle,
    sort_findings,
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool workers must inherit monkeypatched module state",
)


def config(discipline=Discipline.DYNAMIC, issue=8, memory="A",
           mode=BranchMode.SINGLE, window=4):
    return MachineConfig(
        discipline=discipline,
        issue_model=issue,
        memory=memory,
        branch_mode=mode,
        window_blocks=window,
    )


def clean_result(cfg=None, benchmark="grep", cycles=1000, retired=4000,
                 **overrides):
    """A SimResult satisfying every structural invariant."""
    cfg = cfg or config()
    fields = dict(
        benchmark=benchmark,
        config=cfg,
        cycles=cycles,
        retired_nodes=retired,
        discarded_nodes=0,
        dynamic_blocks=100,
        mispredicts=0,
        branch_lookups=200,
        faults=0,
        cache_accesses=0,
        cache_misses=0,
        issue_words=1000,
        issued_slots=1000,
        window_block_cycles=(
            100 if cfg.discipline is Discipline.DYNAMIC else 0
        ),
        window_samples=(
            100 if cfg.discipline is Discipline.DYNAMIC else 0
        ),
        work_nodes=retired,
    )
    fields.update(overrides)
    return SimResult(**fields)


def rules(findings):
    return sorted(finding.rule for finding in findings)


# ----------------------------------------------------------------------
class TestFindings:
    def finding(self, **overrides):
        fields = dict(rule="invariant.cache", severity="error",
                      benchmark="grep", config="dyn4/single/8/A",
                      message="m")
        fields.update(overrides)
        return ValidationFinding(**fields)

    def test_to_dict_drops_empty_extra(self):
        record = self.finding().to_dict()
        assert "extra" not in record
        assert record["rule"] == "invariant.cache"
        record = self.finding(extra={"k": 1}).to_dict()
        assert record["extra"] == {"k": 1}

    def test_dict_roundtrip(self):
        original = self.finding(measured=2.0, expected=1.0,
                                reference="dyn1/single/8/A")
        assert ValidationFinding.from_dict(original.to_dict()) == original

    def test_sort_orders_severity_first(self):
        warning = self.finding(rule="baseline.uncovered",
                               severity="warning")
        error = self.finding(rule="invariant.work")
        assert sort_findings([warning, error]) == [error, warning]

    def test_severity_counts_and_gating(self):
        findings = [self.finding(), self.finding(severity="warning")]
        counts = count_by_severity(findings)
        assert counts["error"] == 1
        assert counts["warning"] == 1
        assert has_errors(findings)
        assert not has_errors([self.finding(severity="warning")])

    def test_summary_names_both_points_when_pairwise(self):
        line = self.finding(reference="dyn1/single/8/A").summary()
        assert "dyn4/single/8/A vs dyn1/single/8/A" in line


# ----------------------------------------------------------------------
class TestInvariants:
    def test_clean_result_has_no_findings(self):
        assert check_result(clean_result()) == []
        static = config(discipline=Discipline.STATIC, window=1)
        assert check_result(clean_result(static)) == []

    def test_negative_counter(self):
        findings = check_result(clean_result(mispredicts=-1))
        assert "invariant.counts" in rules(findings)

    def test_cache_misses_exceed_accesses(self):
        cfg = config(memory="D")
        findings = check_result(
            clean_result(cfg, cache_accesses=5, cache_misses=10)
        )
        assert rules(findings) == ["invariant.cache"]

    def test_perfect_memory_must_not_touch_a_cache(self):
        findings = check_result(clean_result(cache_accesses=7))
        assert rules(findings) == ["invariant.cache"]
        # The same counters are legal on a real cache hierarchy.
        assert check_result(
            clean_result(config(memory="D"), cache_accesses=7)
        ) == []

    def test_issue_utilization_bounded_by_bandwidth(self):
        width = config().issue.total_slots
        findings = check_result(
            clean_result(issue_words=10, issued_slots=10 * width + 1)
        )
        assert rules(findings) == ["invariant.issue"]

    def test_window_occupancy_bounded_by_window(self):
        findings = check_result(clean_result(
            config(window=4),
            window_samples=10, window_block_cycles=41,
        ))
        assert rules(findings) == ["invariant.window"]

    def test_static_machine_has_no_window(self):
        cfg = config(discipline=Discipline.STATIC, window=1)
        findings = check_result(clean_result(
            cfg, window_samples=5, window_block_cycles=5,
        ))
        assert rules(findings) == ["invariant.window"]

    def test_discards_need_a_mispredict_or_fault(self):
        findings = check_result(clean_result(discarded_nodes=50))
        assert rules(findings) == ["invariant.redundancy"]
        # Attributed discards are fine.
        assert check_result(
            clean_result(discarded_nodes=50, mispredicts=1)
        ) == []

    def test_single_block_program_cannot_fault(self):
        findings = check_result(clean_result(faults=3))
        assert "invariant.redundancy" in rules(findings)

    def test_perfect_prediction_cannot_mispredict(self):
        cfg = config(mode=BranchMode.PERFECT)
        findings = check_result(clean_result(cfg, mispredicts=2))
        assert rules(findings) == ["invariant.branch"]

    def test_mispredicts_bounded_by_lookups(self):
        findings = check_result(
            clean_result(branch_lookups=5, mispredicts=6)
        )
        assert rules(findings) == ["invariant.branch"]

    def test_retired_work_agreement(self):
        # Explicit trace count wins and pins any branch mode.
        cfg = config(mode=BranchMode.ENLARGED)
        result = clean_result(cfg, retired=4000)
        assert check_result(result, trace_retired=4000) == []
        findings = check_result(result, trace_retired=3999)
        assert rules(findings) == ["invariant.work"]
        # Without a trace, single-block results pin against work_nodes.
        findings = check_result(clean_result(work_nodes=4001))
        assert rules(findings) == ["invariant.work"]

    def test_every_finding_is_gating(self):
        findings = check_result(clean_result(
            discarded_nodes=50, cache_accesses=7, mispredicts=-1,
        ))
        assert findings and all(f.severity == "error" for f in findings)


# ----------------------------------------------------------------------
def graded_result(cfg, benchmark="grep"):
    """Synthetic result whose IPC grows with machine capability.

    Strictly monotone along every dominance axis: window size, issue
    model index, branch handling (perfect > realistic) and perfect-memory
    speed (A > B > C) -- so a grid built from it is dominance-clean.
    """
    window = (
        cfg.window_blocks if cfg.discipline is Discipline.DYNAMIC else 0
    )
    mode_rank = {"single": 0, "enlarged": 1, "perfect": 2}[
        cfg.branch_mode.value
    ]
    memory_rank = {"C": 0, "B": 1, "A": 2}.get(cfg.memory, 0)
    retired = (
        4000 + window + 100 * mode_rank + 10 * cfg.issue_model
        + 30 * memory_rank
    )
    return clean_result(cfg, benchmark=benchmark, cycles=1000,
                        retired=retired,
                        mispredicts=0 if mode_rank == 2 else 10,
                        branch_lookups=200)


def grid(points):
    """Results over explicit (discipline, issue, memory, mode, window)."""
    return [graded_result(config(*point)) for point in points]


class TestDominance:
    def smoke_grid(self):
        return [graded_result(cfg) for cfg in smoke_configuration_space()]

    def test_monotone_grid_is_clean(self):
        assert check_dominance(self.smoke_grid()) == []
        assert check_dominance(self.smoke_grid(), rel_tol=0.0) == []

    def slowed(self, predicate, factor=0.5):
        results = []
        for cfg in smoke_configuration_space():
            result = graded_result(cfg)
            if predicate(cfg):
                result.retired_nodes = int(result.retired_nodes * factor)
                result.work_nodes = result.retired_nodes
            results.append(result)
        return results

    def test_window_inversion_is_flagged(self):
        results = self.slowed(
            lambda cfg: cfg.discipline is Discipline.DYNAMIC
            and cfg.window_blocks == 256
        )
        findings = check_dominance(results)
        assert findings
        assert set(rules(findings)) == {"dominance.window"}
        finding = findings[0]
        assert finding.severity == "error"
        assert "dyn256" in finding.config
        assert "dyn4" in finding.reference
        assert finding.measured < finding.expected

    def test_issue_inversion_is_flagged(self):
        results = self.slowed(lambda cfg: cfg.issue_model == 8)
        findings = check_dominance(results)
        assert "dominance.issue" in set(rules(findings))

    def test_memory_inversion_is_flagged(self):
        results = self.slowed(lambda cfg: cfg.memory == "A")
        findings = check_dominance(results)
        assert "dominance.memory" in set(rules(findings))

    def test_branch_inversion_is_flagged(self):
        results = self.slowed(
            lambda cfg: cfg.branch_mode is BranchMode.PERFECT
        )
        findings = check_dominance(results)
        assert set(rules(findings)) == {"dominance.branch"}

    def test_rel_tol_forgives_small_losses(self):
        # Factor 0.93 inverts dyn256 vs dyn4 by ~1.2-1.6% across the
        # smoke grid: a real loss, but inside the 2% default tolerance.
        results = self.slowed(
            lambda cfg: cfg.discipline is Discipline.DYNAMIC
            and cfg.window_blocks == 256,
            factor=0.93,
        )
        assert check_dominance(results, rel_tol=DEFAULT_REL_TOL) == []
        assert check_dominance(results, rel_tol=0.0) != []

    def test_partial_grid_compares_adjacent_present_pairs(self):
        # dyn1 and dyn256 only: with dyn4 absent they become adjacent,
        # so an inverted dyn256 is still caught.
        points = [
            (Discipline.DYNAMIC, 8, "A", BranchMode.SINGLE, 1),
            (Discipline.DYNAMIC, 8, "A", BranchMode.SINGLE, 256),
        ]
        results = grid(points)
        assert check_dominance(results) == []
        results[1].work_nodes = results[1].retired_nodes = 100
        findings = check_dominance(results)
        assert rules(findings) == ["dominance.window"]

    def test_result_order_does_not_change_findings(self):
        results = self.slowed(lambda cfg: cfg.issue_model == 8)
        forward = check_dominance(results)
        backward = check_dominance(list(reversed(results)))
        assert sort_findings(forward) == sort_findings(backward)


# ----------------------------------------------------------------------
class TestBaseline:
    def test_default_path_names_grid_and_benchmarks(self):
        assert default_baseline_path(["grep"], smoke=True) == (
            "baselines/smoke-grep.json"
        )
        assert default_baseline_path(["grep", "sort"], smoke=False) == (
            "baselines/full-grep-sort.json"
        )

    def test_record_then_check_roundtrip(self, tmp_path):
        path = str(tmp_path / "base.json")
        results = [graded_result(cfg)
                   for cfg in smoke_configuration_space()]
        document = record_baseline(results, scale=1, path=path)
        assert document["schema"] == "repro.baseline/1"
        assert document["cache_version"] == CACHE_VERSION
        assert document["benchmarks"] == ["grep"]
        assert len(document["points"]) == 40
        on_disk = json.loads((tmp_path / "base.json").read_text())
        assert on_disk == document
        assert check_baseline(results, scale=1, path=path) == []

    def test_drift_beyond_tolerance_gates(self, tmp_path):
        path = str(tmp_path / "base.json")
        results = [graded_result(cfg)
                   for cfg in smoke_configuration_space()]
        record_baseline(results, scale=1, path=path)
        results[0].cycles = int(results[0].cycles * 1.05)
        findings = check_baseline(results, scale=1, path=path)
        assert findings and all(f.severity == "error" for f in findings)
        assert set(rules(findings)) == {"baseline.drift"}
        # Both the cycle count and the derived IPC drifted.
        assert {f.reference for f in findings} == {
            "cycles", "retired_per_cycle",
        }

    def test_mispredicts_are_integer_exact(self, tmp_path):
        path = str(tmp_path / "base.json")
        results = [graded_result(cfg)
                   for cfg in smoke_configuration_space()]
        record_baseline(results, scale=1, path=path)
        results[0].mispredicts += 1
        findings = check_baseline(results, scale=1, path=path)
        assert rules(findings) == ["baseline.drift"]
        assert findings[0].reference == "mispredicts"

    def test_missing_baseline_is_an_error(self, tmp_path):
        findings = check_baseline([], scale=1,
                                  path=str(tmp_path / "absent.json"))
        assert rules(findings) == ["baseline.missing"]
        assert findings[0].severity == "error"

    def test_stale_cache_version_fails_loudly(self, tmp_path):
        path = str(tmp_path / "base.json")
        results = [graded_result(config())]
        record_baseline(results, scale=1, path=path)
        document = json.loads((tmp_path / "base.json").read_text())
        document["cache_version"] = CACHE_VERSION - 1
        (tmp_path / "base.json").write_text(json.dumps(document))
        findings = check_baseline(results, scale=1, path=path)
        # Early return: the version finding alone, no point-level noise.
        assert rules(findings) == ["baseline.version"]
        assert "re-record" in findings[0].message

    def test_scale_mismatch_fails_loudly(self, tmp_path):
        path = str(tmp_path / "base.json")
        results = [graded_result(config())]
        record_baseline(results, scale=1, path=path)
        findings = check_baseline(results, scale=2, path=path)
        assert rules(findings) == ["baseline.scale"]

    def test_coverage_asymmetries_warn_but_do_not_gate(self, tmp_path):
        path = str(tmp_path / "base.json")
        a = graded_result(config(issue=2))
        b = graded_result(config(issue=8))
        record_baseline([a, b], scale=1, path=path)
        c = graded_result(config(issue=4))
        findings = check_baseline([a, c], scale=1, path=path)
        assert rules(findings) == ["baseline.uncovered",
                                   "baseline.unrecorded"]
        assert all(f.severity == "warning" for f in findings)
        assert not has_errors(findings)


# ----------------------------------------------------------------------
class TestOracle:
    def test_clean_grid_reports_ok(self):
        results = [graded_result(cfg)
                   for cfg in smoke_configuration_space()]
        report = run_oracle(results)
        assert report.ok
        assert report.checked_results == 40
        assert report.errors == 0
        document = report.to_dict()
        assert document["schema"] == "repro.validation/1"
        assert document["severities"]["error"] == 0
        assert document["findings"] == []
        assert "baseline" not in document
        assert report.summary_lines()[0] == (
            "validation: 40 result(s) checked, clean, 0 warning(s)"
        )

    def test_supplied_invariant_findings_skip_that_layer(self):
        # An invariant-violating result with pre-supplied (empty)
        # findings: the oracle trusts the eager pass and does not re-run
        # layer one.
        bad = clean_result(discarded_nodes=50)
        assert not run_oracle([bad], invariant_findings=[]).findings
        assert run_oracle([bad]).findings

    def test_findings_are_sorted_and_gate_ok(self):
        results = [graded_result(cfg)
                   for cfg in smoke_configuration_space()]
        results[0].cache_accesses = 9  # invariant.cache on a perfect memory
        report = run_oracle(results)
        assert not report.ok
        assert report.findings == sort_findings(report.findings)

    def test_baseline_layer_runs_only_when_pathed(self, tmp_path):
        results = [graded_result(config())]
        assert run_oracle(results).ok
        report = run_oracle(
            results, baseline_path=str(tmp_path / "none.json")
        )
        assert not report.ok
        assert report.to_dict()["baseline"].endswith("none.json")


# ----------------------------------------------------------------------
def _install_stub_simulation(monkeypatch, stub):
    """Route every simulation through ``stub(config)`` (workers inherit)."""
    monkeypatch.setattr(SweepRunner, "workload", lambda self, name: None)
    monkeypatch.setattr(SweepRunner, "prepare_artifacts",
                        lambda self, name: None)
    monkeypatch.setattr(
        "repro.harness.runner.simulate",
        lambda workload, config, collector=None, max_cycles=None, **kwargs:
        stub(config),
    )


class TestValidateCommand:
    def test_record_then_check_clean(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _install_stub_simulation(monkeypatch, graded_result)
        baseline = str(tmp_path / "base.json")
        metrics = tmp_path / "telemetry.json"
        code = main([
            "validate", "--benchmarks", "grep", "--smoke", "--record",
            "--baseline", baseline, "--metrics-out", str(metrics),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recorded golden baseline" in out
        document = json.loads(metrics.read_text())
        assert document["validation"]["checked_results"] == 40
        assert document["validation"]["findings"] == []

        code = main(["validate", "--benchmarks", "grep", "--smoke",
                     "--check", "--baseline", baseline])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_injected_window_slowdown_gates(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

        def slowed(cfg):
            result = graded_result(cfg)
            if (cfg.discipline is Discipline.DYNAMIC
                    and cfg.window_blocks == 256):
                result.retired_nodes //= 2
                result.work_nodes = result.retired_nodes
            return result

        _install_stub_simulation(monkeypatch, slowed)
        metrics = tmp_path / "telemetry.json"
        code = main(["validate", "--benchmarks", "grep", "--smoke",
                     "--metrics-out", str(metrics)])
        out = capsys.readouterr().out
        assert code == 4
        assert "dominance.window" in out
        found = json.loads(metrics.read_text())["validation"]["findings"]
        assert any(f["rule"] == "dominance.window" for f in found)

    def test_record_refused_on_oracle_rejection(self, tmp_path,
                                                monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

        def broken(cfg):
            return graded_result(cfg) if cfg.memory != "C" else (
                clean_result(cfg, cache_accesses=5, cache_misses=9)
            )

        _install_stub_simulation(monkeypatch, broken)
        baseline = tmp_path / "base.json"
        code = main(["validate", "--benchmarks", "grep", "--smoke",
                     "--record", "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == 4
        assert "refusing to record" in captured.err
        assert not baseline.exists()

    def test_baseline_drift_gates(self, tmp_path, monkeypatch, capsys):
        baseline = str(tmp_path / "base.json")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        _install_stub_simulation(monkeypatch, graded_result)
        assert main(["validate", "--benchmarks", "grep", "--smoke",
                     "--record", "--baseline", baseline]) == 0
        capsys.readouterr()

        def drifted(cfg):
            result = graded_result(cfg)
            result.cycles = int(result.cycles * 1.05)
            return result

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        _install_stub_simulation(monkeypatch, drifted)
        metrics = tmp_path / "telemetry.json"
        code = main(["validate", "--benchmarks", "grep", "--smoke",
                     "--check", "--baseline", baseline,
                     "--metrics-out", str(metrics)])
        out = capsys.readouterr().out
        assert code == 4
        assert "baseline.drift" in out
        found = json.loads(metrics.read_text())["validation"]["findings"]
        drift = [f for f in found if f["rule"] == "baseline.drift"]
        assert drift and all(f["severity"] == "error" for f in drift)


class TestSweepValidateFlag:
    def test_clean_sweep_exits_zero_with_report(self, tmp_path,
                                                monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _install_stub_simulation(monkeypatch, graded_result)
        metrics = tmp_path / "telemetry.json"
        code = main(["sweep", "--benchmarks", "grep", "--limit", "6",
                     "--validate", "--metrics-out", str(metrics)])
        captured = capsys.readouterr()
        assert code == 0
        assert "clean" in captured.err
        document = json.loads(metrics.read_text())
        assert document["validation"]["checked_results"] == 6
        assert document["counters"].get(
            "validate.invariant.violations", 0
        ) == 0

    def test_gating_findings_exit_4(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

        def broken(cfg):
            result = graded_result(cfg)
            if cfg.memory == "D":
                result.discarded_nodes = 50  # unattributed redundancy
                result.mispredicts = 0
            return result

        _install_stub_simulation(monkeypatch, broken)
        code = main(["sweep", "--benchmarks", "grep", "--limit", "7",
                     "--validate"])
        captured = capsys.readouterr()
        assert code == 4
        assert "invariant.redundancy" in captured.err

    def test_cached_results_feed_the_oracle(self, tmp_path, monkeypatch,
                                            capsys):
        # First sweep fills the cache without validating; a resumed
        # --validate sweep is all cache hits and must still check them.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _install_stub_simulation(monkeypatch, graded_result)
        assert main(["sweep", "--benchmarks", "grep",
                     "--limit", "6"]) == 0
        metrics = tmp_path / "telemetry.json"
        code = main(["sweep", "--benchmarks", "grep", "--limit", "0",
                     "--resume", "--validate",
                     "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert code == 0
        document = json.loads(metrics.read_text())
        assert document["counters"]["sweep.cache.hit"] == 6
        assert document["validation"]["checked_results"] == 6

    @fork_only
    def test_serial_and_parallel_findings_are_identical(
            self, tmp_path, monkeypatch, capsys):
        def broken(cfg):
            result = graded_result(cfg)
            if cfg.memory in ("D", "F"):
                result.discarded_nodes = 50  # unattributed redundancy
                result.mispredicts = 0
            return result

        _install_stub_simulation(monkeypatch, broken)
        documents = {}
        for label, extra in (("serial", []), ("parallel", ["--jobs", "2"])):
            cache_dir = tmp_path / label
            monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
            metrics = cache_dir / "telemetry.json"
            code = main(["sweep", "--benchmarks", "grep", "--limit", "14",
                         "--validate", "--metrics-out", str(metrics),
                         *extra])
            assert code == 4
            documents[label] = json.loads(
                metrics.read_text()
            )["validation"]
        capsys.readouterr()
        assert documents["serial"]["findings"]
        assert json.dumps(documents["serial"], sort_keys=True) == (
            json.dumps(documents["parallel"], sort_keys=True)
        )


# ----------------------------------------------------------------------
class TestRealSmokeRoundtrip:
    def test_grep_smoke_record_then_check(self, tmp_path, monkeypatch,
                                          grep_prepared, capsys):
        """End to end on real simulations: the 40-point grep smoke grid
        satisfies every invariant and dominance order, and a freshly
        recorded baseline re-checks clean."""
        import os

        from repro.harness.artifacts import default_artifact_root

        monkeypatch.setenv(
            "REPRO_ARTIFACT_DIR", os.path.abspath(default_artifact_root())
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        baseline = str(tmp_path / "smoke-grep.json")
        code = main(["validate", "--benchmarks", "grep", "--smoke",
                     "--record", "--baseline", baseline,
                     "--rel-tol", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out
        # Cache is warm now; the check replays from it.
        code = main(["validate", "--benchmarks", "grep", "--smoke",
                     "--check", "--baseline", baseline])
        assert code == 0
        assert "clean" in capsys.readouterr().out
