"""Simulation service tests: job model, scheduler, journal, HTTP API.

The contracts under test (see DESIGN.md "Service layer"):

* two consecutive identical submits -- the second completes entirely
  from the result cache (zero re-simulations, zero re-prepares) and the
  cache it leaves behind is byte-identical to a serial batch sweep of
  the same grid;
* admission control is typed: queue-full / job-too-large / scale
  -mismatch / stopped each carry a machine-readable reason and the HTTP
  status they map to;
* a daemon restart replays the journal -- finished jobs reappear for
  status queries, unfinished jobs re-queue and settle as cache hits
  instead of duplicating completed points;
* a point key is in flight at most once daemon-wide: a successor job
  subscribes to a cancelled job's outstanding points rather than
  re-dispatching them.

Most tests stub the simulation (same pattern as
test_parallel_backend.py) so a 3-point job resolves in milliseconds;
the serial-equivalence acceptance test runs the real pipeline on a
small grep slice.
"""

import json
import os
import threading
import time

import pytest

from repro.cli import main
from repro.harness.artifacts import default_artifact_root
from repro.harness.backend import SerialBackend
from repro.harness.runner import SweepRunner
from repro.service import (
    AdmissionError,
    GridSpec,
    JobJournal,
    JobScheduler,
    ServiceClient,
    SpecError,
    UnknownJobError,
    make_server,
)
from repro.service.client import AdmissionRejected, JobNotFound, ServiceError
from repro.service.jobs import TERMINAL_STATES
from repro.stats.results import SimResult
from repro.telemetry import MetricsCollector


def fake_result(config, benchmark="grep", cycles=1000):
    return SimResult(
        benchmark=benchmark,
        config=config,
        cycles=cycles,
        retired_nodes=4000,
        discarded_nodes=100,
        dynamic_blocks=800,
        mispredicts=10,
        branch_lookups=100,
        faults=2,
        loads=300,
        stores=200,
        cache_accesses=500,
        cache_misses=25,
        write_buffer_hits=40,
        issue_words=1000,
        issued_slots=4100,
        window_block_cycles=2400,
        window_samples=800,
        work_nodes=4000,
    )


@pytest.fixture
def stub_sim(monkeypatch):
    """Stub the simulation; returns a list recording every simulate call."""
    calls = []

    def stub(workload, config, collector=None, max_cycles=None, **kwargs):
        calls.append(config)
        return fake_result(config)

    monkeypatch.setattr(SweepRunner, "workload", lambda self, name: None)
    monkeypatch.setattr(SweepRunner, "prepare_artifacts",
                        lambda self, name: None)
    monkeypatch.setattr("repro.harness.runner.simulate", stub)
    return calls


def make_scheduler(tmp_path, monkeypatch, name="svc", **kwargs):
    """A scheduler over a tmp cache dir (not started)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / name))
    runner = SweepRunner(benchmarks=["grep"], collector=MetricsCollector())
    kwargs.setdefault("journal_path", str(tmp_path / name / "journal.jsonl"))
    return JobScheduler(runner, **kwargs)


def run_job(scheduler, spec, timeout_s=60.0):
    """Submit ``spec`` and long-poll until the job settles."""
    job_id = scheduler.submit(spec)["job_id"]
    return wait_job(scheduler, job_id, timeout_s)


def wait_job(scheduler, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    after = 0
    while time.monotonic() < deadline:
        events, snap = scheduler.wait_events(job_id, after=after,
                                             timeout_s=0.5)
        if events:
            after = events[-1]["seq"]
        if snap["state"] in TERMINAL_STATES:
            return scheduler.job(job_id)
    raise AssertionError(f"job {job_id} never settled")


# ----------------------------------------------------------------------
class TestGridSpec:
    def test_defaults_to_every_workload(self):
        from repro.workloads import WORKLOADS

        spec = GridSpec.from_dict({})
        assert spec.benchmarks == tuple(sorted(WORKLOADS))
        assert spec.grid == "smoke"

    @pytest.mark.parametrize("raw, fragment", [
        ([], "JSON object"),
        ({"grid": "nope"}, "unknown grid"),
        ({"benchmarks": []}, "non-empty"),
        ({"benchmarks": ["no-such-bench"]}, "unknown benchmarks"),
        ({"scale": 0}, "positive integer"),
        ({"scale": "big"}, "positive integer"),
        ({"limit": -1}, "positive integer"),
        ({"surprise": 1}, "unknown spec fields"),
    ])
    def test_rejects_malformed_specs(self, raw, fragment):
        with pytest.raises(SpecError, match=fragment):
            GridSpec.from_dict(raw)

    def test_points_are_benchmark_major_and_limited(self):
        spec = GridSpec.from_dict(
            {"benchmarks": ["grep", "sort"], "limit": 41}
        )
        points = spec.points(scale=1)
        assert len(points) == 41
        assert [p.benchmark for p in points] == ["grep"] * 40 + ["sort"]
        assert len({p.key for p in points}) == 41

    def test_digest_is_deterministic_and_order_insensitive(self):
        ab = GridSpec.from_dict({"benchmarks": ["grep", "sort"]})
        ba = GridSpec.from_dict({"benchmarks": ["sort", "grep"]})
        assert ab.digest(1) == ba.digest(1)  # same point set
        assert ab.digest(1) != ab.digest(2)  # scale is part of identity
        assert ab.digest(1) != GridSpec.from_dict(
            {"benchmarks": ["grep"]}
        ).digest(1)

    def test_roundtrips_through_to_dict(self):
        spec = GridSpec.from_dict(
            {"benchmarks": ["grep"], "grid": "full", "scale": 2, "limit": 7}
        )
        assert GridSpec.from_dict(spec.to_dict()) == spec


# ----------------------------------------------------------------------
class TestJobJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        journal.append({"event": "accept", "job_id": "a"})
        journal.append({"event": "state", "job_id": "a", "state": "done"})
        journal.close()
        records = JobJournal.replay(journal.path)
        assert [r["event"] for r in records] == ["accept", "state"]

    def test_replay_skips_truncated_and_foreign_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(str(path))
        journal.append({"event": "accept", "job_id": "a"})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"event": "x", "v": 999}) + "\n")
            handle.write('{"event": "state", "job_id": "a", "sta')  # crash
        records = JobJournal.replay(str(path))
        assert len(records) == 1 and records[0]["job_id"] == "a"

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert JobJournal.replay(str(tmp_path / "absent.jsonl")) == []

    def test_rewrite_compacts(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        for index in range(10):
            journal.append({"event": "state", "job_id": "a", "n": index})
        journal.rewrite([{"event": "accept", "job_id": "a"}])
        records = JobJournal.replay(journal.path)
        assert len(records) == 1 and records[0]["event"] == "accept"


# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_full_is_typed_429(self, tmp_path, monkeypatch, stub_sim):
        scheduler = make_scheduler(tmp_path, monkeypatch,
                                   max_queued_jobs=1)
        spec = GridSpec.from_dict({"benchmarks": ["grep"], "limit": 2})
        scheduler.submit(spec)  # not started: stays queued
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(spec)
        assert excinfo.value.reason == "queue-full"
        assert excinfo.value.http_status == 429
        assert excinfo.value.retry_after_s == 5.0
        assert scheduler.stats["jobs.rejected.queue-full"] == 1
        scheduler.stop(cancel_pending=True)

    def test_job_too_large_is_typed_429(self, tmp_path, monkeypatch,
                                        stub_sim):
        scheduler = make_scheduler(tmp_path, monkeypatch, max_job_points=2)
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(GridSpec.from_dict(
                {"benchmarks": ["grep"], "limit": 3}
            ))
        assert excinfo.value.reason == "job-too-large"
        assert excinfo.value.http_status == 429
        scheduler.stop()

    def test_scale_mismatch_is_typed_400(self, tmp_path, monkeypatch,
                                         stub_sim):
        scheduler = make_scheduler(tmp_path, monkeypatch)
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(GridSpec.from_dict(
                {"benchmarks": ["grep"],
                 "scale": scheduler.runner.scale + 1}
            ))
        assert excinfo.value.reason == "scale-mismatch"
        assert excinfo.value.http_status == 400
        scheduler.stop()

    def test_stopped_is_typed_503(self, tmp_path, monkeypatch, stub_sim):
        scheduler = make_scheduler(tmp_path, monkeypatch)
        scheduler.stop()
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(GridSpec.from_dict({"benchmarks": ["grep"]}))
        assert excinfo.value.reason == "stopped"
        assert excinfo.value.http_status == 503


# ----------------------------------------------------------------------
class TestScheduler:
    def test_second_identical_job_is_all_cache_hits(self, tmp_path,
                                                    monkeypatch, stub_sim):
        scheduler = make_scheduler(tmp_path, monkeypatch)
        scheduler.start()
        spec = GridSpec.from_dict({"benchmarks": ["grep"], "limit": 3})
        first = run_job(scheduler, spec)
        second = run_job(scheduler, spec)
        scheduler.stop()

        assert first["points"] == {"total": 3, "resolved": 3, "cached": 0,
                                   "fresh": 3, "failed": 0, "deduped": 0}
        assert second["points"] == {"total": 3, "resolved": 3, "cached": 3,
                                    "fresh": 0, "failed": 0, "deduped": 0}
        assert len(stub_sim) == 3  # the second job re-simulated nothing
        # Per-job telemetry counter deltas say the same thing.
        assert first["counters"]["sweep.cache.miss"] == 3
        assert "sweep.cache.miss" not in second["counters"]
        assert second["counters"]["sweep.cache.hit"] == 3
        # Deterministic identity: same grid -> same digest prefix.
        assert first["job_id"].split("-")[0] == second["job_id"].split("-")[0]
        assert first["job_id"] != second["job_id"]

    def test_results_carry_point_records(self, tmp_path, monkeypatch,
                                         stub_sim):
        scheduler = make_scheduler(tmp_path, monkeypatch)
        scheduler.start()
        job = run_job(scheduler, GridSpec.from_dict(
            {"benchmarks": ["grep"], "limit": 2}
        ))
        scheduler.stop()
        assert len(job["results"]) == 2
        for record in job["results"]:
            assert record["benchmark"] == "grep"
            assert record["status"] == "fresh"
            assert record["ipc"] > 0 and record["cycles"] == 1000

    def test_cancel_queued_job_settles_immediately(self, tmp_path,
                                                   monkeypatch, stub_sim):
        scheduler = make_scheduler(tmp_path, monkeypatch)  # not started
        job_id = scheduler.submit(GridSpec.from_dict(
            {"benchmarks": ["grep"], "limit": 2}
        ))["job_id"]
        snapshot = scheduler.cancel(job_id)
        assert snapshot["state"] == "cancelled"
        assert scheduler.stats["jobs.cancelled"] == 1
        # Cancelling a terminal job is a no-op, not an error.
        assert scheduler.cancel(job_id)["state"] == "cancelled"
        with pytest.raises(UnknownJobError):
            scheduler.cancel("no-such-job")
        scheduler.stop()

    def test_event_stream_is_ordered_and_truncation_safe(self, tmp_path,
                                                         monkeypatch,
                                                         stub_sim):
        scheduler = make_scheduler(tmp_path, monkeypatch)
        scheduler.start()
        job_id = scheduler.submit(GridSpec.from_dict(
            {"benchmarks": ["grep"], "limit": 2}
        ))["job_id"]
        wait_job(scheduler, job_id)
        events, _ = scheduler.wait_events(job_id, after=0, timeout_s=0.1)
        scheduler.stop()
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "job.queued"
        assert kinds[1] == "job.running"
        assert kinds.count("point") == 2
        assert kinds[-1] == "job.done"
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # ``after`` filters by seq, so a re-poll starts where we left off.
        tail, _ = scheduler.wait_events(job_id, after=seqs[-2],
                                        timeout_s=0.1)
        assert [event["seq"] for event in tail] == [seqs[-1]]


# ----------------------------------------------------------------------
class TestRestartReplay:
    def test_done_jobs_reappear_and_queued_jobs_resume_cached(
            self, tmp_path, monkeypatch, stub_sim):
        journal = str(tmp_path / "svc" / "journal.jsonl")
        spec = GridSpec.from_dict({"benchmarks": ["grep"], "limit": 3})

        first = make_scheduler(tmp_path, monkeypatch, journal_path=journal)
        first.start()
        done = run_job(first, spec)
        first.stop()
        assert len(stub_sim) == 3

        # Second daemon incarnation: accept a job, "crash" before
        # running it (never started; stop without cancelling).
        second = make_scheduler(tmp_path, monkeypatch, journal_path=journal)
        assert second.job(done["job_id"])["state"] == "done"
        pending_id = second.submit(spec)["job_id"]
        second.stop(cancel_pending=False)

        # Third incarnation replays the journal: the finished job is
        # visible with its counts, the pending one re-queues and
        # settles from the cache without re-simulating anything.
        third = make_scheduler(tmp_path, monkeypatch, journal_path=journal)
        restored = third.job(done["job_id"])
        assert restored["state"] == "done"
        assert restored["points"]["fresh"] == 3
        assert third.job(pending_id)["state"] == "queued"
        third.start()
        resumed = wait_job(third, pending_id)
        assert resumed["points"]["cached"] == 3
        assert resumed["points"]["fresh"] == 0
        assert len(stub_sim) == 3  # no duplicated work across restarts

        # Acceptance sequence numbers survive, so new ids stay unique.
        new_id = third.submit(spec)["job_id"]
        assert new_id.endswith("-0003")
        wait_job(third, new_id)
        third.stop()

    def test_recovery_compacts_the_journal(self, tmp_path, monkeypatch,
                                           stub_sim):
        journal = str(tmp_path / "svc" / "journal.jsonl")
        spec = GridSpec.from_dict({"benchmarks": ["grep"], "limit": 2})
        first = make_scheduler(tmp_path, monkeypatch, journal_path=journal)
        first.start()
        run_job(first, spec)
        first.stop()
        raw = JobJournal.replay(journal)
        # accept + running + done for one job.
        assert [r["event"] for r in raw] == ["accept", "state", "state"]

        second = make_scheduler(tmp_path, monkeypatch, journal_path=journal)
        second.stop()
        compacted = JobJournal.replay(journal)
        # The intermediate ``running`` line is compacted away.
        assert [r["event"] for r in compacted] == ["accept", "state"]
        assert compacted[1]["state"] == "done"


# ----------------------------------------------------------------------
class GatedBackend:
    """Wraps a SerialBackend: buffers dispatches, executes on finish().

    ``submit`` blocks (on ``gate``) once ``hold_after`` tasks are in,
    letting a test cancel the owning job and race a second one in while
    points are provably still in flight.
    """

    name = "gated"

    def __init__(self, runner, hold_after=2):
        self.inner = SerialBackend(runner)
        self.pending = []
        self.dispatched = []
        self.gate = threading.Event()
        self.hold_after = hold_after

    def submit(self, task):
        self.dispatched.append(task.key)
        self.pending.append(task)
        if len(self.dispatched) == self.hold_after:
            self.gate.wait(timeout=30.0)
        return iter(())

    def finish(self):
        pending, self.pending = self.pending, []
        for task in pending:
            for outcome in self.inner.submit(task):
                yield outcome

    def close(self):
        self.inner.close()


class TestInflightDedup:
    def test_successor_subscribes_to_cancelled_jobs_points(
            self, tmp_path, monkeypatch, stub_sim):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "svc"))
        runner = SweepRunner(benchmarks=["grep"],
                             collector=MetricsCollector())
        backend = GatedBackend(runner, hold_after=2)
        scheduler = JobScheduler(
            runner, backend=backend,
            journal_path=str(tmp_path / "svc" / "journal.jsonl"),
        )
        scheduler.start()
        spec = GridSpec.from_dict({"benchmarks": ["grep"], "limit": 2})
        first_id = scheduler.submit(spec)["job_id"]
        # Wait until both points are dispatched (the scheduler thread is
        # now parked inside the gate with both keys in flight).
        deadline = time.monotonic() + 30.0
        while len(backend.dispatched) < 2:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        scheduler.cancel(first_id)
        second_id = scheduler.submit(spec)["job_id"]
        backend.gate.set()

        second = wait_job(scheduler, second_id)
        first = scheduler.job(first_id)
        scheduler.stop()

        assert first["state"] == "cancelled"
        assert second["state"] == "done"
        # Every point reached the successor through subscription, not
        # re-dispatch: each key was dispatched exactly once daemon-wide.
        assert sorted(backend.dispatched) == sorted(set(backend.dispatched))
        assert len(backend.dispatched) == 2
        assert second["points"]["deduped"] == 2
        assert second["points"]["resolved"] == 2
        assert scheduler.stats["points.deduped"] == 2
        assert len(stub_sim) == 2


# ----------------------------------------------------------------------
@pytest.fixture
def http_service(tmp_path, monkeypatch, stub_sim):
    """A scheduler + HTTP server + client over a tmp cache dir."""
    scheduler = make_scheduler(tmp_path, monkeypatch, name="http")
    scheduler.start()
    server = make_server(scheduler, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout_s=30.0)
    try:
        yield scheduler, client
    finally:
        server.shutdown()
        server.server_close()
        scheduler.stop()
        thread.join(5.0)


class TestHTTPAPI:
    def test_submit_wait_and_cache_hits_over_http(self, http_service):
        scheduler, client = http_service
        assert client.health()["ok"] is True

        spec = {"benchmarks": ["grep"], "limit": 2}
        accepted = client.submit(spec)
        assert accepted["state"] in ("queued", "running", "done")
        seen = []
        final = client.wait(accepted["job_id"], poll_timeout_s=1.0,
                            deadline_s=60.0, on_event=seen.append)
        assert final["state"] == "done"
        assert final["points"]["fresh"] == 2
        kinds = [event["kind"] for event in seen]
        assert kinds[0] == "job.queued" and kinds[-1] == "job.done"

        warm = client.wait(client.submit(spec)["job_id"],
                           poll_timeout_s=1.0, deadline_s=60.0)
        assert warm["points"]["cached"] == 2

        listed = {job["job_id"] for job in client.jobs()}
        assert {accepted["job_id"], warm["job_id"]} <= listed
        metrics = client.metrics()
        assert metrics["counters"]["service.jobs.accepted"] == 2
        assert metrics["counters"]["sweep.cache.hit"] == 2

    def test_unknown_job_is_404(self, http_service):
        _, client = http_service
        with pytest.raises(JobNotFound):
            client.job("no-such-job")
        with pytest.raises(JobNotFound):
            client.cancel("no-such-job")

    def test_malformed_spec_is_400(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.submit({"grid": "nope"})
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.submit({"surprise": 1})

    def test_queue_full_surfaces_as_typed_rejection(self, http_service):
        scheduler, client = http_service
        scheduler.max_queued_jobs = 0
        try:
            with pytest.raises(AdmissionRejected) as excinfo:
                client.submit({"benchmarks": ["grep"], "limit": 1})
        finally:
            scheduler.max_queued_jobs = 8
        assert excinfo.value.reason == "queue-full"
        assert excinfo.value.retry_after_s == 5.0


# ----------------------------------------------------------------------
class TestServiceBatchEquivalence:
    """Acceptance: service results == serial batch sweep, byte for byte."""

    def test_service_cache_matches_serial_sweep(self, tmp_path, monkeypatch,
                                                grep_prepared, capsys):
        monkeypatch.setenv(
            "REPRO_ARTIFACT_DIR", os.path.abspath(default_artifact_root())
        )
        # Count workload preparations: the warm daemon must do none.
        import repro.harness.runner as runner_module

        real_prepared = runner_module.prepared
        prepare_calls = []

        def counting_prepared(workload, scale=1):
            prepare_calls.append(workload.name)
            return real_prepared(workload, scale)

        monkeypatch.setattr(runner_module, "prepared", counting_prepared)

        service_dir = tmp_path / "service"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(service_dir))
        runner = SweepRunner(benchmarks=["grep"],
                             collector=MetricsCollector())
        scheduler = JobScheduler(
            runner, journal_path=str(service_dir / "journal.jsonl")
        )
        scheduler.start()
        # ``sweep`` walks the full grid, so the service job must too for
        # the caches to be comparable.
        spec = GridSpec.from_dict(
            {"benchmarks": ["grep"], "grid": "full", "limit": 4}
        )
        cold = run_job(scheduler, spec)
        prepares_after_cold = len(prepare_calls)
        warm = run_job(scheduler, spec)
        scheduler.stop()

        assert cold["points"]["fresh"] == 4
        assert warm["points"]["cached"] == 4
        # Zero re-prepares and zero re-simulations on the warm submit.
        assert len(prepare_calls) == prepares_after_cold
        assert "sweep.cache.miss" not in warm["counters"]
        assert warm["counters"]["sweep.cache.hit"] == 4

        batch_dir = tmp_path / "batch"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(batch_dir))
        assert main(["sweep", "--benchmarks", "grep", "--limit", "4"]) == 0
        capsys.readouterr()

        service_cache = json.loads(
            (service_dir / "results.json").read_text()
        )
        batch_cache = json.loads((batch_dir / "results.json").read_text())
        assert len(service_cache) == 4
        assert json.dumps(service_cache, sort_keys=True) == json.dumps(
            batch_cache, sort_keys=True
        )
