"""ASCII chart renderer tests."""

from repro.harness.plot import ascii_chart


class TestAsciiChart:
    def test_contains_title_and_legend(self):
        chart = ascii_chart({"alpha": [1.0, 2.0]}, ["a", "b"], title="T")
        assert chart.startswith("T")
        assert "o=alpha" in chart

    def test_extremes_at_chart_edges(self):
        chart = ascii_chart({"s": [0.0, 10.0]}, ["lo", "hi"], height=5)
        rows = chart.splitlines()
        data_rows = [r for r in rows if "|" in r]
        assert "o" in data_rows[0]  # max value on the top row
        assert "o" in data_rows[-1]  # min value on the bottom row

    def test_hidden_series_skipped(self):
        chart = ascii_chart({"_meta": [1.0], "real": [1.0]}, ["x"])
        assert "_meta" not in chart

    def test_overlap_marked(self):
        chart = ascii_chart({"a": [1.0], "b": [1.0]}, ["x"], height=4)
        assert "+" in chart

    def test_empty_series(self):
        assert ascii_chart({}, ["x"], title="only") == "only"

    def test_constant_series_does_not_divide_by_zero(self):
        chart = ascii_chart({"flat": [2.0, 2.0, 2.0]}, ["a", "b", "c"])
        assert "flat" in chart

    def test_column_labels_present(self):
        chart = ascii_chart({"s": [1, 2]}, ["left", "right"])
        assert "left" in chart and "right" in chart
