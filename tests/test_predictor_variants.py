"""Tests for the ablation predictor family."""

import random

import pytest

from repro.machine.predictor import (
    BranchPredictor,
    FixedPredictor,
    GSharePredictor,
    OneBitPredictor,
    PREDICTOR_KINDS,
    StaticOnlyPredictor,
    make_predictor,
)


def drive(predictor, outcomes, label="b", hint=None):
    """Feed a sequence of outcomes; return prediction accuracy."""
    correct = 0
    for taken in outcomes:
        predicted = predictor.predict(label, hint)
        correct += predicted == taken
        predictor.update(label, taken, predicted)
    return correct / len(outcomes)


class TestFactory:
    @pytest.mark.parametrize("kind", PREDICTOR_KINDS)
    def test_all_kinds_construct(self, kind):
        predictor = make_predictor(kind, use_static_hints=True)
        predictor.predict("b", static_hint=True)
        predictor.update("b", True, True)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("oracle", True)

    def test_kind_classes(self):
        assert isinstance(make_predictor("onebit", True), OneBitPredictor)
        assert isinstance(make_predictor("static", True), StaticOnlyPredictor)
        assert isinstance(make_predictor("gshare", True), GSharePredictor)
        assert isinstance(make_predictor("taken", True), FixedPredictor)


class TestOneBit:
    def test_tracks_last_outcome(self):
        predictor = OneBitPredictor()
        predictor.update("b", True, False)
        assert predictor.predict("b") is True
        predictor.update("b", False, True)
        assert predictor.predict("b") is False

    def test_no_hysteresis(self):
        """1-bit mispredicts twice per loop exit; 2-bit only once."""
        pattern = ([True] * 9 + [False]) * 20
        one_bit = drive(OneBitPredictor(), pattern)
        two_bit = drive(BranchPredictor(), pattern)
        assert two_bit > one_bit


class TestFixed:
    def test_always_taken(self):
        predictor = FixedPredictor(True)
        assert drive(predictor, [True] * 10) == 1.0

    def test_always_nottaken_on_taken_stream(self):
        predictor = FixedPredictor(False)
        assert drive(predictor, [True] * 10) == 0.0

    def test_counts_mispredicts(self):
        predictor = FixedPredictor(True)
        drive(predictor, [False] * 5)
        assert predictor.mispredicts == 5


class TestStaticOnly:
    def test_follows_hint_forever(self):
        predictor = StaticOnlyPredictor()
        # Outcomes disagree with the hint; it never adapts.
        accuracy = drive(predictor, [False] * 10, hint=True)
        assert accuracy == 0.0

    def test_defaults_nottaken_without_hint(self):
        predictor = StaticOnlyPredictor()
        assert predictor.predict("b") is False


class TestGShare:
    def test_learns_alternating_pattern(self):
        """History-based prediction masters patterns a 2-bit counter
        cannot (the paper's better-prediction conjecture)."""
        pattern = [True, False] * 200
        gshare = drive(GSharePredictor(), pattern)
        twobit = drive(BranchPredictor(), pattern)
        assert gshare > 0.9
        assert gshare > twobit

    def test_learns_period_four_pattern(self):
        pattern = [True, True, False, False] * 150
        accuracy = drive(GSharePredictor(), pattern)
        assert accuracy > 0.85

    def test_history_isolated_per_instance(self):
        a = GSharePredictor()
        b = GSharePredictor()
        drive(a, [True] * 50)
        assert b.predict("b") is False

    def test_uses_hint_on_cold_entry(self):
        predictor = GSharePredictor(use_static_hints=True)
        assert predictor.predict("b", static_hint=True) is True


class TestComparativeAccuracy:
    def test_family_ordering_on_biased_random_stream(self):
        rng = random.Random(1234)
        outcomes = [rng.random() < 0.85 for _ in range(800)]
        results = {
            kind: drive(make_predictor(kind, True), list(outcomes), hint=True)
            for kind in PREDICTOR_KINDS
        }
        # Adaptive schemes beat always-not-taken on a taken-biased stream.
        assert results["twobit"] > results["nottaken"]
        assert results["onebit"] > results["nottaken"]
        # The hint matches the bias, so static-only is strong too.
        assert results["static"] > 0.8
        # Always-taken matches the bias by construction.
        assert results["taken"] == pytest.approx(0.85, abs=0.05)
