"""Property-based tests over the compiler, optimiser and enlargement.

Hypothesis generates random (but well-formed) Mini-C programs; the core
invariants are:

* the optimiser never changes a program's observable behaviour;
* basic block enlargement never changes a program's observable behaviour,
  for arbitrary planner thresholds;
* compiled arithmetic agrees with Python's (wrapped) arithmetic.
"""

from hypothesis import given, settings, strategies as st

from repro.enlarge import EnlargeConfig, enlarge_program
from repro.interp import run_program
from repro.isa.intmath import wrap32
from repro.lang import compile_source
from repro.profiles import build_profile

# ----------------------------------------------------------------------
# Random expression programs
# ----------------------------------------------------------------------
_BIN_OPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def arith_expr(draw, depth=0):
    """A random arithmetic expression over variables a, b, c."""
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["a", "b", "c", "lit"]))
        if leaf == "lit":
            return str(draw(st.integers(min_value=-1000, max_value=1000)))
        return leaf
    op = draw(st.sampled_from(_BIN_OPS))
    left = draw(arith_expr(depth=depth + 1))
    right = draw(arith_expr(depth=depth + 1))
    return f"({left} {op} {right})"


def eval_expr(expr, env):
    """Evaluate with 32-bit wrapping at every step."""
    token = expr.strip()
    if token.startswith("("):
        # Find the top-level operator.
        depth = 0
        for index in range(1, len(token) - 1):
            ch = token[index]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif depth == 0 and ch in "+-*&|^" and token[index - 1] == " ":
                left = eval_expr(token[1:index], env)
                right = eval_expr(token[index + 1:-1], env)
                ops = {
                    "+": left + right,
                    "-": left - right,
                    "*": left * right,
                    "&": left & right,
                    "|": left | right,
                    "^": left ^ right,
                }
                return wrap32(ops[ch])
        raise AssertionError(f"unparseable {token}")
    if token in env:
        return env[token]
    return wrap32(int(token))


@settings(max_examples=25, deadline=None)
@given(
    arith_expr(),
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=-100, max_value=100),
)
def test_compiled_arithmetic_matches_python(expr, a, b, c):
    source = f"""
    int main() {{
        int a = {a}; int b = {b}; int c = {c};
        int r = {expr};
        return r == {eval_expr(expr, dict(a=a, b=b, c=c))};
    }}
    """
    program = compile_source(source)
    assert run_program(program, inputs={0: b""}).exit_code == 1


@settings(max_examples=15, deadline=None)
@given(
    arith_expr(),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=1, max_value=20),
)
def test_optimizer_preserves_semantics(expr, start, count):
    source = f"""
    int main() {{
        int a = {start}; int b = 7; int c = -3;
        int s = 0;
        int i;
        for (i = 0; i < {count}; i++) {{
            s = s + ({expr});
            a = a + 1;
        }}
        return s & 65535;
    }}
    """
    optimized = run_program(compile_source(source, optimize=True), inputs={0: b""})
    raw = run_program(compile_source(source, optimize=False), inputs={0: b""})
    assert optimized.exit_code == raw.exit_code


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),   # loop count
    st.integers(min_value=2, max_value=9),    # branch modulus
    st.floats(min_value=0.3, max_value=0.95),  # arc ratio threshold
    st.integers(min_value=2, max_value=12),   # max blocks
)
def test_enlargement_preserves_semantics(count, modulus, ratio, max_blocks):
    source = f"""
    int total;
    int main() {{
        int i;
        for (i = 0; i < {count}; i++) {{
            if (i % {modulus}) total += i;
            else total -= 1;
        }}
        return total & 65535;
    }}
    """
    program = compile_source(source)
    baseline = run_program(program, inputs={0: b""})
    profile = build_profile(baseline.trace)
    config = EnlargeConfig(
        min_arc_ratio=ratio,
        min_cum_ratio=0.01,
        max_blocks=max_blocks,
        min_seed_count=1,
        min_arc_weight=1,
    )
    enlarged = enlarge_program(program, profile, config)
    result = run_program(enlarged, inputs={0: b""})
    assert result.exit_code == baseline.exit_code
    assert result.output == baseline.output


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=0, max_size=300))
def test_compress_roundtrip_against_oracle(data):
    """LZW benchmark agrees with its oracle on arbitrary byte streams."""
    from repro.workloads import COMPRESS

    program = COMPRESS.compile()
    inputs = {0: data}
    result = run_program(program, inputs=inputs)
    assert result.output == COMPRESS.reference(inputs)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.text(alphabet="abcxyz ", min_size=0, max_size=12),
                min_size=1, max_size=20))
def test_sort_agrees_with_oracle_on_random_lines(lines):
    from repro.workloads import SORT

    blob = ("\n".join(lines) + "\n").encode("latin-1")
    inputs = {0: blob}
    program = SORT.compile()
    result = run_program(program, inputs=inputs)
    assert result.output == SORT.reference(inputs)


# ----------------------------------------------------------------------
# Random structured programs through the full pipeline
# ----------------------------------------------------------------------
@st.composite
def loop_nest_program(draw):
    """A random but well-formed Mini-C program with loops and branches."""
    outer = draw(st.integers(min_value=1, max_value=12))
    inner = draw(st.integers(min_value=1, max_value=12))
    modulus = draw(st.integers(min_value=2, max_value=7))
    use_array = draw(st.booleans())
    body = (
        "data[(i * {inner} + j) % 32] += i ^ j;".format(inner=inner)
        if use_array else "s += i * j + 1;"
    )
    return f"""
    int data[32];
    int main() {{
        int s = 0;
        int i; int j;
        for (i = 0; i < {outer}; i++) {{
            for (j = 0; j < {inner}; j++) {{
                if ((i + j) % {modulus}) {{ {body} }}
                else s -= 1;
            }}
        }}
        int k;
        for (k = 0; k < 32; k++) s += data[k];
        return s & 65535;
    }}
    """


@settings(max_examples=10, deadline=None)
@given(loop_nest_program(), st.sampled_from([1, 2, 5, 8]),
       st.sampled_from(["A", "D", "C"]), st.sampled_from([1, 4, 256]))
def test_random_programs_simulate_consistently(source, issue, memory, window):
    """Full pipeline property: for arbitrary generated programs and
    configurations, both engines complete and satisfy the accounting
    identities (retired == functional retired; sane cycle bounds)."""
    from repro.machine import (
        BranchMode, Discipline, MachineConfig, simulate,
    )
    from repro.machine.simulator import prepare_workload

    program = compile_source(source)
    workload = prepare_workload("prop", program, {0: b""}, {0: b""})
    for discipline, mode in (
        (Discipline.DYNAMIC, BranchMode.SINGLE),
        (Discipline.DYNAMIC, BranchMode.ENLARGED),
        (Discipline.STATIC, BranchMode.SINGLE),
    ):
        config = MachineConfig(
            discipline=discipline,
            issue_model=issue,
            memory=memory,
            branch_mode=mode,
            window_blocks=window if discipline is Discipline.DYNAMIC else 1,
        )
        result = simulate(workload, config)
        trace = workload.trace_for(mode)
        assert result.retired_nodes == trace.retired_nodes
        assert result.cycles >= trace.retired_nodes / 16
        assert result.executed_nodes >= result.retired_nodes
