"""Memory-system and branch-predictor model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.cache import Cache, MemorySystem
from repro.machine.config import MEMORY_CONFIGS
from repro.machine.predictor import BranchPredictor


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache(1024)
        assert cache.access(0x2000) is False
        assert cache.access(0x2000) is True

    def test_same_line_hits(self):
        cache = Cache(1024)
        cache.access(0x2000)
        assert cache.access(0x200F) is True  # same 16-byte line
        assert cache.access(0x2010) is False  # next line

    def test_two_way_associativity(self):
        cache = Cache(1024)  # 32 sets -> lines 32 apart collide
        stride = 32 * 16
        cache.access(0x2000)
        cache.access(0x2000 + stride)
        # Both ways occupied; both still hit.
        assert cache.access(0x2000) is True
        assert cache.access(0x2000 + stride) is True

    def test_lru_eviction(self):
        cache = Cache(1024)
        stride = 32 * 16
        a, b, c = 0x2000, 0x2000 + stride, 0x2000 + 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU
        cache.access(c)  # evicts b (LRU)
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Cache(1000)

    def test_hit_rate_statistics(self):
        cache = Cache(1024)
        cache.access(0x2000)
        cache.access(0x2000)
        assert cache.accesses == 2
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    @given(st.lists(st.integers(min_value=0x1000, max_value=0x8000), max_size=60))
    def test_matches_reference_model(self, addresses):
        """The array-based cache agrees with a dict-based reference."""
        cache = Cache(1024)
        sets = 1024 // 32
        reference = {}  # set index -> [mru_line, lru_line]
        for address in addresses:
            line = address // 16
            index = line % sets
            ways = reference.setdefault(index, [])
            expected_hit = line in ways
            if expected_hit:
                ways.remove(line)
            ways.insert(0, line)
            del ways[2:]
            assert cache.access(address) == expected_hit


class TestMemorySystem:
    def test_perfect_memory_constant_latency(self):
        system = MemorySystem(MEMORY_CONFIGS["C"])
        for address in (0x2000, 0x9999, 0x2000):
            assert system.load_latency(address) == 3

    def test_cached_memory_miss_then_hit(self):
        system = MemorySystem(MEMORY_CONFIGS["D"])
        assert system.load_latency(0x4000) == 10
        assert system.load_latency(0x4000) == 1

    def test_write_buffer_makes_loads_hit(self):
        system = MemorySystem(MEMORY_CONFIGS["D"])
        system.store_access(0x7000)
        assert system.load_latency(0x7000) == 1

    def test_write_buffer_capacity(self):
        system = MemorySystem(MEMORY_CONFIGS["D"], write_buffer_lines=2)
        system.store_access(0x7000)
        system.store_access(0x8000)
        system.store_access(0x9000)  # evicts the 0x7000 line
        assert 0x7000 // 16 not in system._wb_lines

    def test_statistics(self):
        system = MemorySystem(MEMORY_CONFIGS["E"])
        system.load_latency(0x4000)
        system.store_access(0x4000)
        assert system.load_count == 1
        assert system.store_count == 1


class TestBranchPredictor:
    def test_default_prediction_not_taken(self):
        predictor = BranchPredictor()
        assert predictor.predict("b1") is False

    def test_static_hint_used_on_miss(self):
        predictor = BranchPredictor(use_static_hints=True)
        assert predictor.predict("b1", static_hint=True) is True

    def test_static_hint_ignored_when_disabled(self):
        predictor = BranchPredictor(use_static_hints=False)
        assert predictor.predict("b1", static_hint=True) is False

    def test_counter_warms_up(self):
        predictor = BranchPredictor()
        predicted = predictor.predict("b1")
        predictor.update("b1", True, predicted)  # allocates weakly taken
        assert predictor.predict("b1") is True

    def test_two_bit_hysteresis(self):
        predictor = BranchPredictor()
        for _ in range(3):
            predictor.update("b1", True, predictor.predict("b1"))
        # Strongly taken now; one not-taken shouldn't flip it.
        predictor.update("b1", False, predictor.predict("b1"))
        assert predictor.predict("b1") is True
        predictor.update("b1", False, predictor.predict("b1"))
        assert predictor.predict("b1") is False

    def test_counter_saturates(self):
        predictor = BranchPredictor()
        for _ in range(10):
            predictor.update("b1", True, True)
        predictor.update("b1", False, True)
        predictor.update("b1", False, True)
        assert predictor.predict("b1") is False

    def test_collision_evicts(self):
        predictor = BranchPredictor(entries=1)
        predictor.update("b1", True, False)
        assert predictor.predict("b1") is True
        predictor.update("b2", False, False)  # evicts b1's entry
        # b1 now misses the BTB and falls back to the default.
        assert predictor.predict("b1") is False

    def test_mispredict_accounting(self):
        predictor = BranchPredictor()
        predicted = predictor.predict("b1")
        predictor.update("b1", not predicted, predicted)
        assert predictor.mispredicts == 1
        assert predictor.lookups == 1
        assert predictor.accuracy == 0.0

    def test_peek_does_not_count(self):
        predictor = BranchPredictor()
        predictor.peek("b1")
        assert predictor.lookups == 0

    def test_alternating_pattern_estimate(self):
        """A strictly alternating branch defeats a 2-bit counter."""
        predictor = BranchPredictor()
        correct = 0
        taken = True
        for _ in range(100):
            predicted = predictor.predict("b1")
            correct += predicted == taken
            predictor.update("b1", taken, predicted)
            taken = not taken
        assert correct <= 55  # near-chance accuracy
