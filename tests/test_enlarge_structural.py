"""Structural validation of enlarged programs across the full suite.

These run over every benchmark's prepared (profile-enlarged) program and
check the invariants the builder promises, independent of behaviour
(which prepare_workload already asserts).
"""

import pytest

from repro.isa.ops import NodeKind
from repro.program.cfg import predecessors, unreachable_labels
from repro.workloads import WORKLOADS, prepared


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def bundle(request):
    workload = prepared(WORKLOADS[request.param])
    return workload.single, workload.enlarged


class TestProgramIntegrity:
    def test_enlarged_program_validates(self, bundle):
        _, enlarged = bundle
        enlarged.validate()  # labels resolve, terminators present

    def test_no_unreachable_blocks(self, bundle):
        _, enlarged = bundle
        assert unreachable_labels(enlarged) == set()

    def test_entry_preserved(self, bundle):
        single, enlarged = bundle
        assert enlarged.entry == single.entry

    def test_data_segment_untouched(self, bundle):
        single, enlarged = bundle
        assert enlarged.data == single.data
        assert enlarged.data_size == single.data_size


class TestEnlargedBlocks:
    def test_origin_matches_content_scale(self, bundle):
        single, enlarged = bundle
        for block in enlarged:
            if not block.origin:
                continue
            # The merged block holds at most the sum of its constituents
            # (re-optimisation only removes nodes, never adds).
            limit = sum(
                single.block(label).datapath_size
                for label in block.origin
                if label in single
            ) + len(block.origin)  # + assert conversions
            assert block.datapath_size <= limit

    def test_assert_count_bounded_by_origin(self, bundle):
        _, enlarged = bundle
        for block in enlarged:
            if not block.origin:
                continue
            asserts = len(block.assert_indices())
            assert asserts <= len(block.origin) - 1

    def test_fault_targets_are_original_labels(self, bundle):
        single, enlarged = bundle
        for block in enlarged:
            for index in block.assert_indices():
                target = block.body[index].target
                assert target in single.blocks
                # Fault recovery must re-enter the ORIGINAL code, whose
                # block still exists in the enlarged program.
                assert target in enlarged.blocks

    def test_only_original_entries_are_fault_targets(self, bundle):
        _, enlarged = bundle
        for block in enlarged:
            for index in block.assert_indices():
                target_block = enlarged.block(block.body[index].target)
                assert not target_block.origin

    def test_asserts_only_in_enlarged_blocks(self, bundle):
        _, enlarged = bundle
        for block in enlarged:
            if block.origin:
                continue
            assert block.assert_indices() == ()


class TestRetargeting:
    def test_canonical_entries_have_predecessors(self, bundle):
        """Every enlarged block is reachable through ordinary control
        transfers (fault edges alone would mean dead weight)."""
        _, enlarged = bundle
        preds = predecessors(enlarged)
        entry = enlarged.entry
        for block in enlarged:
            if block.origin and block.label != entry:
                assert preds[block.label], block.label

    def test_calls_target_function_entries(self, bundle):
        single, enlarged = bundle
        # Call linkage: every CALL's return link must exist; RET blocks
        # rely on the link stack, so links must never dangle.
        for block in enlarged:
            term = block.terminator
            if term.kind is NodeKind.CALL:
                assert term.target in enlarged.blocks
                assert term.alt_target in enlarged.blocks

    def test_syscall_continuations_exist(self, bundle):
        _, enlarged = bundle
        for block in enlarged:
            term = block.terminator
            if term.kind is NodeKind.SYSCALL and term.target is not None:
                assert term.target in enlarged.blocks


class TestReoptimizationEffect:
    def test_reoptimized_blocks_not_larger_than_concatenation(self, bundle):
        single, enlarged = bundle
        savings = 0
        merged_nodes = 0
        for block in enlarged:
            if not block.origin:
                continue
            raw = sum(
                single.block(label).datapath_size
                for label in block.origin
                if label in single
            )
            merged_nodes += block.datapath_size
            savings += max(0, raw - block.datapath_size)
        if merged_nodes:
            # Across a whole benchmark, merging + re-optimisation should
            # save at least a handful of nodes somewhere.
            assert savings >= 0
