"""Fill-unit (run-time enlargement) tests."""

import pytest

from repro.enlarge import (
    FillUnitConfig,
    fill_unit_enlarge,
    plan_from_trace,
)
from repro.enlarge.fill_unit import _segment_stream
from repro.interp import run_program
from repro.lang import compile_source

HOT_LOOP = """
int total;

int main() {
    int i;
    for (i = 0; i < 300; i++) {
        if (i % 16 == 0) total += 3;
        else total += 1;
    }
    return total;
}
"""


@pytest.fixture(scope="module")
def hot_loop():
    program = compile_source(HOT_LOOP)
    result = run_program(program, inputs={0: b""})
    return program, result


class TestSegmentation:
    def test_segments_respect_block_cap(self, hot_loop):
        program, result = hot_loop
        config = FillUnitConfig(max_blocks=3)
        counts = _segment_stream(program, result.trace, config)
        assert counts
        for segment in counts:
            assert len(segment) <= 3

    def test_segments_respect_node_cap(self, hot_loop):
        program, result = hot_loop
        config = FillUnitConfig(max_nodes=10)
        counts = _segment_stream(program, result.trace, config)
        for segment in counts:
            total = sum(program.block(l).datapath_size for l in segment)
            # A single oversized block may stand alone; composed segments
            # must respect the cap.
            if len(segment) > 1:
                assert total <= 10 + max(
                    program.block(l).datapath_size for l in segment
                )

    def test_segments_stop_at_call_boundaries(self, hot_loop):
        from repro.isa.ops import NodeKind

        program, result = hot_loop
        counts = _segment_stream(program, result.trace, FillUnitConfig())
        for segment in counts:
            for label in segment[:-1]:
                term = program.block(label).terminator
                assert term.kind in (NodeKind.BRANCH, NodeKind.JUMP)

    def test_table_capacity_bounds_tracking(self, hot_loop):
        program, result = hot_loop
        config = FillUnitConfig(table_size=2)
        counts = _segment_stream(program, result.trace, config)
        assert len(counts) <= 2


class TestPlanning:
    def test_hot_segments_become_units(self, hot_loop):
        program, result = hot_loop
        plan = plan_from_trace(program, result.trace)
        assert plan.sequences
        for sequence in plan.sequences:
            assert len(sequence) >= 2

    def test_cold_threshold_filters(self, hot_loop):
        program, result = hot_loop
        config = FillUnitConfig(min_occurrences=10**9)
        plan = plan_from_trace(program, result.trace, config)
        assert plan.sequences == []

    def test_instance_cap(self, hot_loop):
        program, result = hot_loop
        config = FillUnitConfig(max_instances=1)
        plan = plan_from_trace(program, result.trace, config)
        for count in plan.instance_counts().values():
            assert count <= 1

    def test_one_canonical_unit_per_seed(self, hot_loop):
        program, result = hot_loop
        plan = plan_from_trace(program, result.trace)
        seeds = [seq[0] for seq in plan.sequences]
        assert len(seeds) == len(set(seeds))


class TestSemantics:
    def test_behaviour_preserved(self, hot_loop):
        program, result = hot_loop
        enlarged = fill_unit_enlarge(program, result.trace)
        again = run_program(enlarged, inputs={0: b""})
        assert again.exit_code == result.exit_code
        assert again.output == result.output

    def test_behaviour_preserved_on_grep(self, grep_prepared):
        """Observe grep's eval trace, enlarge, re-run: same output."""
        program = grep_prepared.single
        from repro.workloads import WORKLOADS

        inputs = WORKLOADS["grep"].make_inputs("eval")
        enlarged = fill_unit_enlarge(program, grep_prepared.single_trace)
        result = run_program(enlarged, inputs=inputs)
        reference = run_program(program, inputs=inputs)
        assert result.output == reference.output

    def test_units_raise_mean_block_size(self, hot_loop):
        program, result = hot_loop
        enlarged = fill_unit_enlarge(program, result.trace)
        again = run_program(enlarged, inputs={0: b""})
        trace = again.trace
        faults = sum(1 for f in trace.fault_indices if f >= 0)
        mean_enlarged = trace.retired_nodes / (len(trace) - faults)
        mean_single = result.trace.retired_nodes / len(result.trace)
        assert mean_enlarged > mean_single
