"""Profiling and basic block enlargement tests."""

import pytest

from repro.enlarge import (
    EnlargeConfig,
    EnlargementError,
    apply_plan,
    enlarge_program,
    plan_enlargement,
)
from repro.enlarge.plan import EnlargementPlan
from repro.interp import run_program
from repro.isa.ops import NodeKind
from repro.lang import compile_source
from repro.profiles import annotate_static_hints, build_profile

LOOPY_SOURCE = """
int total;

int main() {
    int i;
    for (i = 0; i < 200; i++) {
        if (i % 10 == 0) total += 2;
        else total += 1;
    }
    return total;
}
"""


@pytest.fixture(scope="module")
def loopy():
    program = compile_source(LOOPY_SOURCE)
    result = run_program(program, inputs={0: b""})
    profile = build_profile(result.trace)
    return program, result, profile


class TestProfile:
    def test_block_counts_sum_to_trace_length(self, loopy):
        _, result, profile = loopy
        assert sum(profile.block_counts.values()) == len(result.trace)

    def test_arc_counts_sum(self, loopy):
        _, result, profile = loopy
        assert sum(profile.arc_counts.values()) == len(result.trace) - 1

    def test_branch_outcome_totals(self, loopy):
        program, _, profile = loopy
        for label, (not_taken, taken) in profile.branch_outcomes.items():
            assert label in program.blocks
            assert not_taken + taken == profile.block_counts[label]

    def test_loop_branch_is_strongly_biased(self, loopy):
        program, _, profile = loopy
        fractions = [
            profile.taken_fraction(label)
            for label in profile.branch_outcomes
        ]
        # The 200-iteration loop branch must be heavily one-sided.
        assert any(f > 0.95 or f < 0.05 for f in fractions)

    def test_static_hints_annotation(self, loopy):
        program, _, profile = loopy
        hinted = annotate_static_hints(program, profile)
        hints = [
            hinted.block(label).terminator.expect_taken
            for label in hinted.conditional_branch_labels()
        ]
        assert all(h is not None for h in hints)

    def test_hints_match_majority(self, loopy):
        program, _, profile = loopy
        hinted = annotate_static_hints(program, profile)
        for label in hinted.conditional_branch_labels():
            if label not in profile.branch_outcomes:
                continue
            hint = hinted.block(label).terminator.expect_taken
            assert hint == profile.majority_taken(label)


class TestPlanner:
    def test_plan_produces_sequences(self, loopy):
        program, _, profile = loopy
        plan = plan_enlargement(program, profile)
        assert plan.sequences
        for sequence in plan.sequences:
            assert len(sequence) >= 2
            for label in sequence:
                assert label in program.blocks

    def test_instance_cap_respected(self, loopy):
        program, _, profile = loopy
        config = EnlargeConfig(max_instances=3)
        plan = plan_enlargement(program, profile, config)
        for count in plan.instance_counts().values():
            assert count <= 3

    def test_max_blocks_respected(self, loopy):
        program, _, profile = loopy
        config = EnlargeConfig(max_blocks=2)
        plan = plan_enlargement(program, profile, config)
        assert all(len(seq) <= 2 for seq in plan.sequences)

    def test_node_limit_respected(self, loopy):
        program, _, profile = loopy
        config = EnlargeConfig(max_nodes=20)
        plan = plan_enlargement(program, profile, config)
        for sequence in plan.sequences:
            total = sum(program.block(l).datapath_size for l in sequence)
            assert total <= 20

    def test_high_ratio_threshold_blocks_unbiased_merges(self, loopy):
        program, _, profile = loopy
        strict = EnlargeConfig(min_arc_ratio=0.999, min_seed_count=1)
        plan = plan_enlargement(program, profile, strict)
        # Only jump arcs (ratio 1.0) survive such a threshold.
        for sequence in plan.sequences:
            for a, b in zip(sequence, sequence[1:]):
                term = program.block(a).terminator
                if term.kind is NodeKind.BRANCH:
                    pytest.fail("branch arc merged despite 0.999 threshold")

    def test_seed_threshold(self, loopy):
        program, _, profile = loopy
        config = EnlargeConfig(min_seed_count=10**9)
        plan = plan_enlargement(program, profile, config)
        assert plan.sequences == []


class TestBuilder:
    def test_asserts_replace_interior_branches(self, loopy):
        program, _, profile = loopy
        plan = plan_enlargement(program, profile)
        enlarged = apply_plan(program, plan, reoptimize=False)
        for sequence, label in zip(plan.sequences,
                                   [plan.entry_map[s[0]] for s in plan.sequences]):
            block = enlarged.block(label)
            interior_branches = sum(
                1 for a in sequence[:-1]
                if program.block(a).terminator.kind is NodeKind.BRANCH
            )
            assert len(block.assert_indices()) == interior_branches
            assert block.origin == tuple(sequence)

    def test_fault_targets_are_original_seed(self, loopy):
        program, _, profile = loopy
        plan = plan_enlargement(program, profile)
        enlarged = apply_plan(program, plan, reoptimize=False)
        for sequence in plan.sequences:
            label = plan.entry_map[sequence[0]]
            block = enlarged.block(label)
            for index in block.assert_indices():
                assert block.body[index].target == sequence[0]

    def test_semantics_preserved(self, loopy):
        program, result, profile = loopy
        enlarged = enlarge_program(program, profile)
        enlarged_result = run_program(enlarged, inputs={0: b""})
        assert enlarged_result.exit_code == result.exit_code
        assert enlarged_result.output == result.output

    def test_semantics_preserved_under_aggressive_config(self, loopy):
        program, result, profile = loopy
        config = EnlargeConfig(
            min_arc_ratio=0.5, min_cum_ratio=0.01, max_blocks=32,
            max_nodes=400, min_seed_count=1, min_arc_weight=1,
        )
        enlarged = enlarge_program(program, profile, config)
        enlarged_result = run_program(enlarged, inputs={0: b""})
        assert enlarged_result.exit_code == result.exit_code

    def test_enlarged_blocks_are_bigger(self, loopy):
        program, _, profile = loopy
        plan = plan_enlargement(program, profile)
        enlarged = apply_plan(program, plan)
        for sequence in plan.sequences:
            label = plan.entry_map[sequence[0]]
            if label not in enlarged.blocks:
                continue  # may have been pruned as unreachable
            seed_size = program.block(sequence[0]).datapath_size
            assert enlarged.block(label).datapath_size > seed_size

    def test_reoptimization_removes_nodes(self, loopy):
        program, _, profile = loopy
        plan = plan_enlargement(program, profile)
        raw = apply_plan(program, plan, reoptimize=False)
        optimized = apply_plan(program, plan, reoptimize=True)
        for sequence in plan.sequences:
            label = plan.entry_map[sequence[0]]
            if label in optimized.blocks and label in raw.blocks:
                assert len(optimized.block(label)) <= len(raw.block(label))

    def test_bad_sequence_rejected(self, loopy):
        program, _, profile = loopy
        labels = list(program.blocks)
        # Craft a sequence that does not follow control flow.
        bogus = EnlargementPlan(
            sequences=[[labels[0], labels[0]]],
            entry_map={labels[0]: "E$bogus$0"},
        )
        term = program.block(labels[0]).terminator
        if term.kind in (NodeKind.BRANCH, NodeKind.JUMP) and labels[0] in (
            term.target, term.alt_target
        ):
            pytest.skip("first block happens to loop on itself")
        with pytest.raises(EnlargementError):
            apply_plan(program, bogus)


class TestEnlargementOnWorkloads:
    """Output equality single vs enlarged on the real benchmark suite
    is asserted inside prepare_workload; exercise it via grep."""

    def test_grep_prepared(self, grep_prepared):
        workload = grep_prepared
        assert workload.single_trace.retired_nodes > 0
        assert workload.enlarged_trace.retired_nodes > 0
        enlarged_blocks = [b for b in workload.enlarged if b.origin]
        assert enlarged_blocks, "no enlarged blocks were created for grep"

    def test_enlargement_flattens_histogram(self, grep_prepared):
        from repro.harness.figures import dynamic_block_histogram

        workload = grep_prepared
        single = dynamic_block_histogram(
            workload.single_trace, workload.templates_single
        )
        enlarged = dynamic_block_histogram(
            workload.enlarged_trace, workload.templates_enlarged
        )

        def mean(counter):
            total = sum(counter.values())
            return sum(size * count for size, count in counter.items()) / total

        assert mean(enlarged) > mean(single)
