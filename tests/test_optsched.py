"""Exact-scheduler tests: certificates, modulo pipelining, wiring.

Covers the repro.optsched subsystem end to end: the constraint model's
lower bounds, the branch-and-bound solver's optimality certificate
(``makespan == lower_bound`` on closed blocks) and never-worse-than-list
guarantee, modulo scheduling of self-loop blocks, the schedule memo
store, the ``optimal_schedule`` configuration axis (validation, cache
keys, grid, dominance rule), and the shared latency table both
schedulers consume.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import AluOp, Imm, Reg, alu, branch, load, movi, ret, store
from repro.isa.ops import NodeKind
from repro.machine.config import (
    BranchMode,
    Discipline,
    ISSUE_MODELS,
    MEMORY_CONFIGS,
    MachineConfig,
    sched_configuration_space,
)
from repro.optsched import (
    ScheduleProblem,
    ScheduleStore,
    analyze_program,
    carried_edges,
    is_innermost_loop,
    optimal_schedule_program,
    pipeline_loop,
    schedule_key,
    solve_block,
)
from repro.program import BasicBlock
from repro.sched import (
    BASE_LATENCIES,
    build_dependences,
    latency_table,
    node_latency,
    schedule_block,
)

ISSUE8 = ISSUE_MODELS[8]
ISSUE5 = ISSUE_MODELS[5]
ISSUE2 = ISSUE_MODELS[2]
SEQ = ISSUE_MODELS[1]
MEM_A = MEMORY_CONFIGS["A"]
MEM_C = MEMORY_CONFIGS["C"]


def block(body, term=None, label="blk"):
    return BasicBlock(label, body, term or ret())


def placement_of(words):
    return {index: cycle for cycle, word in enumerate(words)
            for index in word}


# ----------------------------------------------------------------------
class TestLatencyTable:
    """Satellite: one latency table feeds both schedulers."""

    def test_table_covers_every_node_kind(self):
        assert set(BASE_LATENCIES) == set(NodeKind)
        for memory in (MEM_A, MEM_C):
            assert set(latency_table(memory)) == set(NodeKind)

    def test_load_latency_tracks_memory(self):
        assert node_latency(NodeKind.LOAD, MEM_A) == MEM_A.hit_cycles
        assert node_latency(NodeKind.LOAD, MEM_C) == MEM_C.hit_cycles
        assert latency_table(MEM_C)[NodeKind.LOAD] == MEM_C.hit_cycles

    def test_schedulers_share_the_relation(self):
        # The solver's flow-edge latencies come from build_dependences,
        # which reads the same table as the list scheduler: a load
        # consumer is separated by exactly hit_cycles in both schedules.
        body = [load(1, 10, 0), alu(AluOp.ADD, 2, Reg(1), Imm(1))]
        for memory in (MEM_A, MEM_C):
            listed = schedule_block(block(body), ISSUE8, memory)
            solved = solve_block(block(body), ISSUE8, memory)
            for words in (listed.words, solved.schedule.words):
                cycles = placement_of(words)
                assert cycles[1] - cycles[0] == memory.hit_cycles


# ----------------------------------------------------------------------
class TestSolver:
    def test_closed_block_certifies_makespan(self):
        solution = solve_block(
            block([movi(1, 1), movi(2, 2), alu(AluOp.ADD, 3, Reg(1), Reg(2))]),
            ISSUE8, MEM_A,
        )
        assert solution.closed
        assert solution.makespan == solution.lower_bound
        assert solution.makespan <= solution.list_makespan

    def test_every_node_scheduled_exactly_once(self):
        body = [movi(i + 1, i) for i in range(10)]
        solution = solve_block(block(body), ISSUE5, MEM_A)
        seen = sorted(i for word in solution.schedule.words for i in word)
        assert seen == list(range(len(body) + 1))  # + terminator

    def test_terminator_can_share_the_last_word(self):
        # The list scheduler's ready-set snapshot forces the terminator
        # one cycle late; the exact solver recovers that cycle.
        solution = solve_block(block([movi(1, 1), movi(2, 2)]), ISSUE8, MEM_A)
        assert solution.list_makespan == 2
        assert solution.makespan == 1
        assert solution.closed

    def test_words_keep_program_order(self):
        body = [movi(i + 1, i) for i in range(6)]
        solution = solve_block(block(body), ISSUE8, MEM_A)
        for word in solution.schedule.words:
            assert word == sorted(word)

    def test_slot_capacity_respected(self):
        body = [load(i + 1, 10, 8 * i) for i in range(8)]
        solution = solve_block(block(body), ISSUE5, MEM_A)
        for word in solution.schedule.words:
            mems = sum(1 for i in word if i < 8)
            assert mems <= ISSUE5.mem_slots

    def test_sequential_model_is_one_node_per_word(self):
        body = [movi(1, 1), movi(2, 2), movi(3, 3)]
        solution = solve_block(block(body), SEQ, MEM_A)
        assert all(len(word) <= 1 for word in solution.schedule.words)
        assert solution.makespan == len(body) + 1  # resource bound, closed
        assert solution.closed

    def test_budget_exhaustion_falls_back_to_list(self):
        blk = block([movi(1, 1), movi(2, 2)])
        solution = solve_block(blk, ISSUE8, MEM_A, budget_steps=0)
        assert not solution.closed
        assert solution.makespan == solution.list_makespan
        listed = schedule_block(blk, ISSUE8, MEM_A)
        assert solution.schedule.words == listed.words
        assert solution.lower_bound < solution.makespan

    def test_mem_rank_preserved(self):
        body = [movi(1, 1), load(2, 10, 0), store(Reg(2), 10, 4)]
        solution = solve_block(block(body), ISSUE5, MEM_A)
        listed = schedule_block(block(body), ISSUE5, MEM_A)
        assert solution.schedule.mem_rank == listed.mem_rank

    def test_lower_bounds(self):
        # Critical path: movi -> add -> add chain of latency-1 edges.
        chain = ScheduleProblem(
            list(block([
                movi(1, 1),
                alu(AluOp.ADD, 2, Reg(1), Imm(1)),
                alu(AluOp.ADD, 3, Reg(2), Imm(1)),
            ]).nodes()),
            ISSUE8, MEM_A,
        )
        # Chain occupies cycles 0..2; the terminator shares the last
        # cycle through its latency-0 ordering edges.
        assert chain.critical_path_bound() == 3
        # Resource: 8 independent loads through 2 memory slots.
        wide = ScheduleProblem(
            list(block([load(i + 1, 10, 8 * i) for i in range(8)]).nodes()),
            ISSUE5, MEM_A,
        )
        assert wide.resource_bound() == 4

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),
                st.integers(min_value=1, max_value=5),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1, max_size=14,
        ),
        st.sampled_from([1, 2, 5, 8]),
    )
    def test_random_blocks_never_beat_certificates(self, spec, issue_index):
        """Property: solved <= list, closed => makespan == bound."""
        ops = [AluOp.ADD, AluOp.SUB, AluOp.XOR]
        body = [alu(ops[op], dest, Reg(src), Imm(3))
                for dest, src, op in spec]
        issue = ISSUE_MODELS[issue_index]
        solution = solve_block(block(body), issue, MEM_A)
        assert solution.makespan <= solution.list_makespan
        assert solution.lower_bound <= solution.makespan
        assert solution.closed
        assert solution.makespan == solution.lower_bound
        seen = sorted(i for word in solution.schedule.words for i in word)
        assert seen == list(range(len(body) + 1))


# ----------------------------------------------------------------------
class TestModulo:
    def loop_block(self, body):
        return BasicBlock("L", body, branch(1, "L", "exit"))

    def test_self_loop_detection(self):
        assert is_innermost_loop(self.loop_block([movi(1, 1)]))
        assert not is_innermost_loop(
            BasicBlock("L", [movi(1, 1)], branch(1, "other", "exit"))
        )
        assert not is_innermost_loop(block([movi(1, 1)]))

    def test_carried_flow_edge_found(self):
        # r2 = r2 + 1 every iteration: last writer feeds next iteration.
        blk = self.loop_block([alu(AluOp.ADD, 2, Reg(2), Imm(1))])
        edges = carried_edges(blk, MEM_A)
        assert any(source == 0 and target == 0 and lat == 1
                   for source, target, lat in edges)

    def test_recurrence_bounds_ii(self):
        # Two-node dependent chain through r2, carried: RecMII = 2.
        blk = self.loop_block([
            alu(AluOp.ADD, 2, Reg(2), Imm(1)),
            alu(AluOp.ADD, 2, Reg(2), Imm(1)),
        ])
        result = pipeline_loop(blk, ISSUE8, MEM_A)
        assert result.rec_mii >= 2
        assert result.ii >= result.mii

    def test_ii_between_mii_and_serial(self):
        body = [load(2, 10, 0), alu(AluOp.ADD, 3, Reg(2), Imm(1)),
                store(Reg(3), 10, 0), alu(AluOp.ADD, 1, Reg(1), Imm(-1))]
        result = pipeline_loop(self.loop_block(body), ISSUE5, MEM_C)
        assert result.mii <= result.ii <= result.list_makespan
        if result.closed:
            assert result.ii == result.mii

    def test_resource_limited_loop(self):
        # Four independent loads through one memory slot: ResMII = 4.
        body = [load(i + 2, 10 + i, 0) for i in range(4)]
        result = pipeline_loop(self.loop_block(body), ISSUE2, MEM_A)
        assert result.res_mii == 4
        assert result.ii == 4
        assert result.closed

    def test_independent_iterations_pipeline_fully(self):
        # No loop-carried data dependence except the trip counter: the
        # kernel should reach an II well below the serial makespan.
        body = [load(2, 10, 0), alu(AluOp.ADD, 3, Reg(2), Imm(1)),
                alu(AluOp.ADD, 4, Reg(3), Imm(1)),
                alu(AluOp.ADD, 5, Reg(4), Imm(1)),
                alu(AluOp.ADD, 1, Reg(1), Imm(-1))]
        result = pipeline_loop(self.loop_block(body), ISSUE8, MEM_C)
        assert result.pipelined
        assert result.ii < result.list_makespan


# ----------------------------------------------------------------------
class TestScheduleStore:
    def test_round_trip(self, tmp_path):
        store_obj = ScheduleStore(root=str(tmp_path))
        nodes = list(block([movi(1, 1)]).nodes())
        key = schedule_key(nodes, ISSUE5, MEM_A)
        assert store_obj.load(key) is None
        store_obj.save(key, [[0, 1]], 2, 1, 1, True, 7)
        entry = store_obj.load(key)
        assert entry == {
            "words": [[0, 1]], "list_makespan": 2, "makespan": 1,
            "lower_bound": 1, "closed": True, "steps": 7,
        }

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store_obj = ScheduleStore(root=str(tmp_path))
        nodes = list(block([movi(1, 1)]).nodes())
        key = schedule_key(nodes, ISSUE5, MEM_A)
        os.makedirs(store_obj.directory, exist_ok=True)
        path = os.path.join(store_obj.directory, f"{key}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        assert store_obj.load(key) is None
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"words": "nope"}, handle)
        assert store_obj.load(key) is None

    def test_key_depends_on_issue_and_memory(self):
        nodes = list(block([load(1, 10, 0)]).nodes())
        base = schedule_key(nodes, ISSUE5, MEM_A)
        assert schedule_key(nodes, ISSUE2, MEM_A) != base
        assert schedule_key(nodes, ISSUE5, MEM_C) != base
        assert schedule_key(nodes, ISSUE5, MEM_A) == base

    def test_memoized_program_matches_fresh(self, tmp_path, grep_prepared):
        program = grep_prepared.single
        store_obj = ScheduleStore(root=str(tmp_path))
        first = optimal_schedule_program(program, ISSUE5, MEM_A,
                                         store=store_obj)
        second = optimal_schedule_program(program, ISSUE5, MEM_A,
                                          store=store_obj)
        assert set(first) == set(second)
        for label in first:
            assert first[label].words == second[label].words
            assert first[label].mem_rank == second[label].mem_rank


# ----------------------------------------------------------------------
class TestWorkloadGap:
    def test_grep_blocks_all_close(self, grep_prepared):
        analysis = analyze_program(grep_prepared.single, ISSUE5, MEM_A)
        assert analysis.closed_blocks == len(analysis.blocks)
        for solution in analysis.blocks:
            assert solution.makespan == solution.lower_bound
            assert solution.makespan <= solution.list_makespan
        # The greedy scheduler measurably trails the optimum.
        assert analysis.optimal_words < analysis.list_words
        assert analysis.gap_percent > 0.0

    def test_enlarged_program_has_loops(self, grep_prepared):
        analysis = analyze_program(grep_prepared.enlarged, ISSUE5, MEM_A)
        assert analysis.loops
        for loop in analysis.loops:
            assert loop.mii <= loop.ii <= loop.list_makespan


# ----------------------------------------------------------------------
class TestConfigAxis:
    def test_dynamic_machines_reject_the_axis(self):
        with pytest.raises(ValueError):
            MachineConfig(
                discipline=Discipline.DYNAMIC, issue_model=8, memory="A",
                branch_mode=BranchMode.ENLARGED, window_blocks=4,
                optimal_schedule=True,
            )

    def test_str_suffix_only_when_active(self):
        base = MachineConfig(
            discipline=Discipline.STATIC, issue_model=5, memory="A",
            branch_mode=BranchMode.SINGLE,
        )
        assert "/opt" not in str(base)
        opt = dataclasses.replace(base, optimal_schedule=True)
        assert str(opt).endswith("/opt")

    def test_cache_keys_stay_byte_identical_when_off(self):
        from repro.harness.cache import result_key

        base = MachineConfig(
            discipline=Discipline.STATIC, issue_model=5, memory="A",
            branch_mode=BranchMode.SINGLE,
        )
        key = result_key("grep", base, 1)
        assert "opt" not in key
        opt_key = result_key(
            "grep", dataclasses.replace(base, optimal_schedule=True), 1
        )
        assert opt_key == key + "|opt"

    def test_sched_grid_shape(self):
        configs = list(sched_configuration_space())
        assert len(configs) == 24
        assert len(set(configs)) == 24
        assert all(cfg.discipline is Discipline.STATIC for cfg in configs)
        assert sum(1 for cfg in configs if cfg.optimal_schedule) == 12
        # Every optimal point has its list twin at equal coordinates.
        on = {dataclasses.replace(cfg, optimal_schedule=False)
              for cfg in configs if cfg.optimal_schedule}
        off = {cfg for cfg in configs if not cfg.optimal_schedule}
        assert on == off


# ----------------------------------------------------------------------
class TestDominanceSched:
    def result(self, optimal, ipc_scale=1.0, issue=5):
        from repro.stats.results import SimResult

        cfg = MachineConfig(
            discipline=Discipline.STATIC, issue_model=issue, memory="A",
            branch_mode=BranchMode.SINGLE, optimal_schedule=optimal,
        )
        retired = int(4000 * ipc_scale)
        return SimResult(
            benchmark="grep", config=cfg, cycles=1000,
            retired_nodes=retired, discarded_nodes=0, dynamic_blocks=10,
            work_nodes=retired,
        )

    def test_ordered_pair_is_clean(self):
        from repro.validate.dominance import check_dominance

        results = [self.result(False), self.result(True, ipc_scale=1.2)]
        assert check_dominance(results) == []

    def test_inversion_is_flagged(self):
        from repro.validate.dominance import check_dominance

        results = [self.result(False), self.result(True, ipc_scale=0.5)]
        findings = check_dominance(results)
        assert [finding.rule for finding in findings] == ["dominance.sched"]
        assert "/opt" in findings[0].config

    def test_optimal_points_join_issue_chains(self):
        from repro.validate.dominance import check_dominance

        # A wider optimal machine slower than a narrower one must be
        # flagged by the issue rule, within the optimal slice.
        results = [
            self.result(True, ipc_scale=1.0, issue=2),
            self.result(True, ipc_scale=0.5, issue=8),
        ]
        findings = check_dominance(results)
        assert "dominance.issue" in [finding.rule for finding in findings]


# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_optimal_never_loses_end_to_end(self, grep_prepared):
        from repro.machine.simulator import simulate

        base = MachineConfig(
            discipline=Discipline.STATIC, issue_model=5, memory="A",
            branch_mode=BranchMode.ENLARGED,
        )
        listed = simulate(grep_prepared, base)
        optimal = simulate(
            grep_prepared, dataclasses.replace(base, optimal_schedule=True)
        )
        # self_check inside simulate() already verified retired-node
        # accounting; the optimal machine must not be slower.
        assert optimal.cycles <= listed.cycles

    def test_collector_counts_blocks(self, grep_prepared):
        from repro.telemetry import MetricsCollector

        collector = MetricsCollector()
        optimal_schedule_program(
            grep_prepared.single, ISSUE5, MEM_A, collector=collector,
        )
        counters = collector.counters
        assert counters["sched.blocks"] == len(list(grep_prepared.single))
        assert counters["sched.closed"] == counters["sched.blocks"]
        assert counters["sched.optimal_words"] <= counters["sched.list_words"]

    def test_schedule_summary_derivation(self):
        from repro.stats import schedule_summary

        assert schedule_summary({}) == {}
        summary = schedule_summary({
            "sched.blocks": 4, "sched.closed": 4, "sched.list_words": 20,
            "sched.optimal_words": 15, "sched.lower_bound_words": 15,
        })
        assert summary["gap_percent"] == 25.0
        assert summary["closed_fraction"] == 1.0


# ----------------------------------------------------------------------
# Determinism: the solver's exploration is metered by a step counter and
# iterates in index order only, so its output must not depend on the
# interpreter's string-hash salt.
_SEED_PROBE = """
import json, sys
sys.path.insert(0, {src!r})
from repro.isa import AluOp, Imm, Reg, alu, load, ret, store
from repro.machine.config import ISSUE_MODELS, MEMORY_CONFIGS
from repro.optsched import solve_block
from repro.program import BasicBlock

body = []
for i in range(6):
    body.append(load(i + 1, 10, 8 * i))
for i in range(6):
    body.append(alu(AluOp.ADD, 20 + i, Reg(i + 1), Imm(i)))
for i in range(3):
    body.append(store(Reg(20 + i), 11, 8 * i))
blk = BasicBlock("blk", body, ret())
solution = solve_block(blk, ISSUE_MODELS[5], MEMORY_CONFIGS["C"])
print(json.dumps([solution.schedule.words, solution.makespan,
                  solution.lower_bound, solution.closed, solution.steps]))
"""


class TestHashSeedDeterminism:
    def test_identical_across_hash_seeds(self):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        script = _SEED_PROBE.format(src=os.path.abspath(src))
        outputs = []
        for seed in ("1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True,
            )
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1]
        assert outputs[0][3] is True  # the probe block closed
