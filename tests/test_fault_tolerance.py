"""Failure-path tests: watchdogs, retries, isolation, checkpoint/resume.

Covers the fault-tolerant execution layer end to end: engine self-checks
(max_cycles watchdog, trace-accounting divergence), the PointExecutor's
retry/timeout/degradation behaviour, crash-safe cache writes, the sweep
checkpoint manifest, and the CLI acceptance path (a hanging point
degrades to one PointFailure, exit code 3, and --resume reuses every
cached good point without re-running it).
"""

import json
import multiprocessing
import time

import pytest

from repro.cli import main
from repro.harness.cache import atomic_write_json
from repro.harness.checkpoint import SweepCheckpoint
from repro.harness.errors import (
    PointFailure,
    SimulationHang,
    TransientSimulationError,
    WorkloadPrepareError,
    classify_error,
    is_transient,
)
from repro.harness.executor import ExecutionPolicy, PointExecutor
from repro.harness.report import partial_grid_note
from repro.harness.runner import (
    SweepRunner,
    geometric_mean,
    reset_zero_ipc_warning,
)
from repro.interp.trace import Trace
from repro.machine.config import (
    BranchMode,
    Discipline,
    MachineConfig,
    full_configuration_space,
)
from repro.machine.dynamic import DynamicEngine
from repro.machine.errors import EngineDivergence
from repro.machine.simulator import WorkloadMismatch, simulate
from repro.stats.results import SimResult
from repro.telemetry import MetricsCollector


def make_config(**overrides):
    defaults = dict(
        discipline=Discipline.DYNAMIC,
        issue_model=8,
        memory="A",
        branch_mode=BranchMode.SINGLE,
        window_blocks=4,
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


def fake_result(config, benchmark="grep", cycles=1000):
    return SimResult(
        benchmark=benchmark,
        config=config,
        cycles=cycles,
        retired_nodes=4000,
        discarded_nodes=100,
        dynamic_blocks=800,
        mispredicts=10,
        branch_lookups=100,
        faults=2,
        loads=300,
        stores=200,
        cache_accesses=500,
        cache_misses=25,
        write_buffer_hits=40,
        issue_words=1000,
        issued_slots=4100,
        window_block_cycles=2400,
        window_samples=800,
        work_nodes=4000,
    )


def clone_trace(trace):
    copy = Trace()
    copy.labels = list(trace.labels)
    copy.label_index = dict(trace.label_index)
    copy.block_ids = trace.block_ids
    copy.outcomes = trace.outcomes
    copy.fault_indices = trace.fault_indices
    copy.addresses = trace.addresses
    copy.exit_code = trace.exit_code
    copy.retired_nodes = trace.retired_nodes
    copy.discarded_nodes = trace.discarded_nodes
    return copy


# ----------------------------------------------------------------------
class TestEngineWatchdog:
    def test_dynamic_watchdog_fires(self, grep_prepared):
        config = make_config()
        with pytest.raises(SimulationHang) as info:
            simulate(grep_prepared, config, max_cycles=5)
        assert info.value.benchmark == "grep"
        assert info.value.limit == 5
        assert info.value.cycle > 5

    def test_static_watchdog_fires(self, grep_prepared):
        config = make_config(discipline=Discipline.STATIC, window_blocks=1)
        with pytest.raises(SimulationHang):
            simulate(grep_prepared, config, max_cycles=5)

    def test_env_override(self, grep_prepared, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_CYCLES", "5")
        with pytest.raises(SimulationHang):
            simulate(grep_prepared, make_config())

    def test_generous_limit_is_harmless(self, grep_prepared):
        result = simulate(grep_prepared, make_config(), max_cycles=1 << 40)
        assert result.cycles > 0


class TestEngineSelfCheck:
    def test_divergence_raises_typed_error(self, grep_prepared):
        config = make_config()
        bad_trace = clone_trace(grep_prepared.trace_for(config.branch_mode))
        bad_trace.retired_nodes += 1
        engine = DynamicEngine(
            grep_prepared.templates_for(config.branch_mode), bad_trace,
            config, benchmark="grep",
        )
        with pytest.raises(EngineDivergence) as info:
            engine.run()
        assert info.value.trace_retired == bad_trace.retired_nodes

    def test_self_check_can_be_disabled(self, grep_prepared):
        config = make_config()
        bad_trace = clone_trace(grep_prepared.trace_for(config.branch_mode))
        bad_trace.retired_nodes += 1
        engine = DynamicEngine(
            grep_prepared.templates_for(config.branch_mode), bad_trace,
            config, benchmark="grep", self_check=False,
        )
        assert engine.run().cycles > 0


# ----------------------------------------------------------------------
def _stub_runner(monkeypatch, simulate_point, tmp_path=None):
    collector = MetricsCollector()
    runner = SweepRunner(
        benchmarks=["grep"], collector=collector,
        use_cache=tmp_path is not None,
    )
    if tmp_path is not None:
        runner.cache.path = str(tmp_path / "results.json")
    monkeypatch.setattr(runner, "simulate_point", simulate_point)
    return runner


class TestExecutorRetry:
    def test_transient_failure_retries_then_succeeds(self, monkeypatch):
        config = make_config()
        calls = []

        def flaky(benchmark, cfg):
            calls.append(1)
            if len(calls) < 3:
                raise TransientSimulationError("intermittent I/O flake")
            return fake_result(cfg)

        runner = _stub_runner(monkeypatch, flaky)
        executor = PointExecutor(
            runner, ExecutionPolicy(retries=3, backoff_s=0.001)
        )
        outcome = executor.execute("grep", config)
        assert isinstance(outcome, SimResult)
        assert len(calls) == 3
        assert runner.collector.counters["sweep.point.retried"] == 2
        assert "sweep.point.failed" not in runner.collector.counters

    def test_transient_budget_exhausted_degrades(self, monkeypatch):
        config = make_config()

        def always_flaky(benchmark, cfg):
            raise TransientSimulationError("still flaky")

        runner = _stub_runner(monkeypatch, always_flaky)
        executor = PointExecutor(
            runner, ExecutionPolicy(retries=1, backoff_s=0.001)
        )
        outcome = executor.execute("grep", config)
        assert isinstance(outcome, PointFailure)
        assert outcome.kind == "transient"
        assert outcome.attempts == 2
        assert runner.collector.counters["sweep.point.failed"] == 1

    def test_permanent_failure_not_retried(self, monkeypatch):
        config = make_config()
        calls = []

        def broken(benchmark, cfg):
            calls.append(1)
            raise RuntimeError("deterministic modelling bug")

        runner = _stub_runner(monkeypatch, broken)
        executor = PointExecutor(runner, ExecutionPolicy(retries=5))
        outcome = executor.execute("grep", config)
        assert isinstance(outcome, PointFailure)
        assert outcome.kind == "unexpected"
        assert len(calls) == 1  # no retry for non-transient errors
        assert runner.failures == [outcome]

    def test_hang_recorded_as_point_failure(self, monkeypatch):
        config = make_config()

        def hangs(benchmark, cfg):
            raise SimulationHang("grep", str(cfg), 10_001, 10_000)

        runner = _stub_runner(monkeypatch, hangs)
        outcome = PointExecutor(runner).execute("grep", config)
        assert isinstance(outcome, PointFailure)
        assert outcome.kind == "hang"
        failed_points = [
            point for point in runner.collector.points if point.get("failed")
        ]
        assert len(failed_points) == 1
        assert failed_points[0]["error"] == "hang"


class TestExecutorTimeout:
    def test_inprocess_timeout_degrades(self, monkeypatch):
        config = make_config()

        def slow(benchmark, cfg):
            time.sleep(2.0)
            return fake_result(cfg)

        runner = _stub_runner(monkeypatch, slow)
        executor = PointExecutor(runner, ExecutionPolicy(timeout_s=0.05))
        start = time.perf_counter()
        outcome = executor.execute("grep", config)
        assert time.perf_counter() - start < 1.5
        assert isinstance(outcome, PointFailure)
        assert outcome.kind == "timeout"
        assert runner.collector.counters["sweep.point.timeout"] == 1


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="isolation tests patch the worker via fork inheritance",
)
class TestIsolatedExecution:
    def test_isolated_success_round_trips_result(self, monkeypatch, tmp_path):
        config = make_config()
        monkeypatch.setattr(
            SweepRunner, "simulate_point",
            lambda self, benchmark, cfg: fake_result(cfg),
        )
        collector = MetricsCollector()
        runner = SweepRunner(benchmarks=["grep"], collector=collector)
        runner.cache.path = str(tmp_path / "results.json")
        executor = PointExecutor(
            runner, ExecutionPolicy(isolate=True, timeout_s=30)
        )
        outcome = executor.execute("grep", config)
        assert isinstance(outcome, SimResult)
        assert outcome.cycles == 1000
        # The parent performed the cache write.
        assert runner.cache.get("grep", config, runner.scale) is not None
        assert collector.counters["sweep.cache.miss"] == 1

    def test_isolated_timeout_terminates_worker(self, monkeypatch):
        config = make_config()
        monkeypatch.setattr(
            SweepRunner, "simulate_point",
            lambda self, benchmark, cfg: time.sleep(60),
        )
        runner = SweepRunner(
            benchmarks=["grep"], collector=MetricsCollector(),
            use_cache=False,
        )
        executor = PointExecutor(
            runner, ExecutionPolicy(isolate=True, timeout_s=0.2)
        )
        start = time.perf_counter()
        outcome = executor.execute("grep", config)
        assert time.perf_counter() - start < 10
        assert isinstance(outcome, PointFailure)
        assert outcome.kind == "timeout"

    def test_isolated_error_keeps_classification(self, monkeypatch):
        config = make_config()

        def hangs(self, benchmark, cfg):
            raise SimulationHang("grep", str(cfg), 11, 10)

        monkeypatch.setattr(SweepRunner, "simulate_point", hangs)
        runner = SweepRunner(
            benchmarks=["grep"], collector=MetricsCollector(),
            use_cache=False,
        )
        executor = PointExecutor(
            runner, ExecutionPolicy(isolate=True, timeout_s=30)
        )
        outcome = executor.execute("grep", config)
        assert isinstance(outcome, PointFailure)
        assert outcome.kind == "hang"


# ----------------------------------------------------------------------
class TestWorkloadPrepareErrors:
    def test_mismatch_surfaces_as_prepare_error(self, monkeypatch):
        def exploding_prepared(workload, scale=1):
            raise WorkloadMismatch("grep: enlarged program diverged")

        monkeypatch.setattr(
            "repro.harness.runner.prepared", exploding_prepared
        )
        runner = SweepRunner(benchmarks=["grep"], use_cache=False)
        with pytest.raises(WorkloadPrepareError) as info:
            runner.workload("grep")
        assert isinstance(info.value.cause, WorkloadMismatch)
        assert "diverged" in str(info.value)

    def test_prepare_failure_becomes_point_failure(self, monkeypatch):
        monkeypatch.setattr(
            "repro.harness.runner.prepared",
            lambda workload, scale=1: (_ for _ in ()).throw(
                WorkloadMismatch("grep: enlarged program diverged")
            ),
        )
        runner = SweepRunner(
            benchmarks=["grep"], collector=MetricsCollector(),
            use_cache=False,
        )
        outcome = PointExecutor(runner).execute("grep", make_config())
        assert isinstance(outcome, PointFailure)
        assert outcome.kind == "prepare"

    def test_classification_table(self):
        assert classify_error(WorkloadMismatch("x")) == "prepare"
        assert classify_error(SimulationHang("b", "c", 2, 1)) == "hang"
        assert classify_error(EngineDivergence("b", "c", 1, 2)) == "divergence"
        assert classify_error(KeyError("x")) == "unexpected"
        assert is_transient(TransientSimulationError("x"))
        assert is_transient(OSError("x"))
        assert not is_transient(SimulationHang("b", "c", 2, 1))


class TestZeroIpcAccounting:
    def test_zero_values_counted_and_warned(self, capsys):
        reset_zero_ipc_warning()
        collector = MetricsCollector()
        value = geometric_mean([0.0, 1.0, 0.0], collector=collector)
        assert value > 0.0
        assert collector.counters["sweep.zero_ipc"] == 2
        assert "floored" in capsys.readouterr().err

    def test_clean_values_stay_silent(self, capsys):
        reset_zero_ipc_warning()
        collector = MetricsCollector()
        geometric_mean([2.0, 8.0], collector=collector)
        assert "sweep.zero_ipc" not in collector.counters
        assert capsys.readouterr().err == ""

    def test_warning_fires_once_per_sweep(self, capsys):
        reset_zero_ipc_warning()
        collector = MetricsCollector()
        geometric_mean([0.0, 1.0], collector=collector)
        geometric_mean([0.0, 2.0], collector=collector)
        # Dedup silences the second warning but never the counter.
        assert capsys.readouterr().err.count("floored") == 1
        assert collector.counters["sweep.zero_ipc"] == 2
        reset_zero_ipc_warning()
        geometric_mean([0.0, 1.0], collector=collector)
        assert "floored" in capsys.readouterr().err


class TestCrashSafeWrites:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "data.json"
        atomic_write_json(str(target), {"x": 1})
        assert json.loads(target.read_text()) == {"x": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["data.json"]

    def test_failed_write_preserves_old_contents(self, tmp_path, monkeypatch):
        target = tmp_path / "data.json"
        atomic_write_json(str(target), {"generation": 1})

        import repro.harness.cache as cache_mod

        def exploding_dump(payload, handle, **kwargs):
            handle.write('{"generation"')  # simulate dying mid-write
            raise RuntimeError("disk full")

        monkeypatch.setattr(cache_mod.json, "dump", exploding_dump)
        with pytest.raises(RuntimeError):
            atomic_write_json(str(target), {"generation": 2})
        monkeypatch.undo()
        assert json.loads(target.read_text()) == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["data.json"]


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "sweep.state.json")
        checkpoint = SweepCheckpoint(path, ["grep"], 1, 560)
        checkpoint.mark_done("key-a")
        failure = PointFailure("grep", "cfg", "hang", "watchdog", attempts=1)
        checkpoint.mark_failed("key-b", failure)
        checkpoint.save()

        loaded = SweepCheckpoint.load(path)
        assert loaded is not None
        assert loaded.compatible_with(["grep"], 1)
        assert not loaded.compatible_with(["sort"], 1)
        assert "key-a" in loaded.done
        assert loaded.failed_point("key-b").kind == "hang"

    def test_success_clears_recorded_failure(self, tmp_path):
        path = str(tmp_path / "sweep.state.json")
        checkpoint = SweepCheckpoint(path, ["grep"], 1, 10)
        checkpoint.mark_failed(
            "key", PointFailure("grep", "cfg", "transient", "flake")
        )
        checkpoint.mark_done("key")
        checkpoint.save()
        assert SweepCheckpoint.load(path).failed_point("key") is None

    def test_corrupt_manifest_ignored(self, tmp_path):
        path = tmp_path / "sweep.state.json"
        path.write_text("{not json")
        assert SweepCheckpoint.load(str(path)) is None


class TestPartialGridAnnotation:
    def test_note_lists_failures(self):
        note = partial_grid_note([
            PointFailure("grep", "dyn4/single/4M+12A/A", "hang",
                         "watchdog fired", attempts=1),
        ])
        assert "Partial grid" in note
        assert "hang" in note
        assert "grep" in note

    def test_empty_failures_render_nothing(self):
        assert partial_grid_note([]) == ""


# ----------------------------------------------------------------------
class TestSweepAcceptance:
    """The ISSUE acceptance path: hang -> degrade -> exit 3 -> resume."""

    def _install_stub_simulation(self, monkeypatch, hang_config, sim_log):
        monkeypatch.setattr(
            SweepRunner, "workload", lambda self, name: None
        )

        def stub_simulate(workload, config, collector=None, max_cycles=None,
                          **kwargs):
            sim_log.append(config)
            if config == hang_config:
                raise SimulationHang("grep", str(config), 10_001, 10_000)
            return fake_result(config)

        monkeypatch.setattr("repro.harness.runner.simulate", stub_simulate)

    def test_hang_degrades_then_resume_hits_cache(self, tmp_path,
                                                  monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        configs = list(full_configuration_space())
        hang_config = configs[4]
        sim_log = []
        self._install_stub_simulation(monkeypatch, hang_config, sim_log)

        metrics_1 = tmp_path / "telemetry1.json"
        code = main([
            "sweep", "--benchmarks", "grep", "--limit", "25",
            "--metrics-out", str(metrics_1),
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert "1 point(s) failed (hang)" in captured.err
        document = json.loads(metrics_1.read_text())
        assert document["counters"]["sweep.point.failed"] == 1
        assert document["counters"]["sweep.cache.miss"] == 24
        assert len(document["failures"]) == 1
        assert document["failures"][0]["error"] == "hang"
        assert (tmp_path / "sweep.state.json").exists()
        assert len(sim_log) == 25  # 24 good + 1 hanging attempt

        # Resume: every good point must come from the cache, the hang
        # must be carried forward without re-running, exit stays 3.
        del sim_log[:]
        metrics_2 = tmp_path / "telemetry2.json"
        code = main([
            "sweep", "--benchmarks", "grep", "--limit", "0", "--resume",
            "--metrics-out", str(metrics_2),
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert sim_log == []  # nothing was re-simulated
        document = json.loads(metrics_2.read_text())
        assert document["counters"]["sweep.cache.hit"] == 24
        assert document["counters"]["sweep.point.skipped_failed"] == 1
        assert "sweep.cache.miss" not in document["counters"]

    def test_retry_failed_reattempts_on_resume(self, tmp_path, monkeypatch,
                                               capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        configs = list(full_configuration_space())
        hang_config = configs[2]
        sim_log = []
        self._install_stub_simulation(monkeypatch, hang_config, sim_log)

        assert main(["sweep", "--benchmarks", "grep", "--limit", "5"]) == 3
        capsys.readouterr()

        # Heal the hang, then resume with --retry-failed: the point is
        # re-attempted and the sweep's first 5 points are now clean.
        monkeypatch.setattr(
            "repro.harness.runner.simulate",
            lambda workload, config, collector=None, max_cycles=None,
            **kwargs: fake_result(config),
        )
        code = main([
            "sweep", "--benchmarks", "grep", "--limit", "1", "--resume",
            "--retry-failed",
        ])
        capsys.readouterr()
        assert code == 0
