#!/usr/bin/env python3
"""The paper's Figure 1, reconstructed.

Figure 1 shows basic block enlargement on a three-block CFG: block A
branches to B or C; C loops back to A or leaves.  The paper builds the
enlarged blocks AB and AC (the A->C branch becoming a *fault* node), and
then ACAC -- two loop iterations unrolled into one block.

This script builds that exact CFG in the node IR, applies hand-written
enlargement plans for AB, AC and ACAC, prints the resulting blocks (the
converted assert nodes are visible), and verifies with the interpreter
that all variants compute the same thing.

Run:  python examples/figure1_paper_example.py
"""

from repro.enlarge import EnlargementPlan, apply_plan
from repro.interp import run_program
from repro.isa import AluOp, Imm, Reg, SyscallOp, alu, branch, jump, syscall
from repro.program import BasicBlock, Program, format_block


def figure1_program() -> Program:
    """A: i++, s+=i; branch to B (i odd) or C.  B: s*=2 then C (as the
    paper's A->B->... path).  C: loop back to A while i < 20, else exit."""
    blocks = [
        # A separate entry so that "A" itself can be redirected to its
        # canonical enlarged block (the program entry label never is).
        BasicBlock("start", [
            alu(AluOp.MOV, 1, Imm(0)),
            alu(AluOp.MOV, 2, Imm(0)),
        ], jump("A")),
        BasicBlock("A", [
            alu(AluOp.ADD, 1, Reg(1), Imm(1)),       # i++
            alu(AluOp.ADD, 2, Reg(2), Reg(1)),       # s += i
            alu(AluOp.AND, 3, Reg(1), Imm(1)),       # t = i & 1
        ], branch(3, "B", "C")),
        BasicBlock("B", [
            alu(AluOp.MUL, 2, Reg(2), Imm(2)),       # s *= 2
        ], jump("C")),
        BasicBlock("C", [
            alu(AluOp.SLT, 4, Reg(1), Imm(20)),      # t2 = i < 20
        ], branch(4, "A", "Z")),
        BasicBlock("Z", [], syscall(SyscallOp.EXIT, None, (2,))),
    ]
    return Program(blocks, entry="start")


def show(program: Program, labels) -> None:
    for label in labels:
        if label in program:
            print(format_block(program.block(label)))
            print()


def main() -> None:
    program = figure1_program()
    print("=== original code (paper Figure 1, left) ===\n")
    show(program, ["A", "B", "C"])
    baseline = run_program(program, inputs={0: b""})
    print(f"original result: exit code {baseline.exit_code}\n")

    # Middle of Figure 1: enlarged blocks AB and AC.  Our builder keeps
    # one canonical enlarged entry per label (the paper: "branches to
    # enlarged basic blocks will always execute the initial enlarged
    # basic block first"), so we build AB as A's canonical block; the
    # fault path re-executes the original A, which then reaches C.
    plan_ab = EnlargementPlan(sequences=[["A", "B"]], entry_map={"A": "AB"})
    enlarged_ab = apply_plan(program, plan_ab)
    print("=== enlarged block AB (A's branch is now an assert) ===\n")
    show(enlarged_ab, ["AB"])
    result_ab = run_program(enlarged_ab, inputs={0: b""})
    assert result_ab.exit_code == baseline.exit_code

    # Right of Figure 1: two loop iterations unrolled, ACAC.
    plan_acac = EnlargementPlan(
        sequences=[["A", "C", "A", "C"]], entry_map={"A": "ACAC"}
    )
    enlarged_acac = apply_plan(program, plan_acac)
    print("=== enlarged block ACAC (two iterations unrolled) ===\n")
    show(enlarged_acac, ["ACAC"])
    result_acac = run_program(enlarged_acac, inputs={0: b""})
    assert result_acac.exit_code == baseline.exit_code

    for name, result in [("AB", result_ab), ("ACAC", result_acac)]:
        trace = result.trace
        faults = sum(1 for f in trace.fault_indices if f >= 0)
        print(f"{name}: {len(trace)} dynamic blocks, {faults} faults, "
              f"exit {result.exit_code} (matches original)")

    print("\nEvery variant computes the same sum; the asserts execute")
    print("silently on the expected path and discard the block (rolling")
    print("back to re-execute the original code) when the prediction")
    print("embedded in the enlarged block is wrong.")


if __name__ == "__main__":
    main()
