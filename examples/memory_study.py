#!/usr/bin/env python3
"""Memory-hierarchy study (the paper's Figure 4 axis, in depth).

Sweeps one benchmark over the seven memory configurations and shows the
statistics behind the paper's latency-tolerance argument: cache hit
rates, write-buffer hits, and how little a fully pipelined memory system
costs even at 3-cycle latency.

Run:  python examples/memory_study.py [benchmark]
"""

import sys

from repro.machine import (
    BranchMode,
    Discipline,
    FIGURE4_MEMORY_ORDER,
    MEMORY_CONFIGS,
    MachineConfig,
    simulate,
)
from repro.workloads import WORKLOADS, prepared


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    workload = prepared(WORKLOADS[name])

    header = (f"{'memory':>8s} {'description':>18s} {'IPC':>7s} "
              f"{'cache hit':>10s} {'wb hits':>8s} {'vs A':>7s}")
    print(f"benchmark: {name} (dyn window 4, enlarged, issue model 8)\n")
    print(header)
    print("-" * len(header))

    baseline = None
    for letter in FIGURE4_MEMORY_ORDER:
        config = MachineConfig(
            discipline=Discipline.DYNAMIC,
            issue_model=8,
            memory=letter,
            branch_mode=BranchMode.ENLARGED,
            window_blocks=4,
        )
        result = simulate(workload, config)
        if baseline is None:
            baseline = result.retired_per_cycle
        description = str(MEMORY_CONFIGS[letter])
        print(f"{letter:>8s} {description:>18s} "
              f"{result.retired_per_cycle:>7.3f} "
              f"{result.cache_hit_rate:>10.4f} "
              f"{result.write_buffer_hits:>8d} "
              f"{result.retired_per_cycle / baseline:>7.1%}")

    print()
    print("Paper, section 3.2: because the memory system is fully")
    print("pipelined, even tripling the latency (A -> C) costs only a")
    print("modest fraction; machines that perform well are exactly the")
    print("ones that tolerate slow memory (more parallelism in flight).")


if __name__ == "__main__":
    main()
