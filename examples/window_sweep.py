#!/usr/bin/env python3
"""Instruction-window study: how much ILP does each window size expose?

Reproduces the spirit of the paper's scheduling-discipline axis at a
finer grain: sweeps the window from 1 to 256 basic blocks on one
benchmark and prints retired nodes/cycle for single and enlarged blocks,
plus the perfect-prediction bound.

Run:  python examples/window_sweep.py [benchmark]
"""

import sys

from repro.machine import BranchMode, Discipline, MachineConfig, simulate
from repro.workloads import WORKLOADS, prepared

WINDOWS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def config(window: int, mode: BranchMode) -> MachineConfig:
    return MachineConfig(
        discipline=Discipline.DYNAMIC,
        issue_model=8,
        memory="A",
        branch_mode=mode,
        window_blocks=window,
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "grep"
    if name not in WORKLOADS:
        raise SystemExit(f"unknown benchmark {name!r}; pick from "
                         f"{sorted(WORKLOADS)}")
    print(f"preparing {name} (compile, profile, enlarge, trace)...")
    workload = prepared(WORKLOADS[name])

    header = f"{'window':>8s} {'single':>8s} {'enlarged':>9s} {'perfect':>8s}"
    print(header)
    print("-" * len(header))
    for window in WINDOWS:
        single = simulate(workload, config(window, BranchMode.SINGLE))
        enlarged = simulate(workload, config(window, BranchMode.ENLARGED))
        perfect = simulate(workload, config(window, BranchMode.PERFECT))
        print(f"{window:>8d} {single.retired_per_cycle:>8.3f} "
              f"{enlarged.retired_per_cycle:>9.3f} "
              f"{perfect.retired_per_cycle:>8.3f}")

    print()
    print("Expected shape (paper, section 3.2): window 1 exposes almost")
    print("nothing beyond static scheduling; most of the benefit arrives")
    print("by window 4; the gap to the perfect line is the headroom the")
    print("paper attributes to better branch prediction.")


if __name__ == "__main__":
    main()
