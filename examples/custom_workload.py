#!/usr/bin/env python3
"""Bring-your-own workload: run a new program through the whole pipeline.

Implements a `wc`-like word-count utility in Mini-C (a sixth UNIX
benchmark the paper could have used), then walks it through every stage
a built-in benchmark gets: compile -> profile -> enlarge -> trace ->
simulate across all ten scheduling disciplines.

Run:  python examples/custom_workload.py
"""

from repro import compile_source, prepare_workload, run_program, simulate
from repro.machine import MachineConfig
from repro.machine.config import scheduling_disciplines

WC_SOURCE = """
char _ibuf[4096];
int _ipos;
int _ilen;

int nextc() {
    if (_ipos >= _ilen) {
        _ilen = read(0, _ibuf, 4096);
        _ipos = 0;
        if (_ilen <= 0) return -1;
    }
    return _ibuf[_ipos++];
}

void print_int(int n) {
    char digits[12];
    int i = 0;
    if (n == 0) { putc(1, 48); return; }
    while (n > 0) { digits[i++] = 48 + n % 10; n /= 10; }
    while (i > 0) putc(1, digits[--i]);
}

int main() {
    int lines = 0;
    int words = 0;
    int chars = 0;
    int in_word = 0;
    int c = nextc();
    while (c >= 0) {
        chars++;
        if (c == 10) lines++;
        if (c == 32 || c == 10 || c == 9) {
            in_word = 0;
        } else if (!in_word) {
            in_word = 1;
            words++;
        }
        c = nextc();
    }
    print_int(lines); putc(1, 32);
    print_int(words); putc(1, 32);
    print_int(chars); putc(1, 10);
    return 0;
}
"""


def make_text(seed: int, paragraphs: int) -> bytes:
    """Deterministic pseudo-text (avoid identical train/eval data)."""
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]
    state = seed
    output = []
    for _ in range(paragraphs * 40):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        output.append(words[state % len(words)])
        if state % 9 == 0:
            output.append("\n")
    return (" ".join(output) + "\n").encode()


def main() -> None:
    program = compile_source(WC_SOURCE)
    train = {0: make_text(1, 12)}
    eval_inputs = {0: make_text(2, 12)}

    # Sanity: run functionally and show the program's own output.
    result = run_program(program, inputs=eval_inputs)
    print(f"wc output: {result.output.decode().strip()}")

    workload = prepare_workload("wc", program, train, eval_inputs)
    print(f"trace: {workload.single_trace.retired_nodes} retired nodes, "
          f"{len(workload.single_trace)} dynamic blocks\n")

    print(f"{'discipline':20s} {'nodes/cycle':>12s} {'redundancy':>11s} "
          f"{'br.accuracy':>12s}")
    print("-" * 58)
    for discipline, window, mode in scheduling_disciplines():
        config = MachineConfig(
            discipline=discipline,
            issue_model=8,
            memory="A",
            branch_mode=mode,
            window_blocks=window,
        )
        sim = simulate(workload, config)
        print(f"{config.discipline_key():20s} "
              f"{sim.retired_per_cycle:>12.3f} {sim.redundancy:>11.3f} "
              f"{sim.branch_accuracy:>12.3f}")

    print("\nEvery stage a built-in benchmark gets -- profiling, basic")
    print("block enlargement, trace-driven timing -- works unchanged for")
    print("user-supplied Mini-C programs.")


if __name__ == "__main__":
    main()
