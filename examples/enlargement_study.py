#!/usr/bin/env python3
"""Basic block enlargement study.

Shows the software half of the paper working on one benchmark:

* the enlargement plan (which traces of blocks were merged, unrolling),
* before/after block-size statistics,
* fault behaviour at three planner aggressiveness settings, and
* the resulting performance on a wide dynamic machine.

Run:  python examples/enlargement_study.py [benchmark]
"""

import sys
from collections import Counter

from repro.enlarge import EnlargeConfig, plan_enlargement
from repro.interp import run_program
from repro.machine import BranchMode, Discipline, MachineConfig
from repro.machine.simulator import prepare_workload
from repro.profiles import build_profile
from repro.workloads import WORKLOADS


def block_size_stats(trace, program):
    sizes = {b.label: b.datapath_size for b in program}
    histogram = Counter(sizes[trace.labels[i]] for i in trace.block_ids)
    total = sum(histogram.values())
    mean = sum(s * c for s, c in histogram.items()) / total
    small = sum(c for s, c in histogram.items() if s <= 4) / total
    return mean, small


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    workload = WORKLOADS[name]
    program = workload.compile()
    train = workload.make_inputs("train")
    eval_inputs = workload.make_inputs("eval")

    print(f"profiling {name} on the training input...")
    profile = build_profile(run_program(program, inputs=train).trace)

    plan = plan_enlargement(program, profile)
    print(f"\nenlargement plan: {len(plan.sequences)} enlarged blocks")
    for sequence in plan.sequences[:8]:
        unrolled = len(sequence) - len(set(sequence))
        note = f"  (loop unrolled x{unrolled + 1})" if unrolled else ""
        print("  " + " -> ".join(sequence) + note)
    if len(plan.sequences) > 8:
        print(f"  ... and {len(plan.sequences) - 8} more")

    base_run = run_program(program, inputs=eval_inputs)
    mean_before, small_before = block_size_stats(base_run.trace, program)

    print(f"\n{'config':14s} {'mean blk':>9s} {'<=4 nodes':>10s} "
          f"{'fault rate':>11s} {'IPC (dyn4)':>11s}")
    print("-" * 60)
    print(f"{'single':14s} {mean_before:>9.2f} {small_before:>10.1%} "
          f"{'-':>11s}", end="")

    machine = MachineConfig(
        discipline=Discipline.DYNAMIC, issue_model=8, memory="A",
        branch_mode=BranchMode.SINGLE, window_blocks=4,
    )
    prepared_default = prepare_workload(name, program, train, eval_inputs)
    from repro.machine import simulate

    print(f" {simulate(prepared_default, machine).retired_per_cycle:>11.3f}")

    settings = {
        "conservative": EnlargeConfig(min_arc_ratio=0.92, min_cum_ratio=0.75),
        "default": EnlargeConfig(),
        "aggressive": EnlargeConfig(min_arc_ratio=0.55, min_cum_ratio=0.10),
    }
    enlarged_machine = MachineConfig(
        discipline=Discipline.DYNAMIC, issue_model=8, memory="A",
        branch_mode=BranchMode.ENLARGED, window_blocks=4,
    )
    for label, enlarge_config in settings.items():
        prepared_wl = prepare_workload(
            name, program, train, eval_inputs, enlarge_config=enlarge_config
        )
        trace = prepared_wl.enlarged_trace
        mean_after, small_after = block_size_stats(trace, prepared_wl.enlarged)
        faults = sum(1 for f in trace.fault_indices if f >= 0)
        ipc = simulate(prepared_wl, enlarged_machine).retired_per_cycle
        print(f"{label:14s} {mean_after:>9.2f} {small_after:>10.1%} "
              f"{faults / len(trace):>11.2%} {ipc:>11.3f}")

    print("\nThe paper's claim: enlargement flattens the block-size")
    print("distribution, and there is an optimal aggressiveness -- too")
    print("strict wastes issue bandwidth, too loose pays in faults.")


if __name__ == "__main__":
    main()
