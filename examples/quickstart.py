#!/usr/bin/env python3
"""Quickstart: compile a Mini-C program and simulate it on two machines.

Demonstrates the three layers of the library:

1. the Mini-C front end (the translating loader's language side),
2. the functional interpreter (architectural reference + trace),
3. the timing simulators (static vs dynamic scheduling).

Run:  python examples/quickstart.py
"""

from repro import (
    BranchMode,
    Discipline,
    MachineConfig,
    compile_source,
    prepare_workload,
    run_program,
    simulate,
)

SOURCE = """
int histogram[26];

int main() {
    int c = getc(0);
    while (c >= 0) {
        if (c >= 97 && c <= 122) histogram[c - 97]++;
        c = getc(0);
    }
    /* print letters more frequent than 'e' is rare: count > 2 */
    int i;
    for (i = 0; i < 26; i++) {
        if (histogram[i] > 2) putc(1, 97 + i);
    }
    putc(1, 10);
    return 0;
}
"""

TEXT = b"the quick brown fox jumps over the lazy dog again and again\n"


def main() -> None:
    # --- 1. compile ----------------------------------------------------
    program = compile_source(SOURCE)
    alu, mem = program.static_node_counts()
    print(f"compiled: {len(program)} basic blocks, "
          f"{alu} ALU + {mem} memory nodes (ratio {alu / mem:.2f})")

    # --- 2. run functionally --------------------------------------------
    result = run_program(program, inputs={0: TEXT})
    print(f"program output: {result.output.decode().strip()!r}")
    print(f"retired nodes:  {result.trace.retired_nodes}")

    # --- 3. simulate on two machines -------------------------------------
    workload = prepare_workload("quickstart", program, {0: TEXT}, {0: TEXT})

    static = MachineConfig(
        discipline=Discipline.STATIC,
        issue_model=8,
        memory="A",
        branch_mode=BranchMode.SINGLE,
    )
    dynamic = MachineConfig(
        discipline=Discipline.DYNAMIC,
        issue_model=8,
        memory="A",
        branch_mode=BranchMode.ENLARGED,
        window_blocks=4,
    )

    for config in (static, dynamic):
        sim = simulate(workload, config)
        print(f"{config.discipline_key():18s} "
              f"{sim.cycles:6d} cycles   "
              f"{sim.retired_per_cycle:5.2f} nodes/cycle   "
              f"redundancy {sim.redundancy:.3f}")

    speedup = (
        simulate(workload, static).cycles / simulate(workload, dynamic).cycles
    )
    print(f"dynamic+enlarged speedup over static: {speedup:.2f}x")


if __name__ == "__main__":
    main()
