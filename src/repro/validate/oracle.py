"""Oracle orchestration: run every validation layer over one result set.

:func:`run_oracle` composes the three layers -- per-result invariants,
cross-configuration dominance, and (when a baseline path is given)
golden-baseline drift -- into one :class:`ValidationReport` that is
deterministic for a given result set regardless of the order results
arrived in, so serial and ``--jobs N`` sweeps of the same grid report
byte-identical findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..stats.results import SimResult
from .baseline import check_baseline
from .dominance import DEFAULT_REL_TOL, check_dominance
from .findings import (
    ValidationFinding,
    count_by_severity,
    has_errors,
    sort_findings,
)
from .invariants import check_results

#: Version tag of the ``validation`` section in ``telemetry.json``.
VALIDATION_SCHEMA = "repro.validation/1"


@dataclass
class ValidationReport:
    """Everything one oracle run found, plus how much it looked at."""

    findings: List[ValidationFinding] = field(default_factory=list)
    checked_results: int = 0
    rel_tol: float = DEFAULT_REL_TOL
    baseline_path: Optional[str] = None

    @property
    def errors(self) -> int:
        return count_by_severity(self.findings)["error"]

    @property
    def warnings(self) -> int:
        return count_by_severity(self.findings)["warning"]

    @property
    def ok(self) -> bool:
        """Whether nothing gating was found (warnings do not gate)."""
        return not has_errors(self.findings)

    def to_dict(self) -> Dict[str, Any]:
        """The ``validation`` section of ``telemetry.json``."""
        document: Dict[str, Any] = {
            "schema": VALIDATION_SCHEMA,
            "checked_results": self.checked_results,
            "rel_tol": self.rel_tol,
            "severities": count_by_severity(self.findings),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        if self.baseline_path is not None:
            document["baseline"] = self.baseline_path
        return document

    def summary_lines(self) -> List[str]:
        """Human-readable report: one header plus one line per finding."""
        status = "clean" if self.ok else f"{self.errors} error(s)"
        lines = [
            f"validation: {self.checked_results} result(s) checked,"
            f" {status}, {self.warnings} warning(s)"
        ]
        lines.extend(finding.summary() for finding in self.findings)
        return lines


def run_oracle(results: Iterable[SimResult],
               rel_tol: Optional[float] = None,
               baseline_path: Optional[str] = None,
               tolerances: Optional[Dict[str, float]] = None,
               scale: int = 1,
               invariant_findings: Optional[
                   Iterable[ValidationFinding]] = None,
               ) -> ValidationReport:
    """Run every applicable validation layer over one result set.

    ``invariant_findings`` carries findings already collected eagerly
    (the sweep loop checks each result as it merges); when supplied the
    invariant layer is not re-run.  ``baseline_path`` of None skips the
    baseline layer entirely.
    """
    results = list(results)
    tol = DEFAULT_REL_TOL if rel_tol is None else rel_tol
    if invariant_findings is None:
        findings = check_results(results)
    else:
        findings = list(invariant_findings)
    findings.extend(check_dominance(results, rel_tol=tol))
    if baseline_path is not None:
        findings.extend(check_baseline(
            results, scale, baseline_path, tolerances=tolerances,
        ))
    return ValidationReport(
        findings=sort_findings(findings),
        checked_results=len(results),
        rel_tol=tol,
        baseline_path=baseline_path,
    )
