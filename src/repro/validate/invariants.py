"""Per-result structural invariants: layer one of the validation oracle.

Every :class:`~repro.stats.results.SimResult` must satisfy a set of
relationships that hold by construction of the machine model -- counter
sanity (a cache cannot miss more often than it is accessed), utilisation
bounds (issue bandwidth and window occupancy cannot exceed what the
configuration provides), discard provenance (redundant work only exists
where a mispredict or an enlarged-block fault created it) and
architectural-work agreement with the functional interpreter trace.  A
violated invariant means the *simulator* is wrong, not the workload, so
every check emits an ``error``-severity finding.

These checks are deliberately independent of the engines' own
``self_check`` (which raises :class:`EngineDivergence` inline): the
oracle re-derives each relationship from the recorded counters alone, so
it also catches results corrupted between simulation and reporting
(cache decode bugs, bad merges from parallel workers).
"""

from __future__ import annotations

from typing import List, Optional

from ..machine.config import BranchMode, Discipline
from ..stats.results import SimResult
from .findings import SEVERITY_ERROR, ValidationFinding

#: Slack for floating-point derived ratios (utilisation, occupancy).
_RATIO_EPS = 1e-9

#: The closed vocabulary of invariant rule identifiers.
INVARIANT_RULES = (
    "invariant.counts",
    "invariant.cache",
    "invariant.issue",
    "invariant.window",
    "invariant.redundancy",
    "invariant.branch",
    "invariant.value",
    "invariant.work",
)


def _finding(result: SimResult, rule: str, message: str,
             measured: float, expected: float) -> ValidationFinding:
    return ValidationFinding(
        rule=rule,
        severity=SEVERITY_ERROR,
        benchmark=result.benchmark,
        config=str(result.config),
        message=message,
        measured=float(measured),
        expected=float(expected),
    )


def check_result(result: SimResult,
                 trace_retired: Optional[int] = None,
                 ) -> List[ValidationFinding]:
    """Every violated structural invariant of one simulation result.

    ``trace_retired``, when supplied, is the functional interpreter
    trace's retired-node count for the program this configuration ran
    (``workload.trace_for(config.branch_mode).retired_nodes``); the
    retired-work agreement check then compares against it exactly.
    Without it the check falls back to ``work_nodes`` (the single-block
    program's retired count), which pins single-block results only.
    """
    findings: List[ValidationFinding] = []
    config = result.config

    # ---- counter sanity ----------------------------------------------
    for name in ("cycles", "retired_nodes", "discarded_nodes",
                 "mispredicts", "branch_lookups", "faults",
                 "cache_accesses", "cache_misses", "issue_words",
                 "issued_slots", "window_samples"):
        value = getattr(result, name)
        if value < 0:
            findings.append(_finding(
                result, "invariant.counts",
                f"{name} is negative", value, 0,
            ))
    if result.executed_nodes < result.retired_nodes:
        findings.append(_finding(
            result, "invariant.counts",
            "executed_nodes fell below retired_nodes",
            result.executed_nodes, result.retired_nodes,
        ))

    # ---- memory hierarchy --------------------------------------------
    if result.cache_misses > result.cache_accesses:
        findings.append(_finding(
            result, "invariant.cache",
            "cache_misses exceeds cache_accesses",
            result.cache_misses, result.cache_accesses,
        ))
    if config.memory_config.is_perfect and result.cache_accesses:
        findings.append(_finding(
            result, "invariant.cache",
            f"perfect memory {config.memory} recorded cache accesses",
            result.cache_accesses, 0,
        ))

    # ---- issue bandwidth ---------------------------------------------
    utilization = result.issue_utilization
    if utilization > 1.0 + _RATIO_EPS:
        findings.append(_finding(
            result, "invariant.issue",
            "issue_utilization exceeds the configured bandwidth",
            utilization, 1.0,
        ))

    # ---- window occupancy --------------------------------------------
    if config.discipline is Discipline.DYNAMIC:
        occupancy = result.avg_window_blocks
        if occupancy > config.window_blocks + _RATIO_EPS:
            findings.append(_finding(
                result, "invariant.window",
                "mean window occupancy exceeds the configured window",
                occupancy, config.window_blocks,
            ))
    elif result.window_samples:
        findings.append(_finding(
            result, "invariant.window",
            "static machine recorded window occupancy samples",
            result.window_samples, 0,
        ))

    # ---- discard provenance ------------------------------------------
    # Redundant (discarded) work only exists where speculation went
    # wrong: a mispredicted branch, a signalling enlarged-block assert,
    # or a squashed value prediction replaying dependents.  In
    # particular a perfectly predicted single-block run without value
    # speculation must show zero redundancy.
    if result.discarded_nodes and not (
        result.mispredicts or result.faults or result.value_squashed
    ):
        findings.append(_finding(
            result, "invariant.redundancy",
            "discarded nodes without any mispredict or fault",
            result.discarded_nodes, 0,
        ))
    if config.branch_mode is BranchMode.SINGLE and result.faults:
        findings.append(_finding(
            result, "invariant.redundancy",
            "single-block program recorded enlarged-block faults",
            result.faults, 0,
        ))

    # ---- branch accounting -------------------------------------------
    if result.mispredicts > result.branch_lookups:
        findings.append(_finding(
            result, "invariant.branch",
            "mispredicts exceeds branch_lookups",
            result.mispredicts, result.branch_lookups,
        ))
    if config.branch_mode is BranchMode.PERFECT and result.mispredicts:
        findings.append(_finding(
            result, "invariant.branch",
            "perfect prediction recorded mispredicts",
            result.mispredicts, 0,
        ))

    # ---- value-speculation accounting --------------------------------
    # Every delivered prediction is settled exactly once by the verify
    # step, replays only exist downstream of a squash, the oracle never
    # squashes, and a machine without a value predictor records nothing.
    settled = result.value_confirmed + result.value_squashed
    if settled != result.value_predictions:
        findings.append(_finding(
            result, "invariant.value",
            "confirmed + squashed disagrees with delivered predictions",
            settled, result.value_predictions,
        ))
    if result.value_replays and not result.value_squashed:
        findings.append(_finding(
            result, "invariant.value",
            "dependent replays recorded without any squashed prediction",
            result.value_replays, 0,
        ))
    if config.value_predictor == "perfect" and result.value_squashed:
        findings.append(_finding(
            result, "invariant.value",
            "the perfect value oracle recorded squashes",
            result.value_squashed, 0,
        ))
    if config.value_predictor == "none" and (
        result.value_predictions or result.value_replays
    ):
        findings.append(_finding(
            result, "invariant.value",
            "value-speculation counters without a value predictor",
            result.value_predictions or result.value_replays, 0,
        ))

    # ---- retired-work agreement --------------------------------------
    if trace_retired is not None:
        if result.retired_nodes != trace_retired:
            findings.append(_finding(
                result, "invariant.work",
                "retired_nodes disagrees with the interpreter trace",
                result.retired_nodes, trace_retired,
            ))
    elif (
        config.branch_mode is BranchMode.SINGLE
        and result.work_nodes
        and result.retired_nodes != result.work_nodes
    ):
        # The single-block program retires exactly the architectural
        # work the functional run recorded.
        findings.append(_finding(
            result, "invariant.work",
            "single-block retired_nodes disagrees with work_nodes",
            result.retired_nodes, result.work_nodes,
        ))
    return findings


def check_results(results, ) -> List[ValidationFinding]:
    """Invariant findings over a batch of results, in input order."""
    findings: List[ValidationFinding] = []
    for result in results:
        findings.extend(check_result(result))
    return findings
