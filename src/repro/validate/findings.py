"""Typed validation findings: what the oracle reports instead of raising.

A :class:`ValidationFinding` records one violated relationship -- a
structural invariant on a single result, a dominance ordering between
two configuration points, or a drift from a golden baseline -- with a
stable ``rule`` identifier and a severity.  Findings are plain data so
they serialise into ``telemetry.json`` and flow through the same
reporting machinery as :class:`repro.harness.errors.PointFailure`
records; the oracle never aborts a sweep.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

#: Severity levels, in gating order.  ``error`` findings gate exit codes
#: (``repro-sim validate`` and ``sweep --validate`` exit 4); ``warning``
#: findings are reported but never gate; ``info`` is purely advisory.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass
class ValidationFinding:
    """One violated validation rule, recorded instead of raised.

    ``config`` names the offending point; for pairwise rules
    (dominance, baseline drift) ``reference`` names the point or
    baseline entry it was compared against.  ``measured`` and
    ``expected`` carry the two sides of the violated relation in the
    rule's metric.
    """

    rule: str
    severity: str
    benchmark: str
    config: str
    message: str
    reference: str = ""
    measured: float = 0.0
    expected: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (``telemetry.json``'s ``validation`` section)."""
        record = asdict(self)
        if not record["extra"]:
            del record["extra"]
        return record

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ValidationFinding":
        return cls(
            rule=str(raw.get("rule", "unknown")),
            severity=str(raw.get("severity", SEVERITY_ERROR)),
            benchmark=str(raw.get("benchmark", "")),
            config=str(raw.get("config", "")),
            message=str(raw.get("message", "")),
            reference=str(raw.get("reference", "")),
            measured=float(raw.get("measured", 0.0)),
            expected=float(raw.get("expected", 0.0)),
            extra=dict(raw.get("extra", {})),
        )

    def sort_key(self) -> Tuple[int, str, str, str, str]:
        """Deterministic ordering: severity, then rule, then the points.

        Parallel sweeps merge outcomes in completion order, so findings
        are sorted before reporting -- a serial and a ``--jobs N`` run of
        the same grid must produce byte-identical finding lists.
        """
        return (
            _SEVERITY_RANK.get(self.severity, len(SEVERITIES)),
            self.rule,
            self.benchmark,
            self.config,
            self.reference,
        )

    def summary(self) -> str:
        """One-line human-readable description."""
        line = (
            f"[{self.severity}] {self.rule}: {self.benchmark} {self.config}"
        )
        if self.reference:
            line += f" vs {self.reference}"
        return f"{line} -- {self.message}"


def sort_findings(findings: Iterable[ValidationFinding]
                  ) -> List[ValidationFinding]:
    """Findings in the deterministic reporting order."""
    return sorted(findings, key=ValidationFinding.sort_key)


def count_by_severity(findings: Iterable[ValidationFinding]
                      ) -> Dict[str, int]:
    """``{severity: count}`` over the known severity levels."""
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return counts


def has_errors(findings: Iterable[ValidationFinding]) -> bool:
    """Whether any finding is gating (``error`` severity)."""
    return any(f.severity == SEVERITY_ERROR for f in findings)
