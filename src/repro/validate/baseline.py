"""Golden-baseline regression gating: layer three of the validation oracle.

``repro-sim validate --record`` snapshots the key metrics of every point
in a grid into a versioned ``baselines/*.json`` document;
``--check`` replays the same grid and compares against the snapshot with
per-metric drift tolerances, so CI can gate regressions in
``retired_per_cycle``, ``redundancy``, ``mispredicts`` and ``cycles``
across PRs without re-deriving the paper's figures.

Versioning rule: a baseline records the simulator's ``CACHE_VERSION``
at record time, and its per-point keys are the result-cache keys (which
embed that version).  A simulator-behaviour bump therefore makes every
stored key unmatchable *and* trips an explicit ``baseline.version``
finding telling the operator to re-record -- stale baselines fail loudly
instead of silently comparing nothing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..stats.results import SimResult
from .findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    ValidationFinding,
)

#: Version tag of the baseline document layout.
BASELINE_SCHEMA = "repro.baseline/1"

#: Default directory for committed baselines, relative to the repo root.
BASELINE_DIR = "baselines"

#: Metric -> drift tolerance.  Floats compare relatively (fraction of
#: the recorded value, falling back to absolute drift when the recorded
#: value is zero); integer-exact metrics use tolerance 0.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "retired_per_cycle": 0.01,
    "redundancy": 0.01,
    "mispredicts": 0.0,
    "cycles": 0.01,
}


def default_baseline_path(benchmarks: Sequence[str], smoke: bool = False,
                          grid: Optional[str] = None) -> str:
    """The conventional on-disk location for one grid's baseline.

    ``grid`` names the grid directly (``smoke``, ``full``, ``spec``,
    ...); the older boolean ``smoke`` flag is kept for callers predating
    the named-grid family.
    """
    if grid is None:
        grid = "smoke" if smoke else "full"
    return os.path.join(
        BASELINE_DIR, f"{grid}-{'-'.join(benchmarks)}.json"
    )


def _point_metrics(result: SimResult) -> Dict[str, float]:
    return {
        "retired_per_cycle": result.retired_per_cycle,
        "redundancy": result.redundancy,
        "mispredicts": result.mispredicts,
        "cycles": result.cycles,
    }


def _point_key(result: SimResult, scale: int) -> str:
    # Lazy import: harness.cache sits above the validate layer in some
    # import chains (harness/__init__ -> runner -> validate), so binding
    # it at call time keeps package initialisation order-independent.
    from ..harness.cache import result_key

    return result_key(result.benchmark, result.config, scale)


def record_baseline(results: Iterable[SimResult], scale: int,
                    path: str) -> Dict[str, Any]:
    """Write one grid's golden baseline document and return it.

    The document is rendered with sorted keys and an indent so committed
    baselines diff cleanly under review.
    """
    from ..harness.cache import CACHE_VERSION, atomic_write_json

    results = list(results)
    points = {
        _point_key(result, scale): _point_metrics(result)
        for result in results
    }
    document = {
        "schema": BASELINE_SCHEMA,
        "cache_version": CACHE_VERSION,
        "scale": scale,
        "benchmarks": sorted({result.benchmark for result in results}),
        "points": dict(sorted(points.items())),
    }
    atomic_write_json(path, document, indent=2)
    return document


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    """Read a baseline document; None when missing or unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict) or raw.get("schema") != BASELINE_SCHEMA:
        return None
    return raw


def _drift_finding(result: SimResult, metric: str, measured: float,
                   recorded: float, tolerance: float) -> ValidationFinding:
    return ValidationFinding(
        rule="baseline.drift",
        severity=SEVERITY_ERROR,
        benchmark=result.benchmark,
        config=str(result.config),
        reference=metric,
        message=(
            f"{metric} drifted from the golden baseline:"
            f" {measured:.6g} vs recorded {recorded:.6g}"
            f" (tolerance {tolerance:g})"
        ),
        measured=float(measured),
        expected=float(recorded),
    )


def check_baseline(results: Iterable[SimResult], scale: int, path: str,
                   tolerances: Optional[Dict[str, float]] = None,
                   ) -> List[ValidationFinding]:
    """Compare a grid's results against a recorded golden baseline.

    Error findings gate: a missing or unreadable baseline, a
    ``CACHE_VERSION`` or scale mismatch (stale baseline -- re-record),
    and any per-metric drift beyond tolerance.  Coverage asymmetries are
    warnings: points missing from the baseline (new grid cells) and
    baseline entries the current run did not cover (partial grids).
    """
    from ..harness.cache import CACHE_VERSION

    tols = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tols.update(tolerances)
    results = list(results)
    findings: List[ValidationFinding] = []

    document = load_baseline(path)
    if document is None:
        findings.append(ValidationFinding(
            rule="baseline.missing",
            severity=SEVERITY_ERROR,
            benchmark="",
            config=path,
            message=(
                "no readable golden baseline at this path;"
                " run `repro-sim validate --record` to create one"
            ),
        ))
        return findings
    if document.get("cache_version") != CACHE_VERSION:
        findings.append(ValidationFinding(
            rule="baseline.version",
            severity=SEVERITY_ERROR,
            benchmark="",
            config=path,
            message=(
                f"baseline was recorded at CACHE_VERSION"
                f" {document.get('cache_version')} but the simulator is at"
                f" {CACHE_VERSION}; re-record the baseline"
            ),
            measured=float(document.get("cache_version") or 0),
            expected=float(CACHE_VERSION),
        ))
        return findings
    if document.get("scale") != scale:
        findings.append(ValidationFinding(
            rule="baseline.scale",
            severity=SEVERITY_ERROR,
            benchmark="",
            config=path,
            message=(
                f"baseline was recorded at scale {document.get('scale')}"
                f" but this run used scale {scale}; re-record or rerun"
            ),
            measured=float(scale),
            expected=float(document.get("scale") or 0),
        ))
        return findings

    recorded_points: Dict[str, Dict[str, float]] = document.get("points", {})
    covered = set()
    for result in results:
        key = _point_key(result, scale)
        covered.add(key)
        recorded = recorded_points.get(key)
        if recorded is None:
            findings.append(ValidationFinding(
                rule="baseline.unrecorded",
                severity=SEVERITY_WARNING,
                benchmark=result.benchmark,
                config=str(result.config),
                message="point not present in the golden baseline",
            ))
            continue
        measured = _point_metrics(result)
        for metric, tolerance in sorted(tols.items()):
            if metric not in recorded:
                continue
            drift = abs(measured[metric] - recorded[metric])
            allowed = (
                abs(recorded[metric]) * tolerance
                if recorded[metric] else tolerance
            )
            if drift > allowed:
                findings.append(_drift_finding(
                    result, metric, measured[metric], recorded[metric],
                    tolerance,
                ))
    for key in sorted(set(recorded_points) - covered):
        findings.append(ValidationFinding(
            rule="baseline.uncovered",
            severity=SEVERITY_WARNING,
            benchmark="",
            config=key,
            message="baseline point not covered by this run",
        ))
    return findings
