"""Cross-configuration dominance: layer two of the validation oracle.

The paper's argument is built from ordered comparisons across its
configuration grid: a strictly more capable machine must never lose.
Four partial orders are machine-checked over a sweep's result set, each
comparing ``retired_per_cycle`` (the paper's figure of merit) between
two points that differ in exactly one axis:

* ``dominance.window``  -- dynamic window 256 >= 4 >= 1 (same branch
  handling, issue model and memory);
* ``dominance.issue``   -- wider issue models >= narrower ones (the
  paper's models 1..8 are component-wise nested, as are the extension
  models 9 and 10);
* ``dominance.memory``  -- faster perfect memories win: A >= B >= C
  (1-, 2- and 3-cycle constant latency);
* ``dominance.branch``  -- perfect prediction >= realistic prediction
  on the same enlarged program (dyn4/dyn256), whichever realistic
  predictor scheme (2-bit, gshare, perceptron) produced the point;
* ``dominance.value``   -- more capable value predictors never lose at
  equal geometry: the oracle dominates everything, ``stride`` and
  ``context`` each dominate ``last``, and any predictor beats no
  speculation.  ``stride`` and ``context`` are deliberately *not*
  ordered against each other: arithmetic sequences favour the stride
  table, repeating non-arithmetic patterns favour the FCM, and measured
  grids show each winning on different workloads;
* ``dominance.sched``   -- the exact static scheduler never loses to
  the greedy list scheduler at equal configuration: the optimal
  schedule is seeded with the list schedule as its upper bound, so a
  loss would indicate a solver or engine bug, not a modelling choice.

A violation emits one ``error`` finding naming both points; nothing is
raised, so findings flow into ``telemetry.json`` and the sweep's exit
code machinery.  ``rel_tol`` forgives losses smaller than the given
relative fraction -- the simulator is deterministic, so the default
tolerance is small, but second-order effects (a bigger window issuing
more wrong-path work into finite bandwidth) legitimately produce
sub-percent inversions on tiny inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..machine.config import BranchMode, MEMORY_CONFIGS
from ..stats.results import SimResult
from .findings import SEVERITY_ERROR, ValidationFinding

#: Default relative tolerance for ordered-pair comparisons.
DEFAULT_REL_TOL = 0.02

#: The closed vocabulary of dominance rule identifiers.
DOMINANCE_RULES = (
    "dominance.window",
    "dominance.issue",
    "dominance.memory",
    "dominance.branch",
    "dominance.value",
    "dominance.sched",
)

#: The value-predictor partial order as weakest-first chains sharing
#: endpoints: ``stride`` and ``context`` are incomparable, so each gets
#: its own chain from ``none`` up to the ``perfect`` oracle.
_VALUE_CHAINS = (
    ("none", "last", "stride", "perfect"),
    ("none", "last", "context", "perfect"),
)

#: Perfect-memory chain, fastest first (Figure 4's left-hand group).
_PERFECT_MEMORY_ORDER = tuple(
    letter for letter, memory in sorted(
        MEMORY_CONFIGS.items(), key=lambda item: item[1].hit_cycles
    )
    if memory.is_perfect
)

#: One point's coordinates: (benchmark, line, issue index, memory
#: letter, branch-predictor kind, value-predictor kind, optimal-schedule
#: flag) where ``line`` is ``config.discipline_key()``.  The predictor
#: and scheduler axes keep spec-/sched-grid points (gshare/perceptron
#: variants, value-speculation sweeps, exact-schedule runs) from
#: colliding with -- and silently replacing -- paper-grid points in the
#: index.
_Coord = Tuple[str, str, int, str, str, str, bool]


def _index(results: Iterable[SimResult]) -> Dict[_Coord, SimResult]:
    """Results keyed by grid coordinate (later duplicates win)."""
    indexed: Dict[_Coord, SimResult] = {}
    for result in results:
        config = result.config
        coord = (result.benchmark, config.discipline_key(),
                 config.issue_model, config.memory,
                 config.predictor, config.value_predictor,
                 config.optimal_schedule)
        indexed[coord] = result
    return indexed


def _violation(rule: str, stronger: SimResult, weaker: SimResult,
               rel_tol: float, axis: str) -> ValidationFinding:
    return ValidationFinding(
        rule=rule,
        severity=SEVERITY_ERROR,
        benchmark=stronger.benchmark,
        config=str(stronger.config),
        reference=str(weaker.config),
        message=(
            f"the stronger {axis} lost: "
            f"{stronger.retired_per_cycle:.6f} < "
            f"{weaker.retired_per_cycle:.6f} IPC"
            f" (rel_tol {rel_tol:g})"
        ),
        measured=stronger.retired_per_cycle,
        expected=weaker.retired_per_cycle,
    )


def _dominates(stronger: SimResult, weaker: SimResult,
               rel_tol: float) -> bool:
    """Whether ``stronger`` is at least as fast, within tolerance."""
    return (
        stronger.retired_per_cycle
        >= weaker.retired_per_cycle * (1.0 - rel_tol)
    )


def _chain_pairs(indexed: Dict[_Coord, SimResult],
                 coords: List[_Coord]) -> Iterable[Tuple[SimResult, SimResult]]:
    """Consecutive present pairs along one ordered coordinate chain.

    ``coords`` is ordered weakest first; each yielded pair is
    ``(stronger, weaker)`` for adjacent points that both exist, so a
    partial grid (``--limit``, subsets) is compared as far as it goes.
    """
    present = [indexed[coord] for coord in coords if coord in indexed]
    for weaker, stronger in zip(present, present[1:]):
        yield stronger, weaker


def check_dominance(results: Iterable[SimResult],
                    rel_tol: Optional[float] = None,
                    ) -> List[ValidationFinding]:
    """Every violated partial order over one sweep's result set.

    Only pairs present in ``results`` are compared, so partial grids
    validate as far as their coverage allows; order of ``results`` does
    not affect the findings (they are emitted in a deterministic
    coordinate order).
    """
    tol = DEFAULT_REL_TOL if rel_tol is None else rel_tol
    indexed = _index(results)
    findings: List[ValidationFinding] = []

    benchmarks = sorted({coord[0] for coord in indexed})
    lines = sorted({coord[1] for coord in indexed})
    issues = sorted({coord[2] for coord in indexed})
    memories = sorted({coord[3] for coord in indexed})
    predictors = sorted({coord[4] for coord in indexed})
    value_predictors = sorted({coord[5] for coord in indexed})
    scheds = sorted({coord[6] for coord in indexed})

    # ---- dominance.window: dyn256 >= dyn4 >= dyn1 --------------------
    for benchmark in benchmarks:
        for mode in BranchMode:
            windows = sorted(
                int(line[3:].split("/")[0])
                for line in lines
                if line.startswith("dyn") and line.endswith(f"/{mode.value}")
            )
            for issue in issues:
                for memory in memories:
                    for pred in predictors:
                        for vp in value_predictors:
                            chain = [
                                (benchmark, f"dyn{window}/{mode.value}",
                                 issue, memory, pred, vp, False)
                                for window in windows
                            ]
                            for stronger, weaker in _chain_pairs(
                                indexed, chain
                            ):
                                if not _dominates(stronger, weaker, tol):
                                    findings.append(_violation(
                                        "dominance.window", stronger,
                                        weaker, tol, "window",
                                    ))

    # ---- dominance.issue: wider models win ---------------------------
    for benchmark in benchmarks:
        for line in lines:
            for memory in memories:
                for pred in predictors:
                    for vp in value_predictors:
                        for opt in scheds:
                            chain = [
                                (benchmark, line, issue, memory, pred, vp,
                                 opt)
                                for issue in issues
                            ]
                            for stronger, weaker in _chain_pairs(
                                indexed, chain
                            ):
                                if not _dominates(stronger, weaker, tol):
                                    findings.append(_violation(
                                        "dominance.issue", stronger,
                                        weaker, tol, "issue model",
                                    ))

    # ---- dominance.memory: perfect A >= B >= C -----------------------
    for benchmark in benchmarks:
        for line in lines:
            for issue in issues:
                for pred in predictors:
                    for vp in value_predictors:
                        for opt in scheds:
                            chain = [
                                (benchmark, line, issue, memory, pred, vp,
                                 opt)
                                for memory in reversed(_PERFECT_MEMORY_ORDER)
                            ]
                            for stronger, weaker in _chain_pairs(
                                indexed, chain
                            ):
                                if not _dominates(stronger, weaker, tol):
                                    findings.append(_violation(
                                        "dominance.memory", stronger,
                                        weaker, tol, "memory",
                                    ))

    # ---- dominance.branch: perfect prediction >= realistic -----------
    # Perfect-mode points carry the default predictor kind (the axis is
    # inert under oracle prediction), so each realistic scheme compares
    # against its own-kind perfect point when present, else the default.
    for benchmark in benchmarks:
        for window in (4, 256):
            for issue in issues:
                for memory in memories:
                    for pred in predictors:
                        for vp in value_predictors:
                            perfect = indexed.get((
                                benchmark, f"dyn{window}/perfect", issue,
                                memory, pred, vp, False,
                            )) or indexed.get((
                                benchmark, f"dyn{window}/perfect", issue,
                                memory, "twobit", vp, False,
                            ))
                            realistic = indexed.get((
                                benchmark, f"dyn{window}/enlarged", issue,
                                memory, pred, vp, False,
                            ))
                            if perfect is None or realistic is None:
                                continue
                            if not _dominates(perfect, realistic, tol):
                                findings.append(_violation(
                                    "dominance.branch", perfect,
                                    realistic, tol, "branch handling",
                                ))

    # ---- dominance.value: stronger value predictors never lose -------
    for benchmark in benchmarks:
        for line in lines:
            for issue in issues:
                for memory in memories:
                    for pred in predictors:
                        for kinds in _VALUE_CHAINS:
                            chain = [
                                (benchmark, line, issue, memory, pred, vp,
                                 False)
                                for vp in kinds
                            ]
                            for stronger, weaker in _chain_pairs(
                                indexed, chain
                            ):
                                if not _dominates(stronger, weaker, tol):
                                    findings.append(_violation(
                                        "dominance.value", stronger,
                                        weaker, tol, "value predictor",
                                    ))

    # ---- dominance.sched: exact schedules never lose to greedy -------
    # A certified-optimal schedule is never longer than the list
    # schedule on any block, so at equal configuration the optimal
    # machine's IPC must be at least the list machine's.
    for benchmark in benchmarks:
        for line in lines:
            for issue in issues:
                for memory in memories:
                    for pred in predictors:
                        for vp in value_predictors:
                            chain = [
                                (benchmark, line, issue, memory, pred, vp,
                                 opt)
                                for opt in (False, True)
                            ]
                            for stronger, weaker in _chain_pairs(
                                indexed, chain
                            ):
                                if not _dominates(stronger, weaker, tol):
                                    findings.append(_violation(
                                        "dominance.sched", stronger,
                                        weaker, tol, "static scheduler",
                                    ))
    return findings
