"""Validation oracle: invariants, dominance orders, golden baselines.

Three layers of machine-checked correctness over simulation results
(see DESIGN.md "Validation & regression gating"):

* :mod:`~repro.validate.invariants` -- structural checks every
  :class:`~repro.stats.results.SimResult` must satisfy;
* :mod:`~repro.validate.dominance` -- the paper's partial orders
  (bigger windows, wider issue, faster memories, better branch
  handling must never lose) over a sweep's result set;
* :mod:`~repro.validate.baseline` -- versioned golden baselines with
  per-metric drift tolerances, recorded by ``repro-sim validate
  --record`` and gated by ``--check``.

All layers emit typed :class:`ValidationFinding` records instead of
raising, so findings flow into ``telemetry.json`` and the sweep's
exit-code machinery alongside ``PointFailure`` records.
"""

from .baseline import (
    BASELINE_SCHEMA,
    DEFAULT_TOLERANCES,
    check_baseline,
    default_baseline_path,
    load_baseline,
    record_baseline,
)
from .dominance import DEFAULT_REL_TOL, DOMINANCE_RULES, check_dominance
from .findings import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    ValidationFinding,
    count_by_severity,
    has_errors,
    sort_findings,
)
from .invariants import INVARIANT_RULES, check_result, check_results
from .oracle import VALIDATION_SCHEMA, ValidationReport, run_oracle

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_REL_TOL",
    "DEFAULT_TOLERANCES",
    "DOMINANCE_RULES",
    "INVARIANT_RULES",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "VALIDATION_SCHEMA",
    "ValidationFinding",
    "ValidationReport",
    "check_baseline",
    "check_dominance",
    "check_result",
    "check_results",
    "count_by_severity",
    "default_baseline_path",
    "has_errors",
    "load_baseline",
    "record_baseline",
    "run_oracle",
    "sort_findings",
]
