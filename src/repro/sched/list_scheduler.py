"""List scheduling of basic blocks into multi-node words.

This is the back half of the translating loader for statically scheduled
machines: each (possibly enlarged) basic block is packed into a sequence
of instruction words shaped by the issue model, honouring

* flow dependences (with the producer's assumed latency),
* anti and output register dependences (no renaming in hardware),
* conservative memory ordering: two memory nodes are ordered unless the
  compiler can prove they cannot alias -- same base register (and same
  definition of it) with disjoint offset ranges, or bases known to point
  into distinct segments (sp: stack, gp: globals),
* the terminator issuing no earlier than any other node (it ends the
  block).

The dynamic engines ignore word packing entirely; this module is only
consulted by the static engine.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..isa.node import Node
from ..isa.ops import NodeKind
from ..isa.registers import GP, SP
from ..machine.config import IssueModel, MemoryConfig
from ..program.block import BasicBlock
from ..program.program import Program
from .latency import node_latency

#: Register bases guaranteed to address disjoint memory segments.
_SEGMENT_BASES = frozenset({SP, GP})


class ScheduledBlock:
    """A block packed into issue words.

    ``words`` holds node indices (into ``list(block.nodes())``) grouped by
    issue cycle; ``mem_rank[i]`` gives, for memory node ``i``, its rank in
    original body order (used to look up trace-recorded addresses).
    """

    __slots__ = ("label", "words", "mem_rank", "node_count")

    def __init__(self, label: str, words: List[List[int]],
                 mem_rank: Dict[int, int], node_count: int):
        self.label = label
        self.words = words
        self.mem_rank = mem_rank
        self.node_count = node_count


def may_alias(a: Node, a_version: int, b: Node, b_version: int) -> bool:
    """Conservative static alias test between two memory nodes.

    ``a_version`` / ``b_version`` count redefinitions of the node's base
    register at the point the node executes: offsets are only comparable
    while both accesses see the *same* definition of a shared base.
    """
    if a.base in _SEGMENT_BASES and b.base in _SEGMENT_BASES and a.base != b.base:
        return False
    if a.base == b.base and a_version == b_version:
        a_end = a.offset + a.width.value
        b_end = b.offset + b.width.value
        return not (a_end <= b.offset or b_end <= a.offset)
    return True


def build_dependences(nodes: Sequence[Node], memory: MemoryConfig):
    """Edges ``preds[i] = [(j, latency), ...]`` meaning i waits on j.

    This relation -- flow/anti/output register dependences, the
    conservative memory ordering built on :func:`may_alias`, and the
    terminator-last edges -- is shared verbatim by the greedy list
    scheduler below and the exact solver in :mod:`repro.optsched`, so
    both schedulers solve the *same* constraint set and their makespans
    are directly comparable.
    """
    preds: List[List[Tuple[int, int]]] = [[] for _ in nodes]
    last_writer: Dict[int, int] = {}
    writer_version: Dict[int, int] = {}
    readers: Dict[int, List[int]] = {}
    mem_history: List[Tuple[int, Node, int]] = []  # (index, node, base_version)

    for index, node in enumerate(nodes):
        lat_of = lambda j: node_latency(nodes[j].kind, memory)
        for src in node.source_regs():
            writer = last_writer.get(src)
            if writer is not None:
                preds[index].append((writer, lat_of(writer)))
            readers.setdefault(src, []).append(index)

        if node.is_memory:
            version = writer_version.get(node.base, 0)
            is_store = node.kind is NodeKind.STORE
            for other_index, other, other_version in mem_history:
                other_store = other.kind is NodeKind.STORE
                if not is_store and not other_store:
                    continue  # load/load need no ordering
                if may_alias(node, version, other, other_version):
                    # Store results land in the write buffer one cycle
                    # after execution; a dependent load sees them then.
                    latency = 1 if other_store else 0
                    preds[index].append((other_index, latency))
            mem_history.append((index, node, version))

        dest = node.dest_reg()
        if dest is not None:
            prior = last_writer.get(dest)
            if prior is not None:
                preds[index].append((prior, 1))  # output dependence
            for reader in readers.get(dest, ()):
                if reader != index:
                    preds[index].append((reader, 0))  # anti dependence
            last_writer[dest] = index
            writer_version[dest] = writer_version.get(dest, 0) + 1
            readers[dest] = []

    # The terminator issues no earlier than any other node.
    last = len(nodes) - 1
    for index in range(last):
        preds[last].append((index, 0))
    return preds


def schedule_block(block: BasicBlock, issue: IssueModel,
                   memory: MemoryConfig) -> ScheduledBlock:
    """Pack one block into issue words by critical-path list scheduling."""
    nodes = list(block.nodes())
    count = len(nodes)
    preds = build_dependences(nodes, memory)
    succs: List[List[Tuple[int, int]]] = [[] for _ in nodes]
    indegree = [0] * count
    for index, plist in enumerate(preds):
        indegree[index] = len(plist)
        for pred, latency in plist:
            succs[pred].append((index, latency))

    # Priority: longest latency-weighted path to any sink.
    height = [0] * count
    for index in range(count - 1, -1, -1):
        best = 0
        for succ, latency in succs[index]:
            candidate = height[succ] + max(latency, 1)
            if candidate > best:
                best = candidate
        height[index] = best

    earliest = [0] * count
    remaining = count
    scheduled_cycle = [-1] * count
    ready: List[int] = [i for i in range(count) if indegree[i] == 0]
    words: List[List[int]] = []
    cycle = 0

    while remaining:
        available = sorted(
            (i for i in ready if earliest[i] <= cycle),
            key=lambda i: (-height[i], i),
        )
        mem_left = issue.mem_slots
        alu_left = issue.alu_slots
        total_left = 1 if issue.sequential else count
        word: List[int] = []
        for index in available:
            if total_left <= 0:
                break
            node = nodes[index]
            if node.kind is NodeKind.SYSCALL:
                pass  # occupies no datapath slot
            elif node.is_memory:
                if mem_left <= 0:
                    continue
                mem_left -= 1
            else:
                if alu_left <= 0:
                    continue
                alu_left -= 1
            total_left -= 1
            word.append(index)
            scheduled_cycle[index] = cycle
            ready.remove(index)
            remaining -= 1
            for succ, latency in succs[index]:
                start = cycle + latency
                if start > earliest[succ]:
                    earliest[succ] = start
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        words.append(word)
        cycle += 1

    # Drop leading/embedded empty words at the tail only if fully empty
    # schedule (cannot happen: terminator always schedules).
    mem_rank: Dict[int, int] = {}
    rank = 0
    for index, node in enumerate(nodes):
        if node.is_memory:
            mem_rank[index] = rank
            rank += 1
    return ScheduledBlock(block.label, words, mem_rank, count)


def schedule_program(program: Program, issue: IssueModel,
                     memory: MemoryConfig) -> Dict[str, ScheduledBlock]:
    """Schedule every block of a program for one machine configuration."""
    return {
        block.label: schedule_block(block, issue, memory) for block in program
    }
