"""Scheduling latencies assumed by the static compiler.

The statically scheduled machine exposes its pipeline to the compiler:
ALU results are available the next cycle and loads are scheduled assuming
the cache-hit latency of the target memory configuration (a miss stalls
the pipeline at the consumer, which the run-time engine models).
"""

from __future__ import annotations

from ..isa.ops import NodeKind
from ..machine.config import MemoryConfig


def node_latency(kind: NodeKind, memory: MemoryConfig) -> int:
    """Latency in cycles the compiler assumes for a node of ``kind``."""
    if kind is NodeKind.LOAD:
        return memory.hit_cycles
    return 1
