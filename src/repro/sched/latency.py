"""Scheduling latencies assumed by the static compiler.

The statically scheduled machine exposes its pipeline to the compiler:
ALU results are available the next cycle and loads are scheduled assuming
the cache-hit latency of the target memory configuration (a miss stalls
the pipeline at the consumer, which the run-time engine models).

This module is the *single source of truth* for those assumptions: both
the greedy list scheduler (:mod:`repro.sched.list_scheduler`) and the
exact constraint solver (:mod:`repro.optsched`) consume
:func:`node_latency` / :func:`latency_table`, so the two schedulers can
never silently disagree about a node's latency (tested in
``tests/test_optsched.py``).
"""

from __future__ import annotations

from typing import Dict

from ..isa.ops import NodeKind
from ..machine.config import MemoryConfig

#: Baseline per-kind latencies in cycles.  ``None`` marks the one kind
#: whose latency is a property of the memory configuration rather than
#: the pipeline: loads are scheduled assuming the cache-hit latency.
BASE_LATENCIES: Dict[NodeKind, int] = {
    NodeKind.ALU: 1,
    NodeKind.LOAD: None,  # memory.hit_cycles
    NodeKind.STORE: 1,
    NodeKind.BRANCH: 1,
    NodeKind.JUMP: 1,
    NodeKind.CALL: 1,
    NodeKind.RET: 1,
    NodeKind.ASSERT: 1,
    NodeKind.SYSCALL: 1,
}


def latency_table(memory: MemoryConfig) -> Dict[NodeKind, int]:
    """The complete kind -> latency table for one memory configuration."""
    table = dict(BASE_LATENCIES)
    table[NodeKind.LOAD] = memory.hit_cycles
    return table


def node_latency(kind: NodeKind, memory: MemoryConfig) -> int:
    """Latency in cycles the compiler assumes for a node of ``kind``."""
    if kind is NodeKind.LOAD:
        return memory.hit_cycles
    base = BASE_LATENCIES.get(kind)
    return 1 if base is None else base
