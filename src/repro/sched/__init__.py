"""Static scheduling: list scheduler and latency model."""

from .latency import node_latency
from .list_scheduler import ScheduledBlock, schedule_block, schedule_program

__all__ = ["ScheduledBlock", "node_latency", "schedule_block", "schedule_program"]
