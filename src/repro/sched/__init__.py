"""Static scheduling: list scheduler, shared dependences, latency model."""

from .latency import BASE_LATENCIES, latency_table, node_latency
from .list_scheduler import (
    ScheduledBlock,
    build_dependences,
    may_alias,
    schedule_block,
    schedule_program,
)

__all__ = [
    "BASE_LATENCIES",
    "ScheduledBlock",
    "build_dependences",
    "latency_table",
    "may_alias",
    "node_latency",
    "schedule_block",
    "schedule_program",
]
