"""Graphviz DOT export of control-flow graphs.

Handy when studying what the optimiser or the enlargement planner did to
a program: ``repro-sim dump --dot`` or :func:`program_to_dot` directly.
Enlarged blocks are drawn as boxes with their origin sequence; fault
edges are dashed.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..isa.ops import NodeKind
from .program import Program


def _quote(label: str) -> str:
    return '"' + label.replace('"', '\\"') + '"'


def program_to_dot(program: Program, title: Optional[str] = None,
                   max_blocks: int = 500) -> str:
    """Render the program's CFG as DOT text.

    Edge styles: solid for branch/jump/fall-through, bold for calls,
    dashed for assert fault edges.  Blocks beyond ``max_blocks`` are
    elided with a note (huge programs make unreadable graphs anyway).
    """
    lines: List[str] = ["digraph cfg {"]
    lines.append('  node [shape=box, fontname="monospace"];')
    if title:
        lines.append(f"  label={_quote(title)};")

    shown: Set[str] = set()
    for index, block in enumerate(program):
        if index >= max_blocks:
            lines.append(
                f'  _elided [label="... {len(program) - max_blocks} more '
                'blocks elided", style=dotted];'
            )
            break
        shown.add(block.label)
        text = f"{block.label}\\n{block.datapath_size} nodes"
        if block.origin:
            text += "\\n[" + "+".join(block.origin) + "]"
        attributes = f"label={_quote(text)}"
        if block.label == program.entry:
            attributes += ", peripheries=2"
        if block.origin:
            attributes += ", style=filled, fillcolor=lightgrey"
        lines.append(f"  {_quote(block.label)} [{attributes}];")

    for block in program:
        if block.label not in shown:
            continue
        term = block.terminator
        if term.kind is NodeKind.BRANCH:
            lines.append(
                f"  {_quote(block.label)} -> {_quote(term.target)} "
                '[label="T"];'
            )
            lines.append(
                f"  {_quote(block.label)} -> {_quote(term.alt_target)} "
                '[label="F"];'
            )
        elif term.kind is NodeKind.JUMP:
            lines.append(f"  {_quote(block.label)} -> {_quote(term.target)};")
        elif term.kind is NodeKind.CALL:
            lines.append(
                f"  {_quote(block.label)} -> {_quote(term.target)} "
                "[style=bold];"
            )
            lines.append(
                f"  {_quote(block.label)} -> {_quote(term.alt_target)} "
                '[label="ret"];'
            )
        elif term.kind is NodeKind.SYSCALL and term.target is not None:
            lines.append(
                f"  {_quote(block.label)} -> {_quote(term.target)} "
                '[label="sys"];'
            )
        for node in block.body:
            if node.kind is NodeKind.ASSERT:
                lines.append(
                    f"  {_quote(block.label)} -> {_quote(node.target)} "
                    '[style=dashed, label="fault"];'
                )
    lines.append("}")
    return "\n".join(lines)
