"""Textual assembly printer for programs, blocks and nodes.

The format round-trips through :mod:`repro.program.parser` and is used in
tests, examples and the CLI's ``--dump`` mode.
"""

from __future__ import annotations

from typing import List

from ..isa.node import Imm, Node, Reg
from ..isa.ops import MemWidth, NodeKind
from ..isa.registers import reg_name
from .block import BasicBlock
from .program import Program


def _format_operand(operand) -> str:
    if isinstance(operand, Reg):
        return reg_name(operand.index)
    if isinstance(operand, Imm):
        return f"#{operand.value}"
    raise TypeError(f"not an operand: {operand!r}")


def _format_addr(node: Node) -> str:
    base = reg_name(node.base)
    if node.offset:
        return f"[{base}{node.offset:+d}]"
    return f"[{base}]"


def format_node(node: Node) -> str:
    """Render one node as a line of assembly (without indentation)."""
    kind = node.kind
    if kind is NodeKind.ALU:
        parts = [reg_name(node.dest), _format_operand(node.src1)]
        if node.src2 is not None:
            parts.append(_format_operand(node.src2))
        return f"{node.op.value} " + ", ".join(parts)
    if kind is NodeKind.LOAD:
        mnem = "ldw" if node.width is MemWidth.WORD else "ldb"
        return f"{mnem} {reg_name(node.dest)}, {_format_addr(node)}"
    if kind is NodeKind.STORE:
        mnem = "stw" if node.width is MemWidth.WORD else "stb"
        return f"{mnem} {_format_operand(node.src1)}, {_format_addr(node)}"
    if kind is NodeKind.BRANCH:
        text = f"br {_format_operand(node.src1)}, {node.target}, {node.alt_target}"
        if node.expect_taken is True:
            text += " !taken"
        elif node.expect_taken is False:
            text += " !nottaken"
        return text
    if kind is NodeKind.JUMP:
        return f"jmp {node.target}"
    if kind is NodeKind.CALL:
        return f"call {node.target}, ret={node.alt_target}"
    if kind is NodeKind.RET:
        return "ret"
    if kind is NodeKind.ASSERT:
        expected = 1 if node.expect_taken else 0
        return (
            f"assert {_format_operand(node.src1)}, {expected}, "
            f"fault={node.target}"
        )
    if kind is NodeKind.SYSCALL:
        args = ", ".join(reg_name(r) for r in node.args)
        text = f"sys {node.op.value}({args})"
        if node.dest is not None:
            text += f" -> {reg_name(node.dest)}"
        if node.target is not None:
            text += f", next={node.target}"
        return text
    raise ValueError(f"unknown node kind: {kind}")  # pragma: no cover


def format_block(block: BasicBlock) -> str:
    """Render a block with its label header and indented nodes."""
    lines: List[str] = []
    header = f"block {block.label}:"
    if block.origin:
        header += "  ; origin=" + "+".join(block.origin)
    lines.append(header)
    for node in block.nodes():
        lines.append("    " + format_node(node))
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render a whole program, including directives for entry and data."""
    lines: List[str] = [f".entry {program.entry}"]
    if program.data_size:
        lines.append(f".datasize {program.data_size}")
    if program.data:
        blob = program.data.hex()
        for i in range(0, len(blob), 64):
            lines.append(f".data {blob[i:i + 64]}")
    for name, addr in sorted(program.symbols.items()):
        lines.append(f".symbol {name} {addr}")
    lines.append("")
    for block in program:
        lines.append(format_block(block))
        lines.append("")
    return "\n".join(lines)
