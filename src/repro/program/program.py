"""The program container: blocks, entry point and the data segment."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..isa.ops import NodeKind
from .block import BasicBlock

#: Base address of the global data segment in simulated memory.  The page
#: at address zero is left unmapped so that null-pointer dereferences in
#: simulated programs fail loudly.
GLOBAL_BASE = 0x1000


class ProgramError(Exception):
    """Raised for structurally invalid programs."""


class Program:
    """A complete translated program.

    Attributes:
        blocks: label -> :class:`BasicBlock`, in layout order.
        entry: label of the first block executed.
        data: initialised bytes of the global segment (loaded at
            :data:`GLOBAL_BASE`).
        data_size: total global-segment size in bytes (>= ``len(data)``;
            the tail is zero-initialised).
        symbols: global symbol name -> absolute address, for debugging.
    """

    def __init__(
        self,
        blocks: Iterable[BasicBlock],
        entry: str,
        data: bytes = b"",
        data_size: Optional[int] = None,
        symbols: Optional[Dict[str, int]] = None,
    ):
        self.blocks: Dict[str, BasicBlock] = {}
        for block in blocks:
            if block.label in self.blocks:
                raise ProgramError(f"duplicate block label {block.label!r}")
            self.blocks[block.label] = block
        self.entry = entry
        self.data = data
        self.data_size = len(data) if data_size is None else data_size
        if self.data_size < len(data):
            raise ProgramError("data_size smaller than initialised data")
        self.symbols = dict(symbols or {})
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ProgramError`."""
        if self.entry not in self.blocks:
            raise ProgramError(f"entry label {self.entry!r} not defined")
        for block in self.blocks.values():
            for label in block.successor_labels():
                if label not in self.blocks:
                    raise ProgramError(
                        f"block {block.label!r} targets undefined label {label!r}"
                    )

    # ------------------------------------------------------------------
    def block(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        return self.blocks[label]

    def __contains__(self, label: str) -> bool:
        return label in self.blocks

    def __iter__(self):
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    # ------------------------------------------------------------------
    def static_node_counts(self) -> Tuple[int, int]:
        """Total static ``(alu, mem)`` node counts over all blocks.

        The paper reports a static ALU:memory ratio of about 2.5:1 for its
        benchmarks; ``benchmarks/test_static_node_ratio.py`` checks ours.
        """
        total_alu = 0
        total_mem = 0
        for block in self.blocks.values():
            n_alu, n_mem = block.count_by_class()
            total_alu += n_alu
            total_mem += n_mem
        return total_alu, total_mem

    def block_size_histogram(self) -> Dict[int, int]:
        """Static histogram: block datapath size -> number of blocks."""
        hist: Dict[int, int] = {}
        for block in self.blocks.values():
            size = block.datapath_size
            hist[size] = hist.get(size, 0) + 1
        return hist

    def conditional_branch_labels(self) -> List[str]:
        """Labels of blocks ending in a two-way conditional branch."""
        return [
            b.label
            for b in self.blocks.values()
            if b.terminator.kind is NodeKind.BRANCH
        ]

    def replace_blocks(self, replacements: Dict[str, BasicBlock]) -> "Program":
        """New program with some blocks replaced (same entry/data)."""
        new_blocks = [replacements.get(label, blk) for label, blk in self.blocks.items()]
        return Program(
            new_blocks,
            self.entry,
            data=self.data,
            data_size=self.data_size,
            symbols=self.symbols,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program entry={self.entry!r} blocks={len(self.blocks)}>"
