"""Control-flow graph queries over a :class:`~repro.program.Program`.

Calls are treated as opaque: a CALL block's intra-procedural successor is
its link block, and RET blocks have no intra-procedural successors.  This
is the view the enlargement planner needs (it never merges across calls).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..isa.ops import NodeKind
from .program import Program


def successors(program: Program) -> Dict[str, Tuple[str, ...]]:
    """Intra-procedural successor map (fall-through view of calls)."""
    result: Dict[str, Tuple[str, ...]] = {}
    for block in program:
        term = block.terminator
        if term.kind is NodeKind.BRANCH:
            result[block.label] = (term.target, term.alt_target)
        elif term.kind is NodeKind.JUMP:
            result[block.label] = (term.target,)
        elif term.kind is NodeKind.CALL:
            result[block.label] = (term.alt_target,)
        elif term.kind is NodeKind.SYSCALL and term.target is not None:
            result[block.label] = (term.target,)
        else:  # RET, EXIT syscall
            result[block.label] = ()
    return result


def control_successors(program: Program) -> Dict[str, Tuple[str, ...]]:
    """Full successor map including call targets and assert fault targets.

    This is the reachability view: every label that control can transfer
    to from the block.
    """
    return {b.label: b.successor_labels() for b in program}


def predecessors(program: Program) -> Dict[str, List[str]]:
    """Inverse of :func:`control_successors`."""
    preds: Dict[str, List[str]] = {label: [] for label in program.blocks}
    for label, succs in control_successors(program).items():
        for succ in succs:
            preds[succ].append(label)
    return preds


def reachable_labels(program: Program) -> Set[str]:
    """Labels reachable from the entry (RET edges approximated by links).

    Because RET transfers to a dynamic link, any block reachable as a CALL
    link is treated as reachable once its call block is.
    """
    succs = control_successors(program)
    seen: Set[str] = set()
    work = [program.entry]
    while work:
        label = work.pop()
        if label in seen:
            continue
        seen.add(label)
        work.extend(s for s in succs[label] if s not in seen)
    return seen


def unreachable_labels(program: Program) -> Set[str]:
    """Labels not reachable from the entry."""
    return set(program.blocks) - reachable_labels(program)


def back_edges(program: Program) -> Set[Tuple[str, str]]:
    """Intra-procedural back edges ``(from, to)`` found by DFS.

    A back edge targets a block currently on the DFS stack; these identify
    loops for the enlargement planner's unrolling decisions.
    """
    succs = successors(program)
    result: Set[Tuple[str, str]] = set()
    colour: Dict[str, int] = {}  # 0 absent, 1 on stack, 2 done

    for root in program.blocks:
        if colour.get(root):
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        colour[root] = 1
        while stack:
            label, idx = stack[-1]
            succ_list = succs[label]
            if idx < len(succ_list):
                stack[-1] = (label, idx + 1)
                nxt = succ_list[idx]
                state = colour.get(nxt, 0)
                if state == 1:
                    result.add((label, nxt))
                elif state == 0:
                    colour[nxt] = 1
                    stack.append((nxt, 0))
            else:
                colour[label] = 2
                stack.pop()
    return result
