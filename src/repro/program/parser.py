"""Parser for the textual assembly form produced by the printer.

This is the inverse of :mod:`repro.program.printer`; property tests check
the round trip.  It also serves as a convenient way to write small
programs by hand in unit tests.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..isa.node import Imm, Node, Operand, Reg
from ..isa import node as nd
from ..isa.ops import AluOp, MemWidth, SyscallOp
from ..isa.registers import parse_reg
from .block import BasicBlock
from .program import Program


class AsmSyntaxError(Exception):
    """Raised with a line number on malformed assembly input."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_ADDR_RE = re.compile(r"^\[([a-z0-9]+)([+-]\d+)?\]$")
_ALU_OPS = {op.value: op for op in AluOp}
_SYS_OPS = {op.value: op for op in SyscallOp}
_SYS_RE = re.compile(
    r"^sys\s+(\w+)\(([^)]*)\)(?:\s*->\s*(\w+))?(?:\s*,\s*next=(\S+))?$"
)


def _parse_operand(text: str, lineno: int) -> Operand:
    text = text.strip()
    if text.startswith("#"):
        try:
            return Imm(int(text[1:], 0))
        except ValueError:
            raise AsmSyntaxError(lineno, f"bad immediate {text!r}") from None
    try:
        return Reg(parse_reg(text))
    except ValueError:
        raise AsmSyntaxError(lineno, f"bad operand {text!r}") from None


def _parse_addr(text: str, lineno: int) -> Tuple[int, int]:
    match = _ADDR_RE.match(text.strip())
    if not match:
        raise AsmSyntaxError(lineno, f"bad address {text!r}")
    try:
        base = parse_reg(match.group(1))
    except ValueError:
        raise AsmSyntaxError(lineno, f"bad base register in {text!r}") from None
    offset = int(match.group(2)) if match.group(2) else 0
    return base, offset


def parse_node(line: str, lineno: int = 0) -> Node:
    """Parse a single node from one line of assembly."""
    line = line.split(";", 1)[0].strip()
    if not line:
        raise AsmSyntaxError(lineno, "empty node line")
    mnem, _, rest = line.partition(" ")
    rest = rest.strip()

    if mnem in _ALU_OPS:
        parts = [p.strip() for p in rest.split(",")]
        if len(parts) not in (2, 3):
            raise AsmSyntaxError(lineno, f"bad ALU operand count in {line!r}")
        dest_op = _parse_operand(parts[0], lineno)
        if not isinstance(dest_op, Reg):
            raise AsmSyntaxError(lineno, "ALU destination must be a register")
        src1 = _parse_operand(parts[1], lineno)
        src2 = _parse_operand(parts[2], lineno) if len(parts) == 3 else None
        try:
            return nd.alu(_ALU_OPS[mnem], dest_op.index, src1, src2)
        except ValueError as exc:
            raise AsmSyntaxError(lineno, str(exc)) from None

    if mnem in ("ldw", "ldb"):
        dest_text, _, addr_text = rest.partition(",")
        dest_op = _parse_operand(dest_text, lineno)
        if not isinstance(dest_op, Reg):
            raise AsmSyntaxError(lineno, "load destination must be a register")
        base, offset = _parse_addr(addr_text, lineno)
        width = MemWidth.WORD if mnem == "ldw" else MemWidth.BYTE
        return nd.load(dest_op.index, base, offset, width)

    if mnem in ("stw", "stb"):
        src_text, _, addr_text = rest.partition(",")
        src = _parse_operand(src_text, lineno)
        base, offset = _parse_addr(addr_text, lineno)
        width = MemWidth.WORD if mnem == "stw" else MemWidth.BYTE
        return nd.store(src, base, offset, width)

    if mnem == "br":
        hint: Optional[bool] = None
        if rest.endswith("!taken"):
            hint, rest = True, rest[: -len("!taken")].strip()
        elif rest.endswith("!nottaken"):
            hint, rest = False, rest[: -len("!nottaken")].strip()
        parts = [p.strip() for p in rest.split(",")]
        if len(parts) != 3:
            raise AsmSyntaxError(lineno, f"bad branch {line!r}")
        cond = _parse_operand(parts[0], lineno)
        if not isinstance(cond, Reg):
            raise AsmSyntaxError(lineno, "branch condition must be a register")
        return nd.branch(cond.index, parts[1], parts[2], hint)

    if mnem == "jmp":
        return nd.jump(rest)

    if mnem == "call":
        target_text, _, ret_text = rest.partition(",")
        ret_text = ret_text.strip()
        if not ret_text.startswith("ret="):
            raise AsmSyntaxError(lineno, f"call missing ret= in {line!r}")
        return nd.call(target_text.strip(), ret_text[len("ret="):])

    if mnem == "ret" and not rest:
        return nd.ret()

    if mnem == "assert":
        parts = [p.strip() for p in rest.split(",")]
        if len(parts) != 3 or not parts[2].startswith("fault="):
            raise AsmSyntaxError(lineno, f"bad assert {line!r}")
        cond = _parse_operand(parts[0], lineno)
        if not isinstance(cond, Reg):
            raise AsmSyntaxError(lineno, "assert condition must be a register")
        expected = parts[1] == "1"
        return nd.assert_node(cond.index, expected, parts[2][len("fault="):])

    if mnem == "sys":
        match = _SYS_RE.match(line)
        if not match:
            raise AsmSyntaxError(lineno, f"bad syscall {line!r}")
        op_name, args_text, dest_text, next_label = match.groups()
        if op_name not in _SYS_OPS:
            raise AsmSyntaxError(lineno, f"unknown syscall {op_name!r}")
        args = []
        if args_text.strip():
            for arg in args_text.split(","):
                operand = _parse_operand(arg, lineno)
                if not isinstance(operand, Reg):
                    raise AsmSyntaxError(lineno, "syscall args must be registers")
                args.append(operand.index)
        dest = None
        if dest_text:
            dest = parse_reg(dest_text)
        try:
            return nd.syscall(_SYS_OPS[op_name], next_label, args, dest)
        except ValueError as exc:
            raise AsmSyntaxError(lineno, str(exc)) from None

    raise AsmSyntaxError(lineno, f"unknown mnemonic {mnem!r}")


def parse_program(text: str) -> Program:
    """Parse a full program (directives + blocks) from assembly text."""
    entry: Optional[str] = None
    data_chunks: List[str] = []
    data_size: Optional[int] = None
    symbols: Dict[str, int] = {}
    blocks: List[BasicBlock] = []

    current_label: Optional[str] = None
    current_origin: Tuple[str, ...] = ()
    current_nodes: List[Node] = []

    def finish_block(lineno: int) -> None:
        nonlocal current_label, current_nodes, current_origin
        if current_label is None:
            return
        if not current_nodes or not current_nodes[-1].is_terminator:
            raise AsmSyntaxError(
                lineno, f"block {current_label!r} lacks a terminator"
            )
        blocks.append(
            BasicBlock(current_label, current_nodes[:-1], current_nodes[-1],
                       current_origin)
        )
        current_label = None
        current_origin = ()
        current_nodes = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".entry "):
            entry = line.split()[1]
        elif line.startswith(".datasize "):
            data_size = int(line.split()[1], 0)
        elif line.startswith(".data "):
            data_chunks.append(line.split()[1])
        elif line.startswith(".symbol "):
            _, name, addr = line.split()
            symbols[name] = int(addr, 0)
        elif line.startswith("block ") and line.endswith(":"):
            finish_block(lineno)
            current_label = line[len("block "):-1].strip()
            if not current_label:
                raise AsmSyntaxError(lineno, "empty block label")
            # The printer records enlarged-block provenance as a comment:
            # `block E$x$0:  ; origin=a+b`; recover it for round-tripping.
            comment = raw.split(";", 1)[1] if ";" in raw else ""
            if "origin=" in comment:
                origin_text = comment.split("origin=", 1)[1].strip()
                current_origin = tuple(origin_text.split("+"))
        else:
            if current_label is None:
                raise AsmSyntaxError(lineno, f"node outside a block: {line!r}")
            current_nodes.append(parse_node(line, lineno))
    finish_block(len(text.splitlines()) + 1)

    if entry is None:
        raise AsmSyntaxError(0, "missing .entry directive")
    data = bytes.fromhex("".join(data_chunks))
    return Program(blocks, entry, data=data, data_size=data_size, symbols=symbols)
