"""Program representation: basic blocks, programs, CFG queries, asm I/O."""

from .block import BasicBlock
from .program import GLOBAL_BASE, Program, ProgramError
from .parser import AsmSyntaxError, parse_node, parse_program
from .printer import format_block, format_node, format_program
from . import cfg
from .dot import program_to_dot

__all__ = [
    "AsmSyntaxError",
    "BasicBlock",
    "GLOBAL_BASE",
    "Program",
    "ProgramError",
    "cfg",
    "format_block",
    "format_node",
    "format_program",
    "parse_node",
    "program_to_dot",
    "parse_program",
]
