"""Basic blocks: straight-line node sequences with a single terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..isa.node import Node
from ..isa.ops import IssueClass, NodeKind


class BasicBlock:
    """A labelled sequence of nodes ending in exactly one terminator.

    ``body`` holds the non-terminator nodes (ALU, memory, assert) and
    ``terminator`` the control-transfer node.  Enlarged blocks additionally
    carry ``origin``: the sequence of original block labels they were built
    from (used for statistics and debugging; empty for original blocks).
    """

    __slots__ = ("label", "body", "terminator", "origin")

    def __init__(
        self,
        label: str,
        body: List[Node],
        terminator: Node,
        origin: Tuple[str, ...] = (),
    ):
        if not terminator.is_terminator:
            raise ValueError(
                f"block {label!r}: terminator node has kind {terminator.kind}"
            )
        for node in body:
            if node.is_terminator:
                raise ValueError(
                    f"block {label!r}: terminator kind {node.kind} in body"
                )
        self.label = label
        self.body = body
        self.terminator = terminator
        self.origin = origin

    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        """All nodes in order, terminator last."""
        yield from self.body
        yield self.terminator

    def __len__(self) -> int:
        """Total node count including the terminator."""
        return len(self.body) + 1

    @property
    def datapath_size(self) -> int:
        """Number of nodes occupying datapath (ALU or memory) slots."""
        return sum(1 for n in self.nodes() if n.issue_class is not IssueClass.NONE)

    def successor_labels(self) -> Tuple[str, ...]:
        """Labels this block can transfer control to.

        Includes assert fault targets.  RET blocks have no static
        successors (the successor is the dynamic link); SYSCALL blocks
        continue at their continuation label (EXIT has none).
        """
        labels: List[str] = []
        for node in self.body:
            if node.kind is NodeKind.ASSERT:
                labels.append(node.target)
        term = self.terminator
        if term.kind is NodeKind.BRANCH:
            labels.append(term.target)
            labels.append(term.alt_target)
        elif term.kind is NodeKind.JUMP:
            labels.append(term.target)
        elif term.kind is NodeKind.CALL:
            labels.append(term.target)
            labels.append(term.alt_target)
        elif term.kind is NodeKind.SYSCALL and term.target is not None:
            labels.append(term.target)
        return tuple(labels)

    def count_by_class(self) -> Tuple[int, int]:
        """Return ``(alu_nodes, mem_nodes)`` static counts for this block."""
        n_alu = 0
        n_mem = 0
        for node in self.nodes():
            cls = node.issue_class
            if cls is IssueClass.ALU:
                n_alu += 1
            elif cls is IssueClass.MEM:
                n_mem += 1
        return n_alu, n_mem

    def assert_indices(self) -> Tuple[int, ...]:
        """Body indices of assert nodes, in program order."""
        return tuple(
            i for i, n in enumerate(self.body) if n.kind is NodeKind.ASSERT
        )

    def with_body(self, body: List[Node], terminator: Optional[Node] = None) -> "BasicBlock":
        """Copy of this block with a replaced body (and terminator)."""
        return BasicBlock(
            self.label,
            body,
            self.terminator if terminator is None else terminator,
            self.origin,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.label} ({len(self)} nodes)>"
