"""Extra benchmarks beyond the paper's five: ``wc`` and ``uniq``.

The paper's suite is sort/grep/diff/cpp/compress; these two additional
UNIX utilities are provided (and tested) for users who want broader
coverage, but are kept out of :data:`repro.workloads.WORKLOADS` so the
reproduced figures use exactly the paper's benchmark set.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import text_blob, text_lines

WC_SOURCE = STDIO_RUNTIME + r"""
void print_int(int n) {
    char digits[12];
    int i = 0;
    if (n == 0) { outc(48); return; }
    while (n > 0) {
        digits[i++] = 48 + n % 10;
        n /= 10;
    }
    while (i > 0) outc(digits[--i]);
}

int main() {
    int lines = 0;
    int words = 0;
    int chars = 0;
    int in_word = 0;
    int c = nextc();
    while (c >= 0) {
        chars++;
        if (c == 10) lines++;
        if (c == 32 || c == 10 || c == 9) {
            in_word = 0;
        } else if (!in_word) {
            in_word = 1;
            words++;
        }
        c = nextc();
    }
    print_int(lines);
    outc(32);
    print_int(words);
    outc(32);
    print_int(chars);
    outc(10);
    flushout();
    return 0;
}
"""


def wc_make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    seed = 61 if kind == "train" else 62
    return {0: text_blob(seed, 200 * scale)}


def wc_reference(inputs: Dict[int, bytes]) -> bytes:
    data = inputs[0]
    lines = data.count(b"\n")
    chars = len(data)
    words = 0
    in_word = False
    for byte in data:
        if byte in (32, 10, 9):
            in_word = False
        elif not in_word:
            in_word = True
            words += 1
    return f"{lines} {words} {chars}\n".encode("latin-1")


WC = Workload("wc", WC_SOURCE, wc_make_inputs, wc_reference)


UNIQ_SOURCE = STDIO_RUNTIME + r"""
char prev[2048];
char line[2048];
int have_prev;

int read_line(char *buf, int cap) {
    int len = 0;
    int c = nextc();
    if (c < 0) return -1;
    while (c >= 0 && c != 10) {
        if (len < cap - 1) buf[len++] = c;
        c = nextc();
    }
    buf[len] = 0;
    return len;
}

int same_as_prev(int llen) {
    int k = 0;
    if (!have_prev) return 0;
    while (line[k] == prev[k]) {
        if (line[k] == 0) return 1;
        k++;
    }
    return 0;
}

void remember(int llen) {
    int k = 0;
    while (k <= llen) {
        prev[k] = line[k];
        k++;
    }
    have_prev = 1;
}

void emit(int llen) {
    int k;
    for (k = 0; k < llen; k++) outc(line[k]);
    outc(10);
}

int main() {
    int llen = read_line(line, 2048);
    while (llen >= 0) {
        if (!same_as_prev(llen)) {
            emit(llen);
            remember(llen);
        }
        llen = read_line(line, 2048);
    }
    flushout();
    return 0;
}
"""


def uniq_make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    """Text with deliberate runs of duplicate lines."""
    seed = 71 if kind == "train" else 72
    base = text_lines(seed, 80 * scale, min_words=1, max_words=4)
    duplicated: List[str] = []
    for index, item in enumerate(base):
        repeats = 1 + (index * 2654435761 % 4)
        duplicated.extend([item] * repeats)
    return {0: ("\n".join(duplicated) + "\n").encode("latin-1")}


def uniq_reference(inputs: Dict[int, bytes]) -> bytes:
    lines = inputs[0].decode("latin-1").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    out: List[str] = []
    previous = None
    for item in lines:
        if item != previous:
            out.append(item)
            previous = item
    return ("".join(item + "\n" for item in out)).encode("latin-1")


UNIQ = Workload("uniq", UNIQ_SOURCE, uniq_make_inputs, uniq_reference)

#: Extension suite, not part of the paper's figures.
EXTRA_WORKLOADS = {workload.name: workload for workload in (WC, UNIQ)}
