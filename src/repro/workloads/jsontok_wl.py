"""The ``jsontok`` benchmark: a JSON-ish tokenizer.

Scans the input and emits one tag character per token: structural
punctuation is echoed as itself, strings become ``s``, numbers ``n``,
the keywords ``true``/``false``/``null`` become ``k``, other bare words
``w`` and unknown bytes ``?``.  A newline is emitted every 40 tags, and
the final line is ``#`` followed by the token count.

The scanner is driven by a 128-entry *function-pointer dispatch table*
indexed by character class -- each handler consumes one token and
returns the next unconsumed character -- making this the suite's
data-dependent indirect-branch workload.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import make_rng, words

_TAGS_PER_LINE = 40

SOURCE = STDIO_RUNTIME + r"""
int (*dispatch[128])(int);
int ntok;

void print_int(int n) {
    char buf[12];
    int i = 0;
    if (n == 0) { outc(48); return; }
    while (n > 0) { buf[i++] = 48 + n % 10; n = n / 10; }
    while (i > 0) { i--; outc(buf[i]); }
}

void emit_tag(int tag) {
    outc(tag);
    ntok++;
    if (ntok % 40 == 0) outc(10);
}

int h_ws(int c) {
    return nextc();
}

int h_punct(int c) {
    emit_tag(c);
    return nextc();
}

int h_string(int c) {
    c = nextc();
    while (c >= 0 && c != 34) {
        if (c == 92) nextc();
        c = nextc();
    }
    emit_tag(115);
    return nextc();
}

int h_number(int c) {
    c = nextc();
    while (c >= 48 && c <= 57) c = nextc();
    emit_tag(110);
    return c;
}

int h_word(int c) {
    char buf[16];
    int len = 0;
    while (c >= 97 && c <= 122) {
        if (len < 15) buf[len++] = c;
        c = nextc();
    }
    buf[len] = 0;
    if (len == 4 && buf[0] == 116 && buf[1] == 114 && buf[2] == 117
            && buf[3] == 101) {
        emit_tag(107);          /* true */
    } else if (len == 5 && buf[0] == 102 && buf[1] == 97 && buf[2] == 108
            && buf[3] == 115 && buf[4] == 101) {
        emit_tag(107);          /* false */
    } else if (len == 4 && buf[0] == 110 && buf[1] == 117 && buf[2] == 108
            && buf[3] == 108) {
        emit_tag(107);          /* null */
    } else {
        emit_tag(119);
    }
    return c;
}

int h_other(int c) {
    emit_tag(63);
    return nextc();
}

void init_dispatch() {
    int i;
    for (i = 0; i < 128; i++) dispatch[i] = h_other;
    dispatch[32] = h_ws;
    dispatch[9] = h_ws;
    dispatch[10] = h_ws;
    dispatch[13] = h_ws;
    for (i = 48; i < 58; i++) dispatch[i] = h_number;
    dispatch[45] = h_number;     /* leading minus */
    for (i = 97; i < 123; i++) dispatch[i] = h_word;
    dispatch[34] = h_string;
    dispatch[123] = h_punct;     /* { */
    dispatch[125] = h_punct;     /* } */
    dispatch[91] = h_punct;      /* [ */
    dispatch[93] = h_punct;      /* ] */
    dispatch[58] = h_punct;      /* : */
    dispatch[44] = h_punct;      /* , */
}

int main() {
    int c;
    init_dispatch();
    c = nextc();
    while (c >= 0) {
        c = dispatch[c & 127](c);
    }
    if (ntok % 40 != 0) outc(10);
    outc(35);
    print_int(ntok);
    outc(10);
    flushout();
    return 0;
}
"""


def _gen_value(rng, depth: int) -> str:
    """One JSON-ish value; nesting bottoms out at depth 0."""
    kinds = ["int", "string", "keyword"]
    if depth > 0:
        kinds += ["object", "array"]
    kind = rng.choice(kinds)
    if kind == "int":
        return str(rng.randrange(-999, 10000))
    if kind == "string":
        return '"' + " ".join(words(rng, rng.randrange(1, 4))) + '"'
    if kind == "keyword":
        return rng.choice(["true", "false", "null", "nan"])
    if kind == "array":
        items = [_gen_value(rng, depth - 1)
                 for _ in range(rng.randrange(2, 6))]
        return "[" + ", ".join(items) + "]"
    pairs = [
        f'"{key}": {_gen_value(rng, depth - 1)}'
        for key in words(rng, rng.randrange(2, 5))
    ]
    return "{" + ", ".join(pairs) + "}"


def make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    """A stream of nested JSON-ish documents, one per line."""
    seed = 81 if kind == "train" else 82
    rng = make_rng(seed * 17)
    docs = [_gen_value(rng, 3) for _ in range(12 * scale)]
    return {0: ("\n".join(docs) + "\n").encode("latin-1")}


def reference(inputs: Dict[int, bytes]) -> bytes:
    data = inputs[0]
    tags: List[str] = []
    pos = 0

    def nextc() -> int:
        nonlocal pos
        if pos >= len(data):
            return -1
        byte = data[pos]
        pos += 1
        return byte

    c = nextc()
    while c >= 0:
        if c in (32, 9, 10, 13):
            c = nextc()
        elif c in (123, 125, 91, 93, 58, 44):
            tags.append(chr(c))
            c = nextc()
        elif c == 34:
            c = nextc()
            while c >= 0 and c != 34:
                if c == 92:
                    nextc()
                c = nextc()
            tags.append("s")
            c = nextc()
        elif 48 <= c <= 57 or c == 45:
            c = nextc()
            while 48 <= c <= 57:
                c = nextc()
            tags.append("n")
        elif 97 <= c <= 122:
            word = []
            while 97 <= c <= 122:
                word.append(chr(c))
                c = nextc()
            tags.append("k" if "".join(word[:15]) in ("true", "false", "null")
                        else "w")
        else:
            tags.append("?")
            c = nextc()

    out = []
    for index, tag in enumerate(tags):
        out.append(tag)
        if (index + 1) % _TAGS_PER_LINE == 0:
            out.append("\n")
    if len(tags) % _TAGS_PER_LINE != 0:
        out.append("\n")
    out.append(f"#{len(tags)}\n")
    return "".join(out).encode("latin-1")


WORKLOAD = Workload("jsontok", SOURCE, make_inputs, reference)
