"""The benchmark suite: the paper's five UNIX utilities in Mini-C.

The paper's benchmarks "represent the kinds of jobs that have been
considered difficult to speed up with conventional architectures":
sort, grep, diff, cpp and compress.  Each is reimplemented against the
simulator's syscall interface with a deterministic input generator and a
Python oracle for output validation.
"""

from .base import Inputs, Workload, prepared
from .compress_wl import WORKLOAD as COMPRESS
from .cpp_wl import WORKLOAD as CPP
from .diff_wl import WORKLOAD as DIFF
from .extra_wl import EXTRA_WORKLOADS, UNIQ, WC
from .grep_wl import WORKLOAD as GREP
from .sort_wl import WORKLOAD as SORT

#: name -> workload, in the paper's listing order.
WORKLOADS = {
    workload.name: workload
    for workload in (SORT, GREP, DIFF, CPP, COMPRESS)
}

__all__ = [
    "COMPRESS",
    "CPP",
    "DIFF",
    "EXTRA_WORKLOADS",
    "GREP",
    "Inputs",
    "SORT",
    "UNIQ",
    "WC",
    "WORKLOADS",
    "Workload",
    "prepared",
]
