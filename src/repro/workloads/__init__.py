"""The benchmark suite: the paper's five UNIX utilities in Mini-C,
plus three widening workloads.

The paper's benchmarks "represent the kinds of jobs that have been
considered difficult to speed up with conventional architectures":
sort, grep, diff, cpp and compress.  Each is reimplemented against the
simulator's syscall interface with a deterministic input generator and a
Python oracle for output validation.

Three further benchmarks broaden the behavioural coverage: ``hashjoin``
(pointer-chasing hash-table build/probe), ``jsontok`` (a branchy
tokenizer dispatching through a function-pointer table) and ``crc32``
(a tight table-driven checksum loop over a two-dimensional table).
:data:`PAPER_WORKLOAD_NAMES` still identifies the paper's five, which
the figure pipelines use exclusively.
"""

from .base import Inputs, Workload, prepared
from .compress_wl import WORKLOAD as COMPRESS
from .cpp_wl import WORKLOAD as CPP
from .crc32_wl import WORKLOAD as CRC32
from .diff_wl import WORKLOAD as DIFF
from .extra_wl import EXTRA_WORKLOADS, UNIQ, WC
from .grep_wl import WORKLOAD as GREP
from .hashjoin_wl import WORKLOAD as HASHJOIN
from .jsontok_wl import WORKLOAD as JSONTOK
from .sort_wl import WORKLOAD as SORT

#: name -> workload; the paper's five in listing order, then the
#: widening benchmarks.
WORKLOADS = {
    workload.name: workload
    for workload in (SORT, GREP, DIFF, CPP, COMPRESS, HASHJOIN, JSONTOK, CRC32)
}

#: The benchmarks of the paper's study, in its listing order.
PAPER_WORKLOAD_NAMES = ("sort", "grep", "diff", "cpp", "compress")

__all__ = [
    "COMPRESS",
    "CPP",
    "CRC32",
    "DIFF",
    "EXTRA_WORKLOADS",
    "GREP",
    "HASHJOIN",
    "Inputs",
    "JSONTOK",
    "PAPER_WORKLOAD_NAMES",
    "SORT",
    "UNIQ",
    "WC",
    "WORKLOADS",
    "Workload",
    "prepared",
]
