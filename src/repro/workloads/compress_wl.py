"""The ``compress`` benchmark: LZW compression (cf. compress(1)).

Classic 12-bit LZW: the string table grows to 4096 entries and is looked
up through an open-addressed hash table; output codes are bit-packed,
12 bits each, to fd 1.  This reproduces the byte-twiddling, hash-probing
control flow of the original UNIX utility.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import text_blob

SOURCE = STDIO_RUNTIME + r"""
int h_key[8192];
int h_code[8192];
int bitbuf;
int bitcnt;

void table_init() {
    int i;
    for (i = 0; i < 8192; i++) h_key[i] = -1;
}

int table_find(int key) {
    int slot = (key * 40503) & 8191;
    while (h_key[slot] != -1) {
        if (h_key[slot] == key) return h_code[slot];
        slot = (slot + 1) & 8191;
    }
    return -1;
}

void table_add(int key, int code) {
    int slot = (key * 40503) & 8191;
    while (h_key[slot] != -1) slot = (slot + 1) & 8191;
    h_key[slot] = key;
    h_code[slot] = code;
}

void put_code(int code) {
    bitbuf = (bitbuf << 12) | code;
    bitcnt = bitcnt + 12;
    while (bitcnt >= 8) {
        outc((bitbuf >> (bitcnt - 8)) & 255);
        bitcnt = bitcnt - 8;
    }
}

void flush_bits() {
    if (bitcnt > 0) {
        outc((bitbuf << (8 - bitcnt)) & 255);
        bitcnt = 0;
    }
}

int main() {
    int next_code = 256;
    int w;
    int c;
    table_init();
    w = nextc();
    if (w < 0) return 0;
    c = nextc();
    while (c >= 0) {
        int key = w * 256 + c;
        int code = table_find(key);
        if (code >= 0) {
            w = code;
        } else {
            put_code(w);
            if (next_code < 4096) {
                table_add(key, next_code);
                next_code++;
            }
            w = c;
        }
        c = nextc();
    }
    put_code(w);
    flush_bits();
    flushout();
    return 0;
}
"""


def make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    seed = 51 if kind == "train" else 52
    return {0: text_blob(seed, 120 * scale)}


def reference(inputs: Dict[int, bytes]) -> bytes:
    """Python oracle implementing the identical LZW variant."""
    data = inputs[0]
    out: List[int] = []
    bitbuf = 0
    bitcnt = 0

    def put_code(code: int) -> None:
        nonlocal bitbuf, bitcnt
        bitbuf = (bitbuf << 12) | code
        bitcnt += 12
        while bitcnt >= 8:
            out.append((bitbuf >> (bitcnt - 8)) & 255)
            bitcnt -= 8

    if not data:
        return b""
    table: Dict[int, int] = {}
    next_code = 256
    w = data[0]
    for c in data[1:]:
        key = w * 256 + c
        code = table.get(key)
        if code is not None:
            w = code
        else:
            put_code(w)
            if next_code < 4096:
                table[key] = next_code
                next_code += 1
            w = c
    put_code(w)
    if bitcnt > 0:
        out.append((bitbuf << (8 - bitcnt)) & 255)
    return bytes(out)


WORKLOAD = Workload("compress", SOURCE, make_inputs, reference)
