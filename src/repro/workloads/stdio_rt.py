"""Buffered I/O runtime shared by the benchmark sources.

Real 1991 UNIX utilities do their character I/O through stdio: ``getc``
is a macro reading a 4K buffer refilled with read(2).  Without this the
simulated programs would take a system-call (block-boundary) exit every
character, fragmenting basic blocks in a way the paper's decompiled
binaries never were.  This Mini-C snippet is prepended to every
benchmark: ``nextc()`` / ``outc()`` / ``flushout()`` are the stdio
equivalents, and ``read_fd_all`` slurps whole files.
"""

STDIO_RUNTIME = r"""
char _ibuf[4096];
int _ipos;
int _ilen;
char _obuf[4096];
int _olen;

int nextc() {
    if (_ipos >= _ilen) {
        _ilen = read(0, _ibuf, 4096);
        _ipos = 0;
        if (_ilen <= 0) return -1;
    }
    return _ibuf[_ipos++];
}

void flushout() {
    if (_olen > 0) {
        write(1, _obuf, _olen);
        _olen = 0;
    }
}

void outc(int c) {
    _obuf[_olen++] = c;
    if (_olen >= 4096) flushout();
}

int read_fd_all(int fd, char *buf, int cap) {
    int total = 0;
    int got = read(fd, buf, cap);
    while (got > 0) {
        total = total + got;
        got = read(fd, buf + total, cap - total);
    }
    return total;
}
"""
