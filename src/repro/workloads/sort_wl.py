"""The ``sort`` benchmark: sort the lines of a file (cf. sort(1)).

Reads fd 0, sorts lines lexicographically (bytewise, shorter-prefix
first) with quicksort over an index permutation plus an insertion-sort
finish for small partitions, and writes the sorted lines to fd 1.
"""

from __future__ import annotations

from typing import Dict

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import text_blob

SOURCE = STDIO_RUNTIME + r"""
int line_start[4096];
int line_len[4096];
int perm[4096];
char *text;
int nlines;

int read_all() {
    int cap = 262144;
    text = sbrk(cap);
    return read_fd_all(0, text, cap);
}

void index_lines(int len) {
    int pos = 0;
    nlines = 0;
    while (pos < len) {
        int start = pos;
        while (pos < len && text[pos] != 10) pos++;
        line_start[nlines] = start;
        line_len[nlines] = pos - start;
        perm[nlines] = nlines;
        nlines++;
        if (pos < len) pos++;
    }
}

int cmp_lines(int i, int j) {
    int a = line_start[i];
    int b = line_start[j];
    int la = line_len[i];
    int lb = line_len[j];
    int k = 0;
    while (k < la && k < lb) {
        int ca = text[a + k];
        int cb = text[b + k];
        if (ca != cb) return ca - cb;
        k++;
    }
    return la - lb;
}

void insertion(int lo, int hi) {
    int i;
    for (i = lo + 1; i <= hi; i++) {
        int key = perm[i];
        int j = i - 1;
        while (j >= lo && cmp_lines(perm[j], key) > 0) {
            perm[j + 1] = perm[j];
            j--;
        }
        perm[j + 1] = key;
    }
}

void quicksort(int lo, int hi) {
    while (hi - lo > 12) {
        int mid = lo + (hi - lo) / 2;
        int pivot;
        int i = lo;
        int j = hi;
        /* median of three into mid */
        if (cmp_lines(perm[lo], perm[mid]) > 0) {
            int t = perm[lo]; perm[lo] = perm[mid]; perm[mid] = t;
        }
        if (cmp_lines(perm[lo], perm[hi]) > 0) {
            int t = perm[lo]; perm[lo] = perm[hi]; perm[hi] = t;
        }
        if (cmp_lines(perm[mid], perm[hi]) > 0) {
            int t = perm[mid]; perm[mid] = perm[hi]; perm[hi] = t;
        }
        pivot = perm[mid];
        while (i <= j) {
            while (cmp_lines(perm[i], pivot) < 0) i++;
            while (cmp_lines(perm[j], pivot) > 0) j--;
            if (i <= j) {
                int t = perm[i]; perm[i] = perm[j]; perm[j] = t;
                i++;
                j--;
            }
        }
        /* recurse into the smaller side, loop on the larger */
        if (j - lo < hi - i) {
            quicksort(lo, j);
            lo = i;
        } else {
            quicksort(i, hi);
            hi = j;
        }
    }
    insertion(lo, hi);
}

void emit() {
    int i;
    for (i = 0; i < nlines; i++) {
        int idx = perm[i];
        int start = line_start[idx];
        int len = line_len[idx];
        int k;
        for (k = 0; k < len; k++) outc(text[start + k]);
        outc(10);
    }
    flushout();
}

int main() {
    int len = read_all();
    index_lines(len);
    if (nlines > 1) quicksort(0, nlines - 1);
    emit();
    return 0;
}
"""


def make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    """Train and eval inputs come from different seeds."""
    seed = 11 if kind == "train" else 12
    return {0: text_blob(seed, 140 * scale)}


def reference(inputs: Dict[int, bytes]) -> bytes:
    """Python oracle matching the Mini-C comparator exactly."""
    text = inputs[0].decode("latin-1")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    ordered = sorted(lines, key=lambda s: s.encode("latin-1"))
    return ("".join(line + "\n" for line in ordered)).encode("latin-1")


WORKLOAD = Workload("sort", SOURCE, make_inputs, reference)
