"""The ``grep`` benchmark: print lines containing a pattern (cf. grep(1)).

The first input line is the literal pattern; every following line that
contains it as a substring is written to fd 1.  The scan uses the
first-character skip loop classic fgrep implementations use.
"""

from __future__ import annotations

from typing import Dict

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import make_rng, text_lines, words

SOURCE = STDIO_RUNTIME + r"""
char pat[256];
int plen;
char line[2048];

int read_line(char *buf, int cap) {
    int len = 0;
    int c = nextc();
    if (c < 0) return -1;
    while (c >= 0 && c != 10) {
        if (len < cap - 1) buf[len++] = c;
        c = nextc();
    }
    buf[len] = 0;
    return len;
}

int contains(int llen) {
    int first;
    int i;
    if (plen == 0) return 1;
    if (plen > llen) return 0;
    first = pat[0];
    for (i = 0; i + plen <= llen; i++) {
        if (line[i] == first) {
            int j = 1;
            while (j < plen && line[i + j] == pat[j]) j++;
            if (j == plen) return 1;
        }
    }
    return 0;
}

void emit_line(int llen) {
    int i;
    for (i = 0; i < llen; i++) outc(line[i]);
    outc(10);
}

int main() {
    int llen;
    plen = read_line(pat, 256);
    if (plen < 0) return 1;
    llen = read_line(line, 2048);
    while (llen >= 0) {
        if (contains(llen)) emit_line(llen);
        llen = read_line(line, 2048);
    }
    flushout();
    return 0;
}
"""


def make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    """Pattern plus text; roughly 10-20% of lines match."""
    seed = 21 if kind == "train" else 22
    rng = make_rng(seed * 7)
    pattern = words(rng, 1)[0]
    lines = text_lines(seed, 170 * scale)
    blob = pattern + "\n" + "\n".join(lines) + "\n"
    return {0: blob.encode("latin-1")}


def reference(inputs: Dict[int, bytes]) -> bytes:
    text = inputs[0].decode("latin-1").split("\n")
    pattern = text[0]
    lines = text[1:]
    if lines and lines[-1] == "":
        lines.pop()
    matched = [line for line in lines if pattern in line]
    return ("".join(line + "\n" for line in matched)).encode("latin-1")


WORKLOAD = Workload("grep", SOURCE, make_inputs, reference)
