"""The ``hashjoin`` benchmark: hash-table build/probe join.

The first input line is the number of build rows N; the next N lines are
``key value`` pairs inserted into a chained hash table (newest first);
every following line is a probe key.  Each probe walks its bucket's
chain -- the pointer-chasing access pattern that gives hash joins their
memory-bound reputation -- and accumulates ``key * value`` of every
matching entry into a running modular sum.  The output is the match
count and the sum.

The entry pool (2048 x 12 bytes) plus the bucket heads put the working
set near 25K, so the cache-geometry ladder D/H/E/I (1K..64K) spans
thrash-to-fit for this benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import make_rng

#: Largest number of build rows the static entry pool can hold; build
#: rows beyond it are dropped (mirrored by the oracle).
POOL_CAPACITY = 2048

_AGG_MODULUS = 1000003

SOURCE = STDIO_RUNTIME + r"""
struct Entry {
    int key;
    int val;
    struct Entry *next;
};

struct Entry pool[2048];
struct Entry *head[256];
int pool_used;

int read_int() {
    int c = nextc();
    int value = 0;
    int seen = 0;
    while (c == 32 || c == 10 || c == 13 || c == 9) c = nextc();
    if (c < 0) return -1;
    while (c >= 48 && c <= 57) {
        value = value * 10 + (c - 48);
        seen = 1;
        c = nextc();
    }
    if (!seen) return -1;
    return value;
}

void print_int(int n) {
    char buf[12];
    int i = 0;
    if (n == 0) { outc(48); return; }
    while (n > 0) { buf[i++] = 48 + n % 10; n = n / 10; }
    while (i > 0) { i--; outc(buf[i]); }
}

int hash_key(int key) {
    return ((key * 31) ^ (key >> 3)) & 255;
}

void insert(int key, int val) {
    struct Entry *e;
    int h;
    if (pool_used >= 2048) return;
    e = &pool[pool_used++];
    e->key = key;
    e->val = val;
    h = hash_key(key);
    e->next = head[h];
    head[h] = e;
}

int main() {
    int n;
    int i;
    int key;
    int val;
    int matches = 0;
    int agg = 0;
    struct Entry *e;

    n = read_int();
    if (n < 0) return 1;
    for (i = 0; i < n; i++) {
        key = read_int();
        val = read_int();
        if (key < 0 || val < 0) return 1;
        insert(key, val);
    }
    key = read_int();
    while (key >= 0) {
        e = head[hash_key(key)];
        while (e) {
            if (e->key == key) {
                matches++;
                agg = (agg + key * e->val) % 1000003;
            }
            e = e->next;
        }
        key = read_int();
    }
    print_int(matches);
    outc(32);
    print_int(agg);
    outc(10);
    flushout();
    return 0;
}
"""


def make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    """Build rows over a key universe; probes hit roughly 3 times in 4."""
    seed = 71 if kind == "train" else 72
    rng = make_rng(seed * 13)
    universe = 160 * scale
    rows: List[Tuple[int, int]] = [
        (rng.randrange(universe) * 7 + 3, rng.randrange(997))
        for _ in range(120 * scale)
    ]
    probes = [rng.randrange(universe) * 7 + 3 for _ in range(300 * scale)]
    lines = [str(len(rows))]
    lines.extend(f"{key} {val}" for key, val in rows)
    lines.extend(str(key) for key in probes)
    return {0: ("\n".join(lines) + "\n").encode("latin-1")}


def reference(inputs: Dict[int, bytes]) -> bytes:
    numbers = inputs[0].split()
    n = int(numbers[0])
    rows = [
        (int(numbers[1 + 2 * i]), int(numbers[2 + 2 * i]))
        for i in range(n)
    ][:POOL_CAPACITY]
    probes = [int(token) for token in numbers[1 + 2 * n:]]
    table: Dict[int, List[int]] = {}
    for key, val in rows:
        table.setdefault(key, []).append(val)
    matches = 0
    agg = 0
    for key in probes:
        for val in table.get(key, ()):
            matches += 1
            agg = (agg + key * val) % _AGG_MODULUS
    return f"{matches} {agg}\n".encode("latin-1")


WORKLOAD = Workload("hashjoin", SOURCE, make_inputs, reference,
                    cache_memories=("D", "H", "E", "I"))
