"""The ``crc32`` benchmark: table-driven checksum (cf. cksum/zlib).

Computes the standard reflected CRC-32 (polynomial ``0xEDB88320``, the
one zlib and gzip use) over the whole input and prints it as eight
lowercase hex digits.  The kernel is *slicing-by-2*: a two-row table
``int table[2][256]`` -- the suite's multi-dimensional-array workload --
lets the tight loop retire two input bytes per iteration with four loads
and a handful of ALU nodes.

The ISA has no logical right shift, so ``(x >> n) & mask`` idioms
recover it from the arithmetic one.  The 2K table plus the streamed
input make the 1K cache (D) thrash and the 4K one (H) fit, which is
exactly the knee the cache-geometry ladder is meant to show.
"""

from __future__ import annotations

import zlib
from typing import Dict

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import text_blob

SOURCE = STDIO_RUNTIME + r"""
int table[2][256];
char data[65536];

void make_table() {
    int n;
    int k;
    int c;
    for (n = 0; n < 256; n++) {
        c = n;
        for (k = 0; k < 8; k++) {
            if (c & 1) {
                c = -306674912 ^ ((c >> 1) & 2147483647);
            } else {
                c = (c >> 1) & 2147483647;
            }
        }
        table[0][n] = c;
    }
    for (n = 0; n < 256; n++) {
        c = table[0][n];
        table[1][n] = ((c >> 8) & 16777215) ^ table[0][c & 255];
    }
}

int main() {
    int len;
    int crc;
    int i;
    int b0;
    int b1;

    make_table();
    len = read_fd_all(0, data, 65536);
    crc = -1;
    i = 0;
    while (i + 1 < len) {
        b0 = data[i];
        b1 = data[i + 1];
        crc = crc ^ (b0 | (b1 << 8));
        crc = table[1][crc & 255]
            ^ table[0][(crc >> 8) & 255]
            ^ ((crc >> 16) & 65535);
        i = i + 2;
    }
    if (i < len) {
        crc = table[0][(crc ^ data[i]) & 255] ^ ((crc >> 8) & 16777215);
    }
    crc = ~crc;
    for (i = 28; i >= 0; i = i - 4) {
        b0 = (crc >> i) & 15;
        if (b0 < 10) outc(48 + b0);
        else outc(87 + b0);
    }
    outc(10);
    flushout();
    return 0;
}
"""


def make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    """A text blob; roughly 8K bytes per scale step (caps at the buffer)."""
    seed = 91 if kind == "train" else 92
    return {0: text_blob(seed * 19, 160 * scale)[:65536]}


def reference(inputs: Dict[int, bytes]) -> bytes:
    checksum = zlib.crc32(inputs[0][:65536]) & 0xFFFFFFFF
    return f"{checksum:08x}\n".encode("latin-1")


WORKLOAD = Workload("crc32", SOURCE, make_inputs, reference,
                    cache_memories=("D", "H", "E"))
