"""Deterministic input generation for the benchmark suite.

The paper used two input data sets per benchmark: one to collect branch
statistics for enlargement, one for the reported runs, "to prevent the
branch data from being overly biased".  These generators produce seeded,
reproducible text with realistic word/line statistics so the two sets are
drawn from the same distribution without being identical.
"""

from __future__ import annotations

import random
from typing import List

_VOCABULARY = (
    "the quick brown fox jumps over lazy dog alpha beta gamma delta "
    "epsilon kernel buffer cache line branch predict window issue node "
    "memory latency static dynamic schedule basic block enlarge retire "
    "while return struct vector matrix index offset pointer stream file "
    "system register operand compile decode fetch commit squash fault"
).split()

_PUNCTUATION = ("", "", "", ",", ".", ";", ":")


def make_rng(seed: int) -> random.Random:
    """A deterministic RNG stream for input generation."""
    return random.Random(0x5EED ^ seed)


def words(rng: random.Random, count: int) -> List[str]:
    """Draw ``count`` vocabulary words (Zipf-flavoured)."""
    picked = []
    vocab_len = len(_VOCABULARY)
    for _ in range(count):
        # Squaring the uniform draw skews toward low indices, giving the
        # repeated-word structure real text has.
        index = int((rng.random() ** 2) * vocab_len)
        picked.append(_VOCABULARY[index])
    return picked


def text_lines(seed: int, lines: int, min_words: int = 2,
               max_words: int = 9) -> List[str]:
    """Generate ``lines`` lines of word-salad text."""
    rng = make_rng(seed)
    result = []
    for _ in range(lines):
        count = rng.randint(min_words, max_words)
        line_words = words(rng, count)
        line = " ".join(
            word + rng.choice(_PUNCTUATION) for word in line_words
        )
        result.append(line)
    return result


def text_blob(seed: int, lines: int, **kwargs) -> bytes:
    """Lines joined with newlines, as the byte stream a workload reads."""
    return ("\n".join(text_lines(seed, lines, **kwargs)) + "\n").encode("latin-1")


def mutate_lines(base: List[str], seed: int, change_fraction: float = 0.2) -> List[str]:
    """Edit a fraction of lines (replace / delete / insert) for diff inputs."""
    rng = make_rng(seed)
    result: List[str] = []
    for line in base:
        roll = rng.random()
        if roll < change_fraction / 3:
            continue  # deletion
        if roll < 2 * change_fraction / 3:
            result.append(" ".join(words(rng, rng.randint(2, 8))))  # replacement
            continue
        result.append(line)
        if roll > 1.0 - change_fraction / 3:
            result.append(" ".join(words(rng, rng.randint(2, 8))))  # insertion
    return result
