"""The ``cpp`` benchmark: object-like macro expansion (cf. cpp(1)).

Supports ``#define NAME value`` and ``#undef NAME`` directives; other
``#`` lines are consumed silently.  Identifiers in ordinary lines are
expanded recursively (depth-capped) through a hash table with linear
probing, mirroring the macro machinery of a classic C pre-processor.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import make_rng, words

_MAX_DEPTH = 8

SOURCE = STDIO_RUNTIME + r"""
char names[8192];
char values[16384];
int name_off[512];
int name_len[512];
int val_off[512];
int val_len[512];
int state[512];
int names_used;
int values_used;
char line[2048];

int is_ident_start(int c) {
    if (c >= 97 && c <= 122) return 1;
    if (c >= 65 && c <= 90) return 1;
    return c == 95;
}

int is_ident_char(int c) {
    if (is_ident_start(c)) return 1;
    return c >= 48 && c <= 57;
}

int read_line(char *buf, int cap) {
    int len = 0;
    int c = nextc();
    if (c < 0) return -1;
    while (c >= 0 && c != 10) {
        if (len < cap - 1) buf[len++] = c;
        c = nextc();
    }
    buf[len] = 0;
    return len;
}

int hash_name(char *buf, int start, int len) {
    int h = 5381;
    int k;
    for (k = 0; k < len; k++) h = h * 33 + buf[start + k];
    h = h & 511;
    return h;
}

int probe(char *buf, int start, int len) {
    int slot = hash_name(buf, start, len);
    while (state[slot] != 0) {
        if (name_len[slot] == len) {
            int k = 0;
            int base = name_off[slot];
            while (k < len && names[base + k] == buf[start + k]) k++;
            if (k == len) return slot;
        }
        slot = (slot + 1) & 511;
    }
    return slot;
}

void define_macro(char *buf, int nstart, int nlen, int vstart, int vlen) {
    int slot = probe(buf, nstart, nlen);
    int k;
    if (state[slot] == 0) {
        name_off[slot] = names_used;
        name_len[slot] = nlen;
        for (k = 0; k < nlen; k++) names[names_used + k] = buf[nstart + k];
        names_used = names_used + nlen;
    }
    state[slot] = 1;
    val_off[slot] = values_used;
    val_len[slot] = vlen;
    for (k = 0; k < vlen; k++) values[values_used + k] = buf[vstart + k];
    values_used = values_used + vlen;
}

void undef_macro(char *buf, int nstart, int nlen) {
    int slot = probe(buf, nstart, nlen);
    if (state[slot] == 1) state[slot] = 2;
}

void expand(char *buf, int start, int len, int depth) {
    int i = start;
    int end = start + len;
    while (i < end) {
        int c = buf[i];
        if (is_ident_start(c)) {
            int j = i + 1;
            int slot;
            while (j < end && is_ident_char(buf[j])) j++;
            slot = -1;
            if (depth < 8) {
                int found = probe(buf, i, j - i);
                if (state[found] == 1) slot = found;
            }
            if (slot >= 0) {
                expand(values, val_off[slot], val_len[slot], depth + 1);
            } else {
                int k;
                for (k = i; k < j; k++) outc(buf[k]);
            }
            i = j;
        } else {
            outc(c);
            i++;
        }
    }
}

int skip_spaces(char *buf, int pos, int len) {
    while (pos < len && (buf[pos] == 32 || buf[pos] == 9)) pos++;
    return pos;
}

int starts_with(char *buf, int pos, int len, char *word, int wlen) {
    int k = 0;
    if (pos + wlen > len) return 0;
    while (k < wlen && buf[pos + k] == word[k]) k++;
    return k == wlen;
}

void handle_directive(int llen) {
    int pos = skip_spaces(line, 1, llen);
    int is_define = starts_with(line, pos, llen, "define", 6);
    int is_undef = starts_with(line, pos, llen, "undef", 5);
    int nstart;
    int nend;
    if (is_define) pos = pos + 6;
    else if (is_undef) pos = pos + 5;
    else return;
    pos = skip_spaces(line, pos, llen);
    nstart = pos;
    while (pos < llen && is_ident_char(line[pos])) pos++;
    nend = pos;
    if (nend == nstart) return;
    if (is_undef) {
        undef_macro(line, nstart, nend - nstart);
        return;
    }
    pos = skip_spaces(line, pos, llen);
    define_macro(line, nstart, nend - nstart, pos, llen - pos);
}

int main() {
    int llen = read_line(line, 2048);
    while (llen >= 0) {
        if (llen > 0 && line[0] == 35) {
            handle_directive(llen);
        } else {
            expand(line, 0, llen, 0);
            outc(10);
        }
        llen = read_line(line, 2048);
    }
    flushout();
    return 0;
}
"""


def make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    """A header of macro definitions followed by macro-heavy text."""
    seed = 41 if kind == "train" else 42
    rng = make_rng(seed * 13)
    lines: List[str] = []
    macro_names = [f"M{idx}" for idx in range(12)]
    # A few macros chain into each other to exercise recursive expansion.
    for idx, name in enumerate(macro_names):
        if idx >= 2 and rng.random() < 0.4:
            value = f"{macro_names[rng.randrange(idx)]} {words(rng, 1)[0]}"
        else:
            value = " ".join(words(rng, rng.randint(1, 3)))
        lines.append(f"#define {name} {value}")
    body_lines = 120 * scale
    for index in range(body_lines):
        parts = []
        for _ in range(rng.randint(3, 8)):
            if rng.random() < 0.35:
                parts.append(rng.choice(macro_names))
            else:
                parts.append(words(rng, 1)[0])
        lines.append(" ".join(parts))
        if index % 37 == 17:
            lines.append(f"#undef {rng.choice(macro_names)}")
        if index % 53 == 29:
            name = rng.choice(macro_names)
            lines.append(f"#define {name} {' '.join(words(rng, 2))}")
    return {0: ("\n".join(lines) + "\n").encode("latin-1")}


def reference(inputs: Dict[int, bytes]) -> bytes:
    """Python oracle mirroring the Mini-C expansion semantics."""
    text = inputs[0].decode("latin-1").split("\n")
    if text and text[-1] == "":
        text.pop()
    macros: Dict[str, str] = {}
    out: List[str] = []

    def is_ident_start(ch: str) -> bool:
        return ch.isalpha() or ch == "_"

    def is_ident_char(ch: str) -> bool:
        return ch.isalnum() or ch == "_"

    def expand(text_: str, depth: int, sink: List[str]) -> None:
        i = 0
        while i < len(text_):
            ch = text_[i]
            if is_ident_start(ch):
                j = i + 1
                while j < len(text_) and is_ident_char(text_[j]):
                    j += 1
                name = text_[i:j]
                if depth < _MAX_DEPTH and name in macros:
                    expand(macros[name], depth + 1, sink)
                else:
                    sink.append(name)
                i = j
            else:
                sink.append(ch)
                i += 1

    for line in text:
        if line.startswith("#"):
            rest = line[1:].lstrip(" \t")
            if rest.startswith("define"):
                rest = rest[len("define"):].lstrip(" \t")
                j = 0
                while j < len(rest) and is_ident_char(rest[j]):
                    j += 1
                name = rest[:j]
                if name:
                    macros[name] = rest[j:].lstrip(" \t")
            elif rest.startswith("undef"):
                rest = rest[len("undef"):].lstrip(" \t")
                j = 0
                while j < len(rest) and is_ident_char(rest[j]):
                    j += 1
                if rest[:j]:
                    macros.pop(rest[:j], None)
            continue
        sink: List[str] = []
        expand(line, 0, sink)
        out.append("".join(sink))
    return ("".join(line + "\n" for line in out)).encode("latin-1")


WORKLOAD = Workload("cpp", SOURCE, make_inputs, reference)
