"""The ``diff`` benchmark: line differences of two files (cf. diff(1)).

Reads the old file from fd 0 and the new file from fd 3, computes a
longest-common-subsequence alignment over djb2 line hashes, and prints
deleted lines as ``< line`` and inserted lines as ``> line`` in file
order (ties resolved toward deletions, matching the Python oracle).
"""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .stdio_rt import STDIO_RUNTIME
from .textgen import mutate_lines, text_lines

SOURCE = STDIO_RUNTIME + r"""
int a_start[1024];
int a_len[1024];
int a_hash[1024];
int b_start[1024];
int b_len[1024];
int b_hash[1024];
char *a_text;
char *b_text;
int *dp;
int na;
int nb;

int hash_range(char *buf, int start, int len) {
    int h = 5381;
    int k;
    for (k = 0; k < len; k++) {
        h = h * 33 + buf[start + k];
    }
    return h;
}

int split_lines(char *buf, int len, int *starts, int *lens, int *hashes) {
    int pos = 0;
    int count = 0;
    while (pos < len) {
        int start = pos;
        while (pos < len && buf[pos] != 10) pos++;
        starts[count] = start;
        lens[count] = pos - start;
        hashes[count] = hash_range(buf, start, pos - start);
        count++;
        if (pos < len) pos++;
    }
    return count;
}

void fill_dp() {
    int width = nb + 1;
    int i;
    int j;
    for (j = 0; j <= nb; j++) dp[na * width + j] = 0;
    for (i = na - 1; i >= 0; i--) {
        dp[i * width + nb] = 0;
        for (j = nb - 1; j >= 0; j--) {
            if (a_hash[i] == b_hash[j]) {
                dp[i * width + j] = dp[(i + 1) * width + j + 1] + 1;
            } else {
                int down = dp[(i + 1) * width + j];
                int right = dp[i * width + j + 1];
                if (down >= right) dp[i * width + j] = down;
                else dp[i * width + j] = right;
            }
        }
    }
}

void emit_marked(int marker, char *buf, int start, int len) {
    int k;
    outc(marker);
    outc(32);
    for (k = 0; k < len; k++) outc(buf[start + k]);
    outc(10);
}

void walk() {
    int width = nb + 1;
    int i = 0;
    int j = 0;
    while (i < na && j < nb) {
        if (a_hash[i] == b_hash[j]) {
            i++;
            j++;
        } else if (dp[(i + 1) * width + j] >= dp[i * width + j + 1]) {
            emit_marked(60, a_text, a_start[i], a_len[i]);
            i++;
        } else {
            emit_marked(62, b_text, b_start[j], b_len[j]);
            j++;
        }
    }
    while (i < na) {
        emit_marked(60, a_text, a_start[i], a_len[i]);
        i++;
    }
    while (j < nb) {
        emit_marked(62, b_text, b_start[j], b_len[j]);
        j++;
    }
}

int main() {
    int alen;
    int blen;
    a_text = sbrk(131072);
    b_text = sbrk(131072);
    alen = read_fd_all(0, a_text, 131072);
    blen = read_fd_all(3, b_text, 131072);
    na = split_lines(a_text, alen, a_start, a_len, a_hash);
    nb = split_lines(b_text, blen, b_start, b_len, b_hash);
    dp = sbrk((na + 1) * (nb + 1) * 4);
    fill_dp();
    walk();
    flushout();
    return 0;
}
"""


def _djb2(line: str) -> int:
    value = 5381
    for ch in line.encode("latin-1"):
        value = (value * 33 + ch) & 0xFFFFFFFF
    if value & 0x80000000:
        value -= 1 << 32
    return value


def make_inputs(kind: str, scale: int = 1) -> Dict[int, bytes]:
    seed = 31 if kind == "train" else 32
    old_lines = text_lines(seed, 90 * scale)
    new_lines = mutate_lines(old_lines, seed + 1000)
    old_blob = ("\n".join(old_lines) + "\n").encode("latin-1")
    new_blob = ("\n".join(new_lines) + "\n").encode("latin-1")
    return {0: old_blob, 3: new_blob}


def reference(inputs: Dict[int, bytes]) -> bytes:
    def split(blob: bytes) -> List[str]:
        lines = blob.decode("latin-1").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        return lines

    a = split(inputs[0])
    b = split(inputs[3])
    ah = [_djb2(line) for line in a]
    bh = [_djb2(line) for line in b]
    na, nb = len(a), len(b)
    dp = [[0] * (nb + 1) for _ in range(na + 1)]
    for i in range(na - 1, -1, -1):
        for j in range(nb - 1, -1, -1):
            if ah[i] == bh[j]:
                dp[i][j] = dp[i + 1][j + 1] + 1
            else:
                dp[i][j] = max(dp[i + 1][j], dp[i][j + 1])
    out: List[str] = []
    i = j = 0
    while i < na and j < nb:
        if ah[i] == bh[j]:
            i += 1
            j += 1
        elif dp[i + 1][j] >= dp[i][j + 1]:
            out.append("< " + a[i])
            i += 1
        else:
            out.append("> " + b[j])
            j += 1
    out.extend("< " + line for line in a[i:])
    out.extend("> " + line for line in b[j:])
    return ("".join(line + "\n" for line in out)).encode("latin-1")


WORKLOAD = Workload("diff", SOURCE, make_inputs, reference)
