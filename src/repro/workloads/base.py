"""Workload definition and preparation plumbing.

Preparing a workload (compile, profile on training input, enlarge, trace
on evaluation input) costs seconds per benchmark; :func:`prepared`
therefore caches the result in-process and delegates on-disk persistence
to the versioned artifact store (:mod:`repro.harness.artifacts`), keyed
by a digest of the source and inputs so stale artifacts can never be
reused.  :func:`ensure_artifacts` materializes the on-disk form without
loading it -- the parent side of a parallel sweep, whose pool workers
load the artifacts themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..chaos.inject import current as chaos_current
from ..enlarge.plan import EnlargeConfig
from ..lang.frontend import compile_source
from ..machine.simulator import PreparedWorkload, prepare_workload
from ..program.program import Program
from ..telemetry.collector import Collector, NULL_COLLECTOR
from ..telemetry.logging import get_logger

_LOG = get_logger("workloads")

#: fd -> byte stream
Inputs = Mapping[int, bytes]


@dataclass(frozen=True)
class Workload:
    """One benchmark: Mini-C source, input generators and an oracle.

    Attributes:
        name: short benchmark name (``sort``, ``grep``, ...).
        source: Mini-C translation unit implementing the utility.
        make_inputs: ``(kind, scale) -> Inputs`` where kind is ``train``
            or ``eval``; scale grows the input proportionally.
        reference: Python oracle computing the expected fd-1 output for a
            given input set (used by the test suite, not the simulator).
        cache_memories: memory letters this workload's cache-geometry
            sweep should visit; empty means the default ladder
            (:data:`repro.machine.config.CACHE_SWEEP_MEMORIES`).
    """

    name: str
    source: str
    make_inputs: Callable[[str, int], Inputs]
    reference: Callable[[Inputs], bytes]
    cache_memories: Tuple[str, ...] = ()

    def compile(self) -> Program:
        """Compile the benchmark's Mini-C source."""
        return compile_source(self.source)

    def prepare(self, scale: int = 1,
                enlarge_config: Optional[EnlargeConfig] = None,
                max_nodes: int = 200_000_000) -> PreparedWorkload:
        """Compile, profile (train input), enlarge and trace (eval input)."""
        program = self.compile()
        return prepare_workload(
            self.name,
            program,
            self.make_inputs("train", scale),
            self.make_inputs("eval", scale),
            enlarge_config=enlarge_config,
            max_nodes=max_nodes,
        )


_PREPARED_CACHE: Dict[tuple, PreparedWorkload] = {}


def prepared(workload: Workload, scale: int = 1,
             collector: Collector = NULL_COLLECTOR) -> PreparedWorkload:
    """Cached workload preparation (in-process, then on-disk, then fresh).

    Only the default enlargement configuration is cached; custom configs
    go through :meth:`Workload.prepare` directly.
    """
    # Imported lazily: repro.harness imports the workload registry at
    # package level, so the reverse import must happen at call time.
    from ..harness.artifacts import ArtifactStore

    key = (workload.name, scale)
    hit = _PREPARED_CACHE.get(key)
    if hit is not None:
        return hit

    store = ArtifactStore(collector=collector)
    loaded = store.load(workload, scale)
    if loaded is None:
        loaded = workload.prepare(scale=scale)
        try:
            store.save(workload, scale, loaded)
        except OSError as exc:
            # The prepared workload is in memory and fully usable; a
            # failed persist costs a re-prepare next process, not this
            # point.
            _LOG.warning("artifact_save_failed", benchmark=workload.name,
                         scale=scale,
                         error=f"{type(exc).__name__}: {exc}")
            collector.count("artifacts.write_error")
            eng = chaos_current()
            if eng is not None:
                eng.mark_recovered("artifacts.write")
    _PREPARED_CACHE[key] = loaded
    return loaded


def clear_prepared_cache() -> None:
    """Drop the in-process prepared-workload cache.

    The on-disk artifact store is untouched; the next :func:`prepared`
    call reloads from it.  Used by the bench command (so each timed
    backend starts from the same cold in-process state) and by tests.
    """
    _PREPARED_CACHE.clear()


def ensure_artifacts(workload: Workload, scale: int = 1) -> str:
    """Materialize a workload's on-disk artifacts without loading them.

    Returns the artifact directory.  This is the prepare step a parallel
    sweep runs in the parent, once per benchmark, before dispatching the
    benchmark's points to pool workers.
    """
    from ..harness.artifacts import ArtifactStore

    return ArtifactStore().ensure(workload, scale)
