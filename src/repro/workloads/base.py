"""Workload definition and preparation plumbing.

Preparing a workload (compile, profile on training input, enlarge, trace
on evaluation input) costs tens of seconds; :func:`prepared` therefore
caches the result both in-process and on disk (programs as assembly,
traces in the binary format of :mod:`repro.interp.trace_io`), keyed by a
digest of the source and inputs so stale artefacts can never be reused.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from ..enlarge.plan import EnlargeConfig
from ..interp.trace_io import load_trace_file, save_trace_file
from ..lang.frontend import compile_source
from ..machine.simulator import PreparedWorkload, prepare_workload
from ..program.parser import parse_program
from ..program.printer import format_program
from ..program.program import Program

#: fd -> byte stream
Inputs = Mapping[int, bytes]

#: Bump to invalidate on-disk prepared workloads after semantic changes.
PREPARE_CACHE_VERSION = 1


@dataclass(frozen=True)
class Workload:
    """One benchmark: Mini-C source, input generators and an oracle.

    Attributes:
        name: short benchmark name (``sort``, ``grep``, ...).
        source: Mini-C translation unit implementing the utility.
        make_inputs: ``(kind, scale) -> Inputs`` where kind is ``train``
            or ``eval``; scale grows the input proportionally.
        reference: Python oracle computing the expected fd-1 output for a
            given input set (used by the test suite, not the simulator).
    """

    name: str
    source: str
    make_inputs: Callable[[str, int], Inputs]
    reference: Callable[[Inputs], bytes]

    def compile(self) -> Program:
        """Compile the benchmark's Mini-C source."""
        return compile_source(self.source)

    def prepare(self, scale: int = 1,
                enlarge_config: Optional[EnlargeConfig] = None,
                max_nodes: int = 200_000_000) -> PreparedWorkload:
        """Compile, profile (train input), enlarge and trace (eval input)."""
        program = self.compile()
        return prepare_workload(
            self.name,
            program,
            self.make_inputs("train", scale),
            self.make_inputs("eval", scale),
            enlarge_config=enlarge_config,
            max_nodes=max_nodes,
        )


_PREPARED_CACHE: Dict[tuple, PreparedWorkload] = {}

_ARTEFACTS = ("single.asm", "enlarged.asm", "single.trace", "enlarged.trace")


def _digest(workload: Workload, scale: int) -> str:
    """Content hash covering everything a prepared workload depends on."""
    hasher = hashlib.sha256()
    hasher.update(str(PREPARE_CACHE_VERSION).encode())
    hasher.update(workload.source.encode())
    for kind in ("train", "eval"):
        for fd, blob in sorted(workload.make_inputs(kind, scale).items()):
            hasher.update(str(fd).encode())
            hasher.update(blob)
    return hasher.hexdigest()[:16]


def _workload_cache_dir(workload: Workload, scale: int) -> str:
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return os.path.join(
        root, "workloads", f"{workload.name}-s{scale}-{_digest(workload, scale)}"
    )


def _load_from_disk(directory: str, name: str) -> Optional[PreparedWorkload]:
    if not all(os.path.exists(os.path.join(directory, f)) for f in _ARTEFACTS):
        return None
    try:
        with open(os.path.join(directory, "single.asm"), encoding="utf-8") as f:
            single = parse_program(f.read())
        with open(os.path.join(directory, "enlarged.asm"), encoding="utf-8") as f:
            enlarged = parse_program(f.read())
        single_trace = load_trace_file(os.path.join(directory, "single.trace"))
        enlarged_trace = load_trace_file(os.path.join(directory, "enlarged.trace"))
    except Exception:  # noqa: BLE001 - any corruption means re-prepare
        return None
    return PreparedWorkload(name, single, enlarged, single_trace, enlarged_trace)


def _save_to_disk(directory: str, prepared_wl: PreparedWorkload) -> None:
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "single.asm"), "w", encoding="utf-8") as f:
        f.write(format_program(prepared_wl.single))
    with open(os.path.join(directory, "enlarged.asm"), "w", encoding="utf-8") as f:
        f.write(format_program(prepared_wl.enlarged))
    save_trace_file(prepared_wl.single_trace,
                    os.path.join(directory, "single.trace"))
    save_trace_file(prepared_wl.enlarged_trace,
                    os.path.join(directory, "enlarged.trace"))


def prepared(workload: Workload, scale: int = 1) -> PreparedWorkload:
    """Cached workload preparation (in-process, then on-disk, then fresh).

    Only the default enlargement configuration is cached; custom configs
    go through :meth:`Workload.prepare` directly.
    """
    key = (workload.name, scale)
    hit = _PREPARED_CACHE.get(key)
    if hit is not None:
        return hit

    directory = _workload_cache_dir(workload, scale)
    loaded = _load_from_disk(directory, workload.name)
    if loaded is None:
        loaded = workload.prepare(scale=scale)
        _save_to_disk(directory, loaded)
    _PREPARED_CACHE[key] = loaded
    return loaded
