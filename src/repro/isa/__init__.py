"""Node ISA: operations, operands and node construction."""

from .intmath import wrap32
from .node import (
    Imm,
    Node,
    Operand,
    Reg,
    alu,
    assert_node,
    branch,
    call,
    jump,
    load,
    mov,
    movi,
    ret,
    store,
    syscall,
)
from .ops import (
    AluOp,
    IssueClass,
    MemWidth,
    NodeKind,
    SyscallOp,
    issue_class_of,
)
from . import registers

__all__ = [
    "AluOp",
    "Imm",
    "IssueClass",
    "MemWidth",
    "Node",
    "NodeKind",
    "Operand",
    "Reg",
    "SyscallOp",
    "alu",
    "assert_node",
    "branch",
    "call",
    "issue_class_of",
    "jump",
    "load",
    "mov",
    "movi",
    "registers",
    "ret",
    "store",
    "syscall",
    "wrap32",
]
