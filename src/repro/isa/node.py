"""The node: the unit of work in the simulated machine.

A *node* is a single micro-operation, the granularity at which the paper's
machines issue, schedule, execute and retire work.  Nodes are immutable
once built; program transformations (optimisation, enlargement) construct
new nodes rather than mutating existing ones.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from .ops import (
    AluOp,
    IssueClass,
    MemWidth,
    NodeKind,
    SyscallOp,
    TERMINATOR_KINDS,
    UNARY_ALU_OPS,
    issue_class_of,
)
from .registers import NUM_REGS, reg_name


class Reg:
    """A register operand."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        if not 0 <= index < NUM_REGS:
            raise ValueError(f"register index out of range: {index}")
        self.index = index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reg) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("reg", self.index))

    def __repr__(self) -> str:
        return reg_name(self.index)


class Imm:
    """An immediate (constant) operand, a signed 32-bit value."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not -(1 << 31) <= value < (1 << 31):
            raise ValueError(f"immediate out of 32-bit range: {value}")
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Imm) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("imm", self.value))

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]


class Node:
    """A single micro-operation.

    Only the fields relevant to the node's kind are populated; the factory
    functions at module scope are the intended construction interface and
    enforce the per-kind invariants.
    """

    __slots__ = (
        "kind",
        "op",
        "dest",
        "src1",
        "src2",
        "base",
        "offset",
        "width",
        "target",
        "alt_target",
        "expect_taken",
        "args",
    )

    def __init__(
        self,
        kind: NodeKind,
        *,
        op: Union[AluOp, SyscallOp, None] = None,
        dest: Optional[int] = None,
        src1: Optional[Operand] = None,
        src2: Optional[Operand] = None,
        base: Optional[int] = None,
        offset: int = 0,
        width: Optional[MemWidth] = None,
        target: Optional[str] = None,
        alt_target: Optional[str] = None,
        expect_taken: Optional[bool] = None,
        args: Tuple[int, ...] = (),
    ):
        self.kind = kind
        self.op = op
        self.dest = dest
        self.src1 = src1
        self.src2 = src2
        self.base = base
        self.offset = offset
        self.width = width
        self.target = target
        self.alt_target = alt_target
        self.expect_taken = expect_taken
        self.args = args

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def issue_class(self) -> IssueClass:
        """Slot class this node occupies in a multi-node word."""
        return issue_class_of(self.kind)

    @property
    def is_terminator(self) -> bool:
        """True if this node ends a basic block."""
        return self.kind in TERMINATOR_KINDS

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.kind is NodeKind.LOAD or self.kind is NodeKind.STORE

    # ------------------------------------------------------------------
    # Dataflow queries
    # ------------------------------------------------------------------
    def source_regs(self) -> Tuple[int, ...]:
        """Registers read by this node, in operand order."""
        regs = []
        if isinstance(self.src1, Reg):
            regs.append(self.src1.index)
        if isinstance(self.src2, Reg):
            regs.append(self.src2.index)
        if self.base is not None:
            regs.append(self.base)
        regs.extend(self.args)
        return tuple(regs)

    def dest_reg(self) -> Optional[int]:
        """Register written by this node, or None."""
        return self.dest

    def retarget(self, mapping: dict) -> "Node":
        """Return a copy with branch targets rewritten through ``mapping``.

        Labels absent from ``mapping`` are left unchanged.  Used by basic
        block enlargement to redirect control transfers to the canonical
        enlarged entry for each original label.
        """
        new_target = mapping.get(self.target, self.target)
        new_alt = mapping.get(self.alt_target, self.alt_target)
        if new_target == self.target and new_alt == self.alt_target:
            return self
        return Node(
            self.kind,
            op=self.op,
            dest=self.dest,
            src1=self.src1,
            src2=self.src2,
            base=self.base,
            offset=self.offset,
            width=self.width,
            target=new_target,
            alt_target=new_alt,
            expect_taken=self.expect_taken,
            args=self.args,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from ..program.printer import format_node

        return f"<Node {format_node(self)}>"


# ----------------------------------------------------------------------
# Factory functions
# ----------------------------------------------------------------------
def alu(op: AluOp, dest: int, src1: Operand, src2: Optional[Operand] = None) -> Node:
    """Build an ALU node ``dest = op(src1, src2)``."""
    if op in UNARY_ALU_OPS:
        if src2 is not None:
            raise ValueError(f"{op.name} takes a single source operand")
    elif src2 is None:
        raise ValueError(f"{op.name} requires two source operands")
    return Node(NodeKind.ALU, op=op, dest=dest, src1=src1, src2=src2)


def movi(dest: int, value: int) -> Node:
    """Load an immediate constant into a register."""
    return alu(AluOp.MOV, dest, Imm(value))


def mov(dest: int, src: int) -> Node:
    """Register-to-register copy."""
    return alu(AluOp.MOV, dest, Reg(src))


def load(dest: int, base: int, offset: int = 0, width: MemWidth = MemWidth.WORD) -> Node:
    """Build a load node ``dest = mem[base + offset]``."""
    return Node(NodeKind.LOAD, dest=dest, base=base, offset=offset, width=width)


def store(src: Operand, base: int, offset: int = 0, width: MemWidth = MemWidth.WORD) -> Node:
    """Build a store node ``mem[base + offset] = src``."""
    return Node(NodeKind.STORE, src1=src, base=base, offset=offset, width=width)


def branch(
    cond: int,
    taken: str,
    not_taken: str,
    expect_taken: Optional[bool] = None,
) -> Node:
    """Two-way conditional branch: taken iff register ``cond`` is nonzero.

    ``expect_taken`` carries an optional static prediction hint computed
    from profile data; it is consumed by the branch predictor on a BTB
    miss when static hints are enabled.
    """
    return Node(
        NodeKind.BRANCH,
        src1=Reg(cond),
        target=taken,
        alt_target=not_taken,
        expect_taken=expect_taken,
    )


def jump(target: str) -> Node:
    """Unconditional jump terminator."""
    return Node(NodeKind.JUMP, target=target)


def call(target: str, link: str) -> Node:
    """Call terminator: transfer to ``target``, return to block ``link``."""
    return Node(NodeKind.CALL, target=target, alt_target=link)


def ret() -> Node:
    """Return terminator: transfer to the most recent call's link block."""
    return Node(NodeKind.RET)


def assert_node(cond: int, expected: bool, fault_target: str) -> Node:
    """Embedded branch test inside an enlarged basic block.

    Executes silently when register ``cond``'s truth value equals
    ``expected``; otherwise it *signals*, discarding the containing block
    and transferring control to ``fault_target``.
    """
    return Node(
        NodeKind.ASSERT,
        src1=Reg(cond),
        expect_taken=expected,
        target=fault_target,
    )


def syscall(
    op: SyscallOp,
    next_label: Optional[str],
    args: Sequence[int] = (),
    dest: Optional[int] = None,
) -> Node:
    """System-call terminator; execution continues at ``next_label``.

    ``next_label`` is None only for EXIT (which never continues).
    """
    if op is SyscallOp.EXIT:
        if next_label is not None:
            raise ValueError("EXIT has no continuation block")
    elif next_label is None:
        raise ValueError(f"{op.name} requires a continuation label")
    return Node(
        NodeKind.SYSCALL, op=op, dest=dest, target=next_label, args=tuple(args)
    )
