"""Register-file layout and software conventions.

The abstract machine has 64 general-purpose 32-bit registers.  The
conventions below are *software* conventions used by the Mini-C code
generator; the hardware treats all registers uniformly (dynamic machines
rename them away entirely).
"""

from __future__ import annotations

NUM_REGS = 64

#: Return value / first scratch register.
RV = 0
#: Argument registers (up to six register arguments).
ARG_REGS = (1, 2, 3, 4, 5, 6)
#: Expression-evaluation scratch registers.
SCRATCH_FIRST = 8
SCRATCH_LAST = 27
#: Registers available for allocating unaddressed scalar locals.
LOCAL_FIRST = 28
LOCAL_LAST = 59
#: Assembler temporary (address computation).
AT = 60
#: Frame pointer.
FP = 61
#: Stack pointer.
SP = 62
#: Global-segment base pointer.
GP = 63


def reg_name(index: int) -> str:
    """Human-readable register name used by the assembly printer."""
    special = {AT: "at", FP: "fp", SP: "sp", GP: "gp"}
    if index in special:
        return special[index]
    return f"r{index}"


_NAME_TO_REG = {reg_name(i): i for i in range(NUM_REGS)}
# Numeric aliases for the special registers are also accepted.
for _i in (AT, FP, SP, GP):
    _NAME_TO_REG[f"r{_i}"] = _i


def parse_reg(name: str) -> int:
    """Inverse of :func:`reg_name`; raises ``ValueError`` on bad names."""
    try:
        return _NAME_TO_REG[name]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None
