"""32-bit two's-complement integer semantics.

Every register and word-sized memory cell in the simulated machine holds a
32-bit two's-complement value.  Python integers are unbounded, so all ALU
results are normalised through :func:`wrap32`.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000
INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


def wrap32(value: int) -> int:
    """Wrap an unbounded integer into signed 32-bit range."""
    value &= MASK32
    if value & SIGN_BIT:
        value -= 1 << 32
    return value


def to_unsigned32(value: int) -> int:
    """Reinterpret a signed 32-bit value as unsigned."""
    return value & MASK32


def sdiv32(a: int, b: int) -> int:
    """Truncating signed division (C semantics), wrapped to 32 bits."""
    if b == 0:
        raise ZeroDivisionError("division by zero in simulated program")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap32(q)


def smod32(a: int, b: int) -> int:
    """Remainder with the sign of the dividend (C semantics)."""
    if b == 0:
        raise ZeroDivisionError("modulo by zero in simulated program")
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    return wrap32(r)


def shl32(a: int, b: int) -> int:
    """Left shift; shift counts are taken modulo 32."""
    return wrap32(a << (b & 31))


def sar32(a: int, b: int) -> int:
    """Arithmetic (sign-propagating) right shift."""
    return wrap32(a >> (b & 31))


def shr32(a: int, b: int) -> int:
    """Logical (zero-filling) right shift."""
    return wrap32(to_unsigned32(a) >> (b & 31))
