"""Operation and node-kind enumerations for the node ISA.

The paper's intermediate form consists of *nodes* (micro-operations) of two
datapath classes -- ALU nodes and memory nodes -- plus control nodes
(branches, asserts) and syscall boundaries.  The issue models in the paper
constrain how many nodes of each class can be issued per cycle, so every
node must classify itself via :meth:`NodeKind.issue_class`.
"""

from __future__ import annotations

import enum


class NodeKind(enum.Enum):
    """Top-level classification of a node."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"  # conditional two-way branch terminator
    JUMP = "jump"  # unconditional jump terminator
    CALL = "call"  # call terminator (link = fall-through block)
    RET = "ret"  # return terminator
    ASSERT = "assert"  # embedded branch test inside an enlarged block
    SYSCALL = "syscall"  # system-call terminator (excluded from statistics)


class IssueClass(enum.Enum):
    """Datapath slot class a node consumes in a multi-node word."""

    ALU = "alu"
    MEM = "mem"
    NONE = "none"  # consumes no datapath slot (syscall boundary)


#: Node kinds that terminate a basic block.
TERMINATOR_KINDS = frozenset(
    {
        NodeKind.BRANCH,
        NodeKind.JUMP,
        NodeKind.CALL,
        NodeKind.RET,
        NodeKind.SYSCALL,
    }
)

#: Node kinds that access data memory.
MEMORY_KINDS = frozenset({NodeKind.LOAD, NodeKind.STORE})


def issue_class_of(kind: NodeKind) -> IssueClass:
    """Map a node kind to the issue-slot class it consumes.

    Branches, asserts and ALU operations all occupy ALU slots (the paper's
    instruction words contain only memory and ALU node slots); loads and
    stores occupy memory slots.
    """
    if kind in MEMORY_KINDS:
        return IssueClass.MEM
    if kind is NodeKind.SYSCALL:
        return IssueClass.NONE
    return IssueClass.ALU


class AluOp(enum.Enum):
    """Arithmetic/logic operations available to ALU nodes.

    All operations are defined on 32-bit two's-complement integers with
    wrap-around semantics (see :mod:`repro.isa.intmath`).
    """

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"  # truncating signed division; div by zero faults
    MOD = "mod"  # remainder with sign of dividend
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"  # arithmetic shift right
    SHRU = "shru"  # logical shift right
    NOT = "not"  # unary bitwise complement (src2 ignored)
    NEG = "neg"  # unary negate (src2 ignored)
    MOV = "mov"  # copy src1 (src2 ignored); src1 may be an immediate
    SLT = "slt"  # set dest to 1 if src1 < src2 (signed) else 0
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    SGT = "sgt"
    SGE = "sge"


#: ALU ops whose second source operand is ignored.
UNARY_ALU_OPS = frozenset({AluOp.NOT, AluOp.NEG, AluOp.MOV})

#: Comparison ops (produce 0/1).
COMPARE_ALU_OPS = frozenset(
    {AluOp.SLT, AluOp.SLE, AluOp.SEQ, AluOp.SNE, AluOp.SGT, AluOp.SGE}
)


class MemWidth(enum.Enum):
    """Access width for loads and stores."""

    BYTE = 1
    WORD = 4


class SyscallOp(enum.Enum):
    """System calls provided by the host environment.

    The paper's simulator hands embedded system calls to the host OS and
    excludes them from the collected statistics; ours are serviced by
    :mod:`repro.interp.syscalls` and likewise excluded.
    """

    EXIT = "exit"  # arg0 = exit status
    GETC = "getc"  # arg0 = fd; returns next byte or -1 at EOF
    PUTC = "putc"  # arg0 = fd, arg1 = byte value
    SBRK = "sbrk"  # arg0 = size in bytes; returns old break address
    READ = "read"  # arg0 = fd, arg1 = buffer, arg2 = max; returns count
    WRITE = "write"  # arg0 = fd, arg1 = buffer, arg2 = len; returns count
