"""Optimisation passes: liveness, local optimisation, CFG simplification."""

from .liveness import LivenessInfo, compute_liveness
from .localopt import eliminate_dead, forward_optimize, optimize_block
from .pipeline import optimize_program
from .simplify_cfg import merge_chains, remove_unreachable, simplify, thread_jumps

__all__ = [
    "LivenessInfo",
    "compute_liveness",
    "eliminate_dead",
    "forward_optimize",
    "merge_chains",
    "optimize_block",
    "optimize_program",
    "remove_unreachable",
    "simplify",
    "thread_jumps",
]
