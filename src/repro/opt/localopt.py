"""Local (within-block) optimisations.

These run after code generation and again during basic block enlargement,
where re-optimising a merged block is exactly the paper's mechanism for
removing the "artificial flow dependencies" between adjacent blocks.

Passes (applied in one forward scan plus one backward scan per block):

* constant and copy propagation with register versioning,
* constant folding and algebraic strength reduction,
* common-subexpression elimination over ALU results,
* redundant-load elimination with store-to-load forwarding,
* dead-node elimination against global live-out sets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..isa import node as nd
from ..isa.intmath import wrap32
from ..isa.node import Imm, Node, Operand, Reg
from ..isa.ops import AluOp, NodeKind
from ..program.block import BasicBlock
from .liveness import node_uses


def _fold(op: AluOp, a: int, b: Optional[int]) -> Optional[int]:
    """Evaluate an ALU op over constants; None when not foldable."""
    from ..isa import intmath

    if op is AluOp.MOV:
        return a
    if op is AluOp.NOT:
        return wrap32(~a)
    if op is AluOp.NEG:
        return wrap32(-a)
    if b is None:
        return None
    try:
        table = {
            AluOp.ADD: lambda: wrap32(a + b),
            AluOp.SUB: lambda: wrap32(a - b),
            AluOp.MUL: lambda: wrap32(a * b),
            AluOp.DIV: lambda: intmath.sdiv32(a, b),
            AluOp.MOD: lambda: intmath.smod32(a, b),
            AluOp.AND: lambda: wrap32(a & b),
            AluOp.OR: lambda: wrap32(a | b),
            AluOp.XOR: lambda: wrap32(a ^ b),
            AluOp.SHL: lambda: intmath.shl32(a, b),
            AluOp.SHR: lambda: intmath.sar32(a, b),
            AluOp.SHRU: lambda: intmath.shr32(a, b),
            AluOp.SLT: lambda: int(a < b),
            AluOp.SLE: lambda: int(a <= b),
            AluOp.SEQ: lambda: int(a == b),
            AluOp.SNE: lambda: int(a != b),
            AluOp.SGT: lambda: int(a > b),
            AluOp.SGE: lambda: int(a >= b),
        }
        return table[op]()
    except ZeroDivisionError:
        return None


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class _BlockState:
    """Forward-scan dataflow state with register versioning."""

    def __init__(self) -> None:
        self.version: Dict[int, int] = {}
        self.const: Dict[int, int] = {}
        #: dest reg -> (src reg, src version) for valid copies
        self.copies: Dict[int, Tuple[int, int]] = {}
        #: expression key -> (reg, version-of-reg-at-recording)
        self.avail: Dict[tuple, Tuple[int, int]] = {}
        #: memory key -> (reg, version)
        self.loads: Dict[tuple, Tuple[int, int]] = {}

    def ver(self, reg: int) -> int:
        return self.version.get(reg, 0)

    def operand_key(self, operand: Operand) -> tuple:
        if isinstance(operand, Imm):
            return ("i", operand.value)
        return ("r", operand.index, self.ver(operand.index))

    def reg_key(self, reg: int) -> tuple:
        return ("r", reg, self.ver(reg))

    def holds(self, entry: Tuple[int, int]) -> Optional[int]:
        """Return the register if the recorded value is still current."""
        reg, version = entry
        return reg if self.ver(reg) == version else None

    def write(self, reg: int) -> None:
        self.version[reg] = self.ver(reg) + 1
        self.const.pop(reg, None)
        self.copies.pop(reg, None)

    def substitute(self, operand: Optional[Operand]) -> Optional[Operand]:
        """Rewrite an operand through known constants and copies."""
        if not isinstance(operand, Reg):
            return operand
        reg = operand.index
        if reg in self.const:
            return Imm(self.const[reg])
        if reg in self.copies:
            src, version = self.copies[reg]
            if self.ver(src) == version:
                if src in self.const:
                    return Imm(self.const[src])
                return Reg(src)
        return operand

    def substitute_base(self, base: Optional[int]) -> Optional[int]:
        """Rewrite a memory base register through valid copies."""
        if base is None:
            return None
        if base in self.copies:
            src, version = self.copies[base]
            if self.ver(src) == version:
                return src
        return base


def _rebuild(node: Node, src1: Optional[Operand], src2: Optional[Operand],
             base: Optional[int], op: Optional[AluOp] = None) -> Node:
    """Copy a node with replaced operands (and optionally a new ALU op)."""
    return Node(
        node.kind,
        op=op if op is not None else node.op,
        dest=node.dest,
        src1=src1,
        src2=src2,
        base=base,
        offset=node.offset,
        width=node.width,
        target=node.target,
        alt_target=node.alt_target,
        expect_taken=node.expect_taken,
        args=node.args,
    )


def _reduce_alu(node: Node) -> Node:
    """Algebraic simplification of one ALU node (operands already final)."""
    op = node.op
    src1, src2 = node.src1, node.src2

    if isinstance(src1, Imm):
        folded = _fold(op, src1.value, src2.value if isinstance(src2, Imm) else None)
        if folded is not None and (src2 is None or isinstance(src2, Imm)):
            return nd.movi(node.dest, folded)

    if src2 is None or not isinstance(src2, Imm):
        # Try x - x, x ^ x with equal registers.
        if (
            isinstance(src1, Reg)
            and isinstance(src2, Reg)
            and src1.index == src2.index
            and op in (AluOp.SUB, AluOp.XOR)
        ):
            return nd.movi(node.dest, 0)
        return node

    value = src2.value
    if op in (AluOp.ADD, AluOp.SUB, AluOp.OR, AluOp.XOR, AluOp.SHL,
              AluOp.SHR, AluOp.SHRU) and value == 0:
        return _rebuild(node, src1, None, None, op=AluOp.MOV)
    if op is AluOp.MUL:
        if value == 0:
            return nd.movi(node.dest, 0)
        if value == 1:
            return _rebuild(node, src1, None, None, op=AluOp.MOV)
        if _is_pow2(value):
            return _rebuild(node, src1, Imm(value.bit_length() - 1), None,
                            op=AluOp.SHL)
    if op is AluOp.DIV and value == 1:
        return _rebuild(node, src1, None, None, op=AluOp.MOV)
    if op is AluOp.AND and value == 0:
        return nd.movi(node.dest, 0)
    return node


def forward_optimize(nodes: List[Node]) -> List[Node]:
    """Constant/copy propagation, folding, CSE and load reuse over a block.

    Takes the full node list (terminator last) and returns a rewritten
    list of the same length or shorter (nodes are replaced, never removed
    here; removal is the backward pass's job).
    """
    state = _BlockState()
    result: List[Node] = []

    for node in nodes:
        kind = node.kind
        src1 = state.substitute(node.src1)
        # Branch/assert conditions must stay in a register.
        if kind in (NodeKind.BRANCH, NodeKind.ASSERT) and isinstance(src1, Imm):
            src1 = node.src1
        src2 = state.substitute(node.src2)
        base = state.substitute_base(node.base)
        node = _rebuild(node, src1, src2, base)

        if kind is NodeKind.ALU:
            node = _reduce_alu(node)
            dest = node.dest
            if node.op is AluOp.MOV and isinstance(node.src1, Imm):
                state.write(dest)
                state.const[dest] = node.src1.value
                result.append(node)
                continue
            if node.op is AluOp.MOV and isinstance(node.src1, Reg):
                src = node.src1.index
                if src == dest:
                    # Self-copy: keep versioning stable, drop the node.
                    continue
                state.write(dest)
                state.copies[dest] = (src, state.ver(src))
                result.append(node)
                continue
            # CSE over the computed expression.
            key = (
                node.op,
                state.operand_key(node.src1) if node.src1 is not None else None,
                state.operand_key(node.src2) if node.src2 is not None else None,
            )
            hit = state.avail.get(key)
            if hit is not None:
                held = state.holds(hit)
                if held is not None and held != dest:
                    state.write(dest)
                    state.copies[dest] = (held, state.ver(held))
                    result.append(nd.mov(dest, held))
                    continue
            state.write(dest)
            state.avail[key] = (dest, state.ver(dest))
            result.append(node)
            continue

        if kind is NodeKind.LOAD:
            key = ("m", state.reg_key(base), node.offset, node.width)
            hit = state.loads.get(key)
            if hit is not None:
                held = state.holds(hit)
                if held is not None:
                    dest = node.dest
                    if held == dest:
                        # Reloading a value the register already holds.
                        continue
                    state.write(dest)
                    state.copies[dest] = (held, state.ver(held))
                    result.append(nd.mov(dest, held))
                    continue
            state.write(node.dest)
            state.loads[key] = (node.dest, state.ver(node.dest))
            result.append(node)
            continue

        if kind is NodeKind.STORE:
            # Conservative: any store invalidates all remembered loads.
            state.loads.clear()
            if isinstance(node.src1, Reg):
                key = ("m", state.reg_key(base), node.offset, node.width)
                src = node.src1.index
                state.loads[key] = (src, state.ver(src))
            result.append(node)
            continue

        if node.dest is not None:  # syscall result
            state.write(node.dest)
        result.append(node)

    return result


def eliminate_dead(nodes: List[Node], live_out: Set[int]) -> List[Node]:
    """Backward dead-node elimination given registers live at block exit."""
    live = set(live_out)
    kept_reversed: List[Node] = []
    for node in reversed(nodes):
        dest = node.dest_reg()
        removable = (
            node.kind in (NodeKind.ALU, NodeKind.LOAD)
            and dest is not None
            and dest not in live
        )
        if removable:
            continue
        kept_reversed.append(node)
        if dest is not None:
            live.discard(dest)
        live.update(node_uses(node))
    kept_reversed.reverse()
    return kept_reversed


def optimize_block(block: BasicBlock, live_out: Set[int]) -> BasicBlock:
    """Run the forward and backward local passes over one block."""
    nodes = forward_optimize(list(block.nodes()))
    nodes = eliminate_dead(nodes, live_out)
    if not nodes or not nodes[-1].is_terminator:
        raise AssertionError(f"optimiser dropped terminator of {block.label}")
    return block.with_body(nodes[:-1], nodes[-1])
