"""Global register liveness over a whole program.

Liveness is computed once over the full CFG (including call and fault
edges) with conservative boundary conditions at returns, and is consumed
by dead-node elimination and by enlargement re-optimisation.

Boundary conditions encode the code generator's conventions:

* a RET block's live-out is {rv, sp, gp} plus the callee-saved local
  registers (their values belong to the caller);
* CALL terminators use the argument registers conservatively (arity is
  not tracked at this level);
* an EXIT syscall ends the program, so nothing is live after it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..isa.ops import NodeKind
from ..isa.registers import ARG_REGS, GP, LOCAL_FIRST, LOCAL_LAST, RV, SP
from ..program.block import BasicBlock
from ..program.program import Program

#: Registers assumed live when a function returns.
RETURN_LIVE: FrozenSet[int] = frozenset(
    {RV, SP, GP} | set(range(LOCAL_FIRST, LOCAL_LAST + 1))
)


def node_uses(node) -> tuple:
    """Registers a node reads, including conservative CALL uses."""
    if node.kind is NodeKind.CALL:
        return tuple(ARG_REGS) + (SP, GP)
    return node.source_regs()


def block_use_def(block: BasicBlock):
    """Compute (use, def) register sets for one block.

    ``use`` holds registers read before any write in the block; ``def``
    holds registers written anywhere in the block.
    """
    uses: Set[int] = set()
    defs: Set[int] = set()
    for node in block.nodes():
        for reg in node_uses(node):
            if reg not in defs:
                uses.add(reg)
        dest = node.dest_reg()
        if dest is not None:
            defs.add(dest)
    return uses, defs


class LivenessInfo:
    """Computed live-in/live-out register sets per block label."""

    def __init__(self, live_in: Dict[str, Set[int]], live_out: Dict[str, Set[int]]):
        self.live_in = live_in
        self.live_out = live_out


def compute_liveness(program: Program) -> LivenessInfo:
    """Iterative backward dataflow to a fixpoint."""
    use: Dict[str, Set[int]] = {}
    define: Dict[str, Set[int]] = {}
    succs: Dict[str, tuple] = {}
    boundary: Dict[str, Set[int]] = {}

    for block in program:
        use[block.label], define[block.label] = block_use_def(block)
        succs[block.label] = block.successor_labels()
        term = block.terminator
        if term.kind is NodeKind.RET:
            boundary[block.label] = set(RETURN_LIVE)
        else:
            boundary[block.label] = set()

    live_in: Dict[str, Set[int]] = {label: set() for label in use}
    live_out: Dict[str, Set[int]] = {label: set() for label in use}

    changed = True
    while changed:
        changed = False
        for label in use:
            out = set(boundary[label])
            for succ in succs[label]:
                out |= live_in[succ]
            new_in = use[label] | (out - define[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return LivenessInfo(live_in, live_out)
