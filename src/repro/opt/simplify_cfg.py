"""Control-flow graph simplification.

Removes the structural noise straight-line code generation leaves behind
(empty forwarding blocks, unreachable blocks, single-successor chains) so
that block-size statistics and the enlargement planner see realistic basic
blocks, comparable to the paper's decompiled object code.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..isa.ops import NodeKind
from ..program.block import BasicBlock
from ..program.cfg import predecessors, unreachable_labels
from ..program.program import Program


def _forwarding_map(program: Program) -> Dict[str, str]:
    """Map each empty ``jmp``-only block to its final destination."""
    direct: Dict[str, str] = {}
    for block in program:
        if not block.body and block.terminator.kind is NodeKind.JUMP:
            direct[block.label] = block.terminator.target

    resolved: Dict[str, str] = {}
    for label in direct:
        seen = {label}
        target = direct[label]
        while target in direct and target not in seen:
            seen.add(target)
            target = direct[target]
        if target != label:
            resolved[label] = target
    return resolved


def thread_jumps(program: Program) -> Program:
    """Redirect control transfers through empty jump-only blocks."""
    mapping = _forwarding_map(program)
    # Never redirect away from the entry block.
    mapping.pop(program.entry, None)
    if not mapping:
        return program

    new_blocks: List[BasicBlock] = []
    for block in program:
        body = [node.retarget(mapping) for node in block.body]
        terminator = block.terminator.retarget(mapping)
        new_blocks.append(BasicBlock(block.label, body, terminator, block.origin))
    return Program(
        new_blocks,
        program.entry,
        data=program.data,
        data_size=program.data_size,
        symbols=program.symbols,
    )


def remove_unreachable(program: Program) -> Program:
    """Drop blocks not reachable from the entry."""
    dead: Set[str] = unreachable_labels(program)
    if not dead:
        return program
    kept = [block for block in program if block.label not in dead]
    return Program(
        kept,
        program.entry,
        data=program.data,
        data_size=program.data_size,
        symbols=program.symbols,
    )


def merge_chains(program: Program) -> Program:
    """Merge ``A -> jmp B`` where B has exactly one predecessor.

    The merged block keeps A's label; every mention of B is gone.  CALL
    link blocks and syscall continuations are never merged away because
    their predecessors reach them via non-JUMP terminators.
    """
    preds = predecessors(program)
    merged_into: Dict[str, str] = {}
    blocks: Dict[str, BasicBlock] = {label: blk for label, blk in program.blocks.items()}

    changed = True
    while changed:
        changed = False
        for label in list(blocks):
            block = blocks.get(label)
            if block is None or block.terminator.kind is not NodeKind.JUMP:
                continue
            target = block.terminator.target
            if target == label or target == program.entry:
                continue
            target_block = blocks.get(target)
            if target_block is None:
                continue
            if len(preds[target]) != 1:
                continue
            # Merge target into block.
            merged = BasicBlock(
                block.label,
                block.body + target_block.body,
                target_block.terminator,
                block.origin or target_block.origin,
            )
            blocks[label] = merged
            del blocks[target]
            # Successor predecessor lists: replace `target` with `label`.
            for succ in target_block.successor_labels():
                preds[succ] = [label if p == target else p for p in preds[succ]]
            merged_into[target] = label
            changed = True
    if not merged_into:
        return program
    return Program(
        list(blocks.values()),
        program.entry,
        data=program.data,
        data_size=program.data_size,
        symbols=program.symbols,
    )


def simplify(program: Program) -> Program:
    """Run all CFG simplifications to a stable point."""
    program = thread_jumps(program)
    program = remove_unreachable(program)
    program = merge_chains(program)
    program = remove_unreachable(program)
    return program
