"""The standard optimisation pipeline applied to generated programs."""

from __future__ import annotations

from ..program.program import Program
from .liveness import compute_liveness
from .localopt import optimize_block
from .simplify_cfg import simplify


def optimize_program(program: Program, rounds: int = 2) -> Program:
    """Run CFG simplification and local optimisation ``rounds`` times.

    Two rounds are enough in practice: the first round's copy propagation
    exposes dead moves that the second round's liveness-driven elimination
    removes; further rounds reach a fixpoint.
    """
    for _ in range(max(1, rounds)):
        program = simplify(program)
        liveness = compute_liveness(program)
        replacements = {}
        for block in program:
            optimized = optimize_block(block, liveness.live_out[block.label])
            if optimized is not block:
                replacements[block.label] = optimized
        if replacements:
            program = program.replace_blocks(replacements)
    return simplify(program)
