"""FIFO job scheduler: the daemon's single execution loop.

One background thread owns the :class:`~repro.harness.runner.SweepRunner`
(and through it the result cache, the telemetry collector and the
execution backend), preserving the single-writer discipline of batch
sweeps exactly: HTTP threads only parse specs, take the admission lock
and read snapshots -- they never touch the cache or the collector.

Execution of one job mirrors the batch sweep loop point for point:
cache probe first (hits route through ``observe_result`` just like
``sweep`` does), then dispatch onto the shared
:class:`~repro.harness.backend.ExecutionBackend`, whose serial and pool
variants already own the cache-store/observe/merge discipline.  Because
the runner, the in-process prepared-workload cache and the pool survive
between jobs, the first job pays preparation once and every later job
that touches the same benchmarks starts warm -- the service's whole
reason to exist.

Admission control is typed: :class:`AdmissionError` carries a machine
-readable reason (``queue-full``, ``job-too-large``, ``scale-mismatch``,
``stopped``) and the HTTP status it maps to, so clients can distinguish
"retry later" from "fix your request".

Deduplication: a point key is in flight at most once daemon-wide.  The
common cross-job case resolves through the result cache (an earlier
job's finished point is a later job's cache hit); the in-flight map
covers the live window -- most visibly the points a cancelled job left
running, which a successor job subscribes to instead of re-dispatching.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..chaos.inject import current as chaos_current
from ..harness.backend import ExecutionBackend, PointTask, make_backend
from ..harness.executor import ExecutionPolicy
from ..harness.runner import SweepRunner
from ..stats.results import SimResult
from ..telemetry import prometheus
from ..telemetry.logging import get_logger
from .jobs import (
    GridSpec,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobJournal,
    PointJob,
    SpecError,
    SweepJob,
    TERMINAL_STATES,
    default_journal_path,
)

#: Hard ceiling a job's event list may grow to; earlier point events are
#: dropped (the job's ``results`` list keeps every record regardless).
MAX_EVENTS_PER_JOB = 10_000

_LOG = get_logger("service")


class AdmissionError(Exception):
    """Typed admission rejection (the service is full or stopping)."""

    def __init__(self, reason: str, message: str, http_status: int = 429,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.reason = reason
        self.http_status = http_status
        self.retry_after_s = retry_after_s

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "error": "admission",
            "reason": self.reason,
            "message": str(self),
        }
        if self.retry_after_s is not None:
            document["retry_after_s"] = self.retry_after_s
        return document


class UnknownJobError(KeyError):
    """No such job id (404)."""


class JobScheduler:
    """Accepts jobs, runs them FIFO, and streams progress events."""

    def __init__(self, runner: SweepRunner, *,
                 backend: Optional[ExecutionBackend] = None,
                 policy: Optional[ExecutionPolicy] = None,
                 jobs: int = 1,
                 max_queued_jobs: int = 8,
                 max_job_points: int = 5600,
                 journal_path: Optional[str] = None,
                 validate: bool = False):
        self.runner = runner
        self.backend = backend if backend is not None else make_backend(
            runner, policy, jobs=jobs
        )
        self.max_queued_jobs = max_queued_jobs
        self.max_job_points = max_job_points
        self.validate = validate
        self.started_at = time.time()

        self._cond = threading.Condition()
        self._jobs: Dict[str, SweepJob] = {}
        self._order: List[str] = []  # acceptance order, for listings
        self._queue: Deque[str] = deque()
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        #: point key -> job ids awaiting its outcome (daemon-wide dedup).
        self._inflight: Dict[str, List[str]] = {}
        self._seq = 0
        self._stop_requested = False
        self._thread: Optional[threading.Thread] = None
        #: admission-side counters (mutated under the lock by HTTP
        #: threads; kept off the collector, which only the scheduler
        #: thread writes).
        self.stats: Dict[str, int] = {
            "jobs.accepted": 0,
            "jobs.rejected.queue-full": 0,
            "jobs.rejected.job-too-large": 0,
            "jobs.rejected.scale-mismatch": 0,
            "jobs.rejected.stopped": 0,
            "jobs.rejected.journal-error": 0,
            "jobs.done": 0,
            "jobs.failed": 0,
            "jobs.cancelled": 0,
            "points.deduped": 0,
        }
        #: scheduler-thread refresh of the collector's counters, so
        #: ``/metrics`` reads never race collector writes.  Histograms
        #: and spans are refreshed at job boundaries only (they copy
        #: sample lists, which would be quadratic per point).
        self._counters_view: Dict[str, int] = {}
        self._histograms_view: Dict[str, List[float]] = {}

        self._journal = JobJournal(
            journal_path if journal_path is not None
            else default_journal_path()
        )
        self._recover()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout_s: float = 60.0, cancel_pending: bool = True) -> None:
        """Stop the loop, optionally cancelling queued/running jobs.

        In-flight points of the running job are abandoned with the
        backend (their results, if any completed, are already in the
        cache); accepted-but-unfinished jobs stay journaled and re-queue
        on the next start.
        """
        with self._cond:
            self._stop_requested = True
            if cancel_pending:
                for job in self._jobs.values():
                    if not job.terminal:
                        job.cancel_requested = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None
        self.backend.close()
        self._journal.close()

    # ------------------------------------------------------------------
    # admission (called from HTTP threads)
    # ------------------------------------------------------------------
    def submit(self, spec: GridSpec) -> Dict[str, Any]:
        """Accept (journal + queue) one job, or raise a typed rejection."""
        scale = spec.scale if spec.scale is not None else self.runner.scale
        if scale != self.runner.scale:
            with self._cond:
                self.stats["jobs.rejected.scale-mismatch"] += 1
            raise AdmissionError(
                "scale-mismatch",
                f"this daemon serves scale {self.runner.scale}, not {scale}"
                " (result-cache keys embed the scale)",
                http_status=400,
            )
        points = spec.points(scale)
        digest = spec.digest(scale)
        with self._cond:
            if self._stop_requested:
                self.stats["jobs.rejected.stopped"] += 1
                raise AdmissionError(
                    "stopped", "the service is shutting down",
                    http_status=503,
                    retry_after_s=10.0,
                )
            if len(points) > self.max_job_points:
                self.stats["jobs.rejected.job-too-large"] += 1
                raise AdmissionError(
                    "job-too-large",
                    f"job has {len(points)} points; this daemon admits at"
                    f" most {self.max_job_points} per job",
                    http_status=429,
                    retry_after_s=60.0,
                )
            if len(self._queue) >= self.max_queued_jobs:
                self.stats["jobs.rejected.queue-full"] += 1
                raise AdmissionError(
                    "queue-full",
                    f"{len(self._queue)} job(s) already queued (bound"
                    f" {self.max_queued_jobs}); retry later",
                    http_status=429,
                    retry_after_s=5.0,
                )
            self._seq += 1
            job = SweepJob(
                job_id=f"{digest}-{self._seq:04d}",
                spec=spec, seq=self._seq, scale=scale,
                points_total=len(points),
            )
            try:
                self._admit(job)
            except OSError as exc:
                # Journal-first admission: nothing was registered, so
                # reject and roll the sequence number back -- job ids
                # must not burn sequence slots on unacknowledged jobs.
                self._seq -= 1
                self.stats["jobs.rejected.journal-error"] += 1
                _LOG.error("journal_append_rejected", job_id=job.job_id,
                           error=f"{type(exc).__name__}: {exc}")
                raise AdmissionError(
                    "journal-error",
                    f"cannot journal acceptance: {exc}",
                    http_status=503,
                    retry_after_s=1.0,
                ) from exc
            self.stats["jobs.accepted"] += 1
            self._cond.notify_all()
            _LOG.info("job_accepted", job_id=job.job_id,
                      points=job.points_total, scale=scale,
                      queue_depth=len(self._queue))
            return job.to_dict(include_results=False)

    def _admit(self, job: SweepJob) -> None:
        """Register one queued job (lock held): journal, queue, event.

        Journal-first: until the accept record is durably appended,
        nothing is registered -- a failed append leaves no half-admitted
        job behind (the caller translates the OSError into a retryable
        503 rejection).
        """
        self._journal.append({
            "event": "accept",
            "job_id": job.job_id,
            "seq": job.seq,
            "scale": job.scale,
            "points_total": job.points_total,
            "spec": job.spec.to_dict(),
        })
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        self._events[job.job_id] = []
        self._queue.append(job.job_id)
        self._emit(job, "job.queued", queue_depth=len(self._queue))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; queued jobs settle immediately."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            if job.terminal:
                return job.to_dict(include_results=False)
            job.cancel_requested = True
            if job.state == JOB_QUEUED:
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass
                self._finish_locked(job, JOB_CANCELLED)
            self._cond.notify_all()
            return job.to_dict(include_results=False)

    # ------------------------------------------------------------------
    # read side (called from HTTP threads)
    # ------------------------------------------------------------------
    def job(self, job_id: str, include_results: bool = True) -> Dict[str, Any]:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            return job.to_dict(include_results=include_results)

    def jobs(self) -> List[Dict[str, Any]]:
        with self._cond:
            return [
                self._jobs[job_id].to_dict(include_results=False)
                for job_id in self._order
            ]

    def wait_events(self, job_id: str, after: int = 0,
                    timeout_s: float = 25.0,
                    ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Long-poll: events past ``after``, or until timeout/terminal.

        Returns ``(events, job snapshot)``; an empty event list means
        the timeout elapsed with nothing new (the client re-polls).
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise UnknownJobError(job_id)
                events = self._events[job_id]
                # Filter by seq, not list index: the front of a very
                # long stream may have been truncated.
                fresh = [dict(event) for event in events
                         if event["seq"] > after]
                if fresh or job.terminal:
                    return fresh, job.to_dict(include_results=False)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], job.to_dict(include_results=False)
                self._cond.wait(remaining)

    def health(self) -> Dict[str, Any]:
        with self._cond:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "ok": True,
                "uptime_s": round(time.time() - self.started_at, 3),
                "queued": len(self._queue),
                "inflight_points": len(self._inflight),
                "jobs": states,
                "scale": self.runner.scale,
                "backend": self.backend.name,
                "stopping": self._stop_requested,
            }

    def metrics(self) -> Dict[str, Any]:
        """Counter snapshot for ``/metrics.json``.

        Collector counters come from the scheduler thread's last
        refresh (never a live read of a dict another thread is
        writing); admission counters are merged in under the lock.
        """
        with self._cond:
            counters = dict(self._counters_view)
            for name, value in self.stats.items():
                counters[f"service.{name}"] = value
            return {
                "schema": "repro.service.metrics/1",
                "counters": dict(sorted(counters.items())),
                "service": self.health(),
            }

    def metrics_text(self) -> str:
        """The ``/metrics`` body: Prometheus text exposition (0.0.4).

        Counters and latency histograms come from scheduler-thread
        snapshot views (counters per point resolution, histograms per
        job boundary); queue depth, in-flight points and uptime ride as
        gauges so a scraper sees service pressure without parsing the
        JSON health document.
        """
        with self._cond:
            counters = dict(self._counters_view)
            for name, value in self.stats.items():
                counters[f"service.{name}"] = value
            histograms = {
                name: list(values)
                for name, values in self._histograms_view.items()
            }
            gauges = {
                "service.queue.depth": float(len(self._queue)),
                "service.points.inflight": float(len(self._inflight)),
                "service.uptime_seconds": round(
                    time.time() - self.started_at, 3
                ),
                "service.stopping": float(self._stop_requested),
            }
        return prometheus.render_exposition(counters, gauges, histograms)

    # ------------------------------------------------------------------
    # journal recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: finished jobs reappear, pending re-queue.

        Completed points are *not* replayed -- they live in the result
        cache -- so a re-queued job re-runs as cache hits instead of
        duplicating work.  The journal is compacted afterwards so it
        does not grow across restart cycles.
        """
        records = JobJournal.replay(self._journal.path,
                                    collector=self.runner.collector)
        if not records:
            return
        final_state: Dict[str, Dict[str, Any]] = {}
        accepted: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        for record in records:
            job_id = record.get("job_id")
            if not isinstance(job_id, str):
                continue
            if record.get("event") == "accept":
                if job_id not in accepted:
                    accepted[job_id] = record
                    order.append(job_id)
            elif record.get("event") == "state":
                final_state[job_id] = record
        compacted: List[Dict[str, Any]] = []
        with self._cond:
            self._recover_jobs(accepted, final_state, order, compacted)
        self._journal.rewrite(compacted)

    def _recover_jobs(self, accepted: Dict[str, Dict[str, Any]],
                      final_state: Dict[str, Dict[str, Any]],
                      order: List[str],
                      compacted: List[Dict[str, Any]]) -> None:
        """Rebuild job state from replayed records (lock held)."""
        for job_id in order:
            record = accepted[job_id]
            try:
                spec = GridSpec.from_dict(record.get("spec"))
                scale = int(record["scale"])
                seq = int(record["seq"])
                points_total = int(record["points_total"])
            except (SpecError, KeyError, TypeError, ValueError):
                continue  # an unusable record: drop it from the compaction
            job = SweepJob(job_id=job_id, spec=spec, seq=seq, scale=scale,
                           points_total=points_total)
            self._seq = max(self._seq, seq)
            state_record = final_state.get(job_id)
            state = (state_record or {}).get("state")
            compacted.append({key: record[key] for key in
                              ("event", "job_id", "seq", "scale",
                               "points_total", "spec")})
            if state in TERMINAL_STATES:
                job.state = state
                job.error = (state_record or {}).get("error")
                points = (state_record or {}).get("points")
                if isinstance(points, dict):
                    job.points_cached = int(points.get("cached", 0))
                    job.points_fresh = int(points.get("fresh", 0))
                    job.points_failed = int(points.get("failed", 0))
                    job.points_deduped = int(points.get("deduped", 0))
                compacted.append({key: value
                                  for key, value in state_record.items()
                                  if key != "v"})
            else:
                # Accepted but unfinished when the daemon died: run it
                # (again); its completed points are cache hits.
                job.state = JOB_QUEUED
                self._queue.append(job_id)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._events[job_id] = []
            if job.state == JOB_QUEUED:
                self._emit(job, "job.requeued", recovered=True)

    # ------------------------------------------------------------------
    # scheduler thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            job: Optional[SweepJob] = None
            drain = False
            with self._cond:
                while not self._queue and not self._stop_requested:
                    if self._inflight:
                        drain = True
                        break
                    self._cond.wait(timeout=0.2)
                if not drain:
                    if self._stop_requested and not self._queue:
                        return
                    job_id = self._queue.popleft()
                    job = self._jobs[job_id]
            if drain:
                # Idle with leftovers (a cancelled job's in-flight
                # points): settle them so their results reach the cache.
                for outcome in self.backend.finish():
                    self._deliver(outcome)
                continue
            assert job is not None
            if job.cancel_requested:
                with self._cond:
                    self._finish_locked(job, JOB_CANCELLED)
                continue
            self._execute(job)

    def _execute(self, job: SweepJob) -> None:
        collector = self.runner.collector
        log = _LOG.bind(job_id=job.job_id)
        with self._cond:
            job.state = JOB_RUNNING
            job.started_s = time.time()
            queue_wait_s = job.started_s - job.created_s
            self._journal_append_safe({"event": "state",
                                       "job_id": job.job_id,
                                       "state": JOB_RUNNING})
            self._emit(job, "job.running",
                       queue_wait_s=round(queue_wait_s, 6))
        if collector.enabled:
            collector.observe("service.job.queue_wait_s", queue_wait_s)
        log.info("job_running", queue_wait_s=round(queue_wait_s, 3),
                 points=job.points_total)
        snap0 = dict(collector.counters) if collector.enabled else {}
        spans0 = len(collector.spans) if collector.enabled else 0
        run_start = time.perf_counter()
        try:
            for point in job.spec.points(job.scale):
                if job.cancel_requested:
                    break
                self._step(job, point)
            if not job.cancel_requested:
                # Drain everything outstanding -- this job's dispatches
                # plus any leftovers it subscribed to.
                for outcome in self.backend.finish():
                    self._deliver(outcome)
        except Exception as exc:  # noqa: BLE001 - a job must not kill the loop
            log.error("job_crashed", error=f"{type(exc).__name__}: {exc}")
            with self._cond:
                job.error = f"{type(exc).__name__}: {exc}"
                self._finish_locked(job, JOB_FAILED)
                self._refresh_histograms_locked()
            return
        if collector.enabled:
            deltas = {
                name: value - snap0.get(name, 0)
                for name, value in collector.counters.items()
                if value != snap0.get(name, 0)
            }
            collector.add_span("job.run",
                               time.perf_counter() - run_start,
                               job_id=job.job_id)
            # Aggregate the phase spans this job produced and stream
            # them over the job's event feed, one event per phase.
            phase_totals: Dict[str, List[float]] = {}
            for span in collector.spans[spans0:]:
                entry = phase_totals.setdefault(span["name"], [0.0, 0])
                entry[0] += span["dur_s"]
                entry[1] += 1
            with self._cond:
                for name in sorted(phase_totals):
                    total_s, count = phase_totals[name]
                    self._emit(job, "span", name=name,
                               total_s=round(total_s, 6), count=count)
                self._refresh_histograms_locked()
        else:
            deltas = {}
        self._flush_cache_safe()
        report = None
        if (self.validate and not job.cancel_requested and job.sim_results):
            from ..validate import run_oracle

            report = run_oracle(job.sim_results, scale=job.scale)
        with self._cond:
            job.counters = deltas
            if report is not None:
                job.validation = report.to_dict()
            if job.cancel_requested:
                state = JOB_CANCELLED
            elif job.points_failed:
                state = JOB_FAILED
                job.error = f"{job.points_failed} point(s) failed"
            else:
                state = JOB_DONE
            self._finish_locked(job, state)

    def _journal_append_safe(self, record: Dict[str, Any]) -> None:
        """Append a non-admission record, tolerating journal I/O failure.

        Acceptance appends are load-bearing (they gate admission); state
        records are best-effort -- losing one costs a replay-time
        re-queue that settles as cache hits, never lost work.
        """
        try:
            self._journal.append(record)
        except OSError as exc:
            _LOG.warning("journal_append_failed",
                         job_id=record.get("job_id"),
                         event=record.get("event"),
                         error=f"{type(exc).__name__}: {exc}")
            eng = chaos_current()
            if eng is not None:
                eng.mark_recovered("journal.append")

    def _flush_cache_safe(self) -> None:
        """Terminal cache flush (scheduler thread): retry a failed write.

        ``ResultCache.flush`` is a no-op unless a previous write failed
        and left dirty entries behind; this second chance keeps a
        transient I/O error from losing the job's last results.
        """
        cache = self.runner.cache
        if cache is None:
            return
        try:
            cache.flush()
        except OSError:
            self.runner.collector.count("sweep.cache.store_error")

    def _step(self, job: SweepJob, point: PointJob) -> None:
        """One point: dedup subscription, cache probe, or dispatch."""
        with self._cond:
            waiters = self._inflight.get(point.key)
            if waiters is not None:
                waiters.append(job.job_id)
                job.points_deduped += 1
                self.stats["points.deduped"] += 1
                return
        hit = self.runner.cache_lookup(point.benchmark, point.config)
        if hit is not None:
            self._resolve(job, point.benchmark, str(point.config),
                          "cached", hit)
            return
        with self._cond:
            self._inflight[point.key] = [job.job_id]
        for outcome in self.backend.submit(
            PointTask(point.benchmark, point.config, point.key)
        ):
            self._deliver(outcome)

    def _deliver(self, outcome) -> None:
        """Route one backend outcome to every job subscribed to its key.

        The backend already performed the cache store and
        ``observe_result`` under the single-writer discipline; this
        layer only does job bookkeeping.
        """
        with self._cond:
            subscribers = self._inflight.pop(outcome.task.key, [])
        status = "failed" if outcome.failure is not None else "fresh"
        for index, job_id in enumerate(subscribers):
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                continue
            self._resolve(
                job, outcome.task.benchmark, str(outcome.task.config),
                status, outcome.result,
                error=(outcome.failure.kind
                       if outcome.failure is not None else None),
                deduped=index > 0,
            )

    def _resolve(self, job: SweepJob, benchmark: str, config: str,
                 status: str, result: Optional[SimResult],
                 error: Optional[str] = None, deduped: bool = False) -> None:
        """Record one resolved point on one job and emit its event."""
        record: Dict[str, Any] = {
            "benchmark": benchmark,
            "config": config,
            "status": status,
        }
        if result is not None:
            record["ipc"] = result.retired_per_cycle
            record["cycles"] = result.cycles
        if error is not None:
            record["error"] = error
        if deduped:
            record["deduped"] = True
        with self._cond:
            if status == "cached":
                job.points_cached += 1
            elif status == "failed":
                job.points_failed += 1
            else:
                job.points_fresh += 1
            if result is not None:
                job.sim_results.append(result)
            job.results.append(record)
            self._refresh_counters_locked()
            self._emit(job, "point", resolved=job.points_resolved,
                       total=job.points_total, **record)

    def _finish_locked(self, job: SweepJob, state: str) -> None:
        """Terminal transition (lock held): journal, stats, final event."""
        job.state = state
        job.finished_s = time.time()
        stat = {JOB_DONE: "jobs.done", JOB_FAILED: "jobs.failed",
                JOB_CANCELLED: "jobs.cancelled"}[state]
        self.stats[stat] += 1
        self._journal_append_safe({
            "event": "state",
            "job_id": job.job_id,
            "state": state,
            "error": job.error,
            "points": {
                "cached": job.points_cached,
                "fresh": job.points_fresh,
                "failed": job.points_failed,
                "deduped": job.points_deduped,
            },
        })
        self._refresh_counters_locked()
        self._emit(job, f"job.{state}",
                   points=job.to_dict(include_results=False)["points"],
                   error=job.error,
                   wall_s=(round(job.finished_s - job.started_s, 6)
                           if job.started_s is not None else None))
        _LOG.info("job_" + state, job_id=job.job_id,
                  cached=job.points_cached, fresh=job.points_fresh,
                  failed=job.points_failed, deduped=job.points_deduped,
                  error=job.error)

    def _refresh_counters_locked(self) -> None:
        collector = self.runner.collector
        if collector.enabled:
            self._counters_view = dict(collector.counters)

    def _refresh_histograms_locked(self) -> None:
        """Scheduler-thread only: histograms copy whole sample lists."""
        collector = self.runner.collector
        if collector.enabled:
            self._histograms_view = {
                name: list(values)
                for name, values in collector.histograms.items()
            }

    def _emit(self, job: SweepJob, kind: str, **payload: Any) -> None:
        """Append one event to a job's stream (lock held) and wake waiters."""
        events = self._events[job.job_id]
        # Derive seq from the last event, not the list length: truncation
        # shrinks the list but the stream's numbering must stay monotonic.
        events.append({
            "seq": (events[-1]["seq"] + 1) if events else 1,
            "ts": time.time(),
            "kind": kind,
            "job_id": job.job_id,
            **payload,
        })
        if len(events) > MAX_EVENTS_PER_JOB:
            del events[: len(events) - MAX_EVENTS_PER_JOB]
        self._cond.notify_all()
