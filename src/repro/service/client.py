"""HTTP client for the simulation service (stdlib ``urllib`` only).

Used by the ``repro-sim submit`` CLI verb, the service-mode bench and
the test suite.  Every transport or protocol problem surfaces as a
typed exception so callers can map outcomes to exit codes:

* :class:`AdmissionRejected` -- the daemon's typed 429/503 rejection,
  carrying its machine-readable ``reason`` (``queue-full``, ...);
* :class:`JobNotFound` -- 404 for an unknown job id;
* :class:`JobFailed` -- a waited-on job reached a terminal state other
  than ``done``;
* :class:`ServiceError` -- anything else (connection refused, bad
  response, HTTP 500s).

Retry policy (``retries > 0``): transient failures -- retryable
admission rejections (``queue-full``, ``stopped``, ``journal-error``),
5xx responses and connection-level errors -- are retried with capped
exponential backoff plus seeded jitter.  The daemon's ``Retry-After``
hint, surfaced as ``retry_after_s`` on the exception, overrides the
exponential base when present.  ``rng`` and ``sleep`` are injectable so
tests control both the jitter and the clock.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..chaos.inject import current as chaos_current
from .jobs import TERMINAL_STATES

#: Admission reasons worth retrying: pressure and transient daemon
#: states, never spec errors (those recur deterministically).
RETRYABLE_REASONS = frozenset({
    "queue-full",
    "stopped",
    "journal-error",
    "injected-503",
})


class ServiceError(Exception):
    """Transport- or protocol-level failure talking to the daemon."""

    #: whether a retry-enabled client may re-attempt the request.
    retryable = False
    #: the daemon's Retry-After hint in seconds, when one was sent.
    retry_after_s: Optional[float] = None


class AdmissionRejected(ServiceError):
    """The daemon refused the job (typed 429/503 admission response)."""

    def __init__(self, reason: str, message: str,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class JobNotFound(ServiceError):
    """The daemon does not know this job id."""


class JobFailed(ServiceError):
    """A waited-on job finished in a non-``done`` state."""

    def __init__(self, job: Dict[str, Any]):
        super().__init__(
            f"job {job.get('job_id')} finished {job.get('state')}"
            + (f": {job['error']}" if job.get("error") else "")
        )
        self.job = job


def _parse_retry_after(headers: Any) -> Optional[float]:
    """The Retry-After header as seconds, when present and numeric."""
    if headers is None:
        return None
    raw = headers.get("Retry-After")
    if raw is None:
        return None
    try:
        return float(raw)
    except (TypeError, ValueError):
        return None


class ServiceClient:
    """Minimal JSON-over-HTTP client for one service daemon."""

    def __init__(self, base_url: str = "http://127.0.0.1:8737",
                 timeout_s: float = 30.0, retries: int = 0,
                 backoff_s: float = 0.25, max_backoff_s: float = 10.0,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    # ------------------------------------------------------------------
    def _retry_delay(self, attempt: int,
                     retry_after_s: Optional[float]) -> float:
        """Capped backoff honoring the daemon's Retry-After hint."""
        if retry_after_s is not None:
            base = retry_after_s
        else:
            base = self.backoff_s * (2 ** (attempt - 1))
        capped = min(base, self.max_backoff_s)
        return capped + self._rng.uniform(0.0, self.backoff_s / 2)

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout_s: Optional[float] = None) -> Dict[str, Any]:
        attempt = 0
        while True:
            try:
                payload = self._request_once(method, path, body, timeout_s)
            except JobNotFound:
                raise
            except AdmissionRejected as exc:
                if (attempt >= self.retries
                        or exc.reason not in RETRYABLE_REASONS):
                    raise
                delay_hint = exc.retry_after_s
            except ServiceError as exc:
                if attempt >= self.retries or not exc.retryable:
                    raise
                delay_hint = exc.retry_after_s
            else:
                if attempt:
                    eng = chaos_current()
                    if eng is not None:
                        eng.mark_recovered("http.request")
                return payload
            attempt += 1
            self._sleep(self._retry_delay(attempt, delay_hint))

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None,
                      timeout_s: Optional[float] = None) -> Dict[str, Any]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout_s or self.timeout_s
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {}
            if exc.code == 404:
                raise JobNotFound(
                    payload.get("error", f"not found: {path}")
                ) from None
            if payload.get("error") == "admission":
                raise AdmissionRejected(
                    payload.get("reason", "unknown"),
                    payload.get("message", f"rejected ({exc.code})"),
                    payload.get("retry_after_s"),
                ) from None
            error = ServiceError(
                f"HTTP {exc.code} on {method} {path}:"
                f" {payload.get('error', exc.reason)}"
            )
            if exc.code >= 500:
                error.retryable = True
                error.retry_after_s = _parse_retry_after(exc.headers)
            raise error from None
        except urllib.error.URLError as exc:
            # Connection refused / reset mid-request: the daemon may be
            # restarting; retry-enabled callers re-attempt.
            error = ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            )
            error.retryable = True
            raise error from None
        except ConnectionError as exc:
            # urllib only wraps errors from sending the request; a reset
            # while *reading* the response (http.client's
            # RemoteDisconnected) escapes raw.  Same remedy: retry.
            error = ServiceError(
                f"connection to {self.base_url} dropped mid-request: {exc}"
            )
            error.retryable = True
            raise error from None
        if not isinstance(payload, dict):
            raise ServiceError(f"malformed response from {method} {path}")
        return payload

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """The JSON counter snapshot (``/metrics.json``)."""
        return self._request("GET", "/metrics.json")

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition (``/metrics``)."""
        request = urllib.request.Request(
            self.base_url + "/metrics", method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc}"
            ) from None

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a grid spec; returns the accepted job snapshot."""
        return self._request("POST", "/jobs", body=spec)

    def job(self, job_id: str, include_results: bool = True) -> Dict[str, Any]:
        suffix = "" if include_results else "?results=0"
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs").get("jobs", [])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def events(self, job_id: str, after: int = 0, timeout_s: float = 25.0,
               ) -> Tuple[List[Dict[str, Any]], int, Dict[str, Any]]:
        """One long-poll: ``(events, next_after, job snapshot)``."""
        payload = self._request(
            "GET",
            f"/jobs/{job_id}/events?after={after}&timeout={timeout_s:g}",
            timeout_s=timeout_s + 10.0,
        )
        return (payload.get("events", []), int(payload.get("next", after)),
                payload.get("job", {}))

    # ------------------------------------------------------------------
    def wait(self, job_id: str, poll_timeout_s: float = 25.0,
             deadline_s: Optional[float] = None,
             on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
             ) -> Dict[str, Any]:
        """Long-poll a job's event stream until it reaches a terminal state.

        Returns the final job snapshot (``done`` only); any other
        terminal state raises :class:`JobFailed`.  ``on_event`` sees
        every event exactly once, in order.
        """
        deadline = (time.monotonic() + deadline_s
                    if deadline_s is not None else None)
        after = 0
        while True:
            events, after, job = self.events(
                job_id, after=after, timeout_s=poll_timeout_s
            )
            if on_event is not None:
                for event in events:
                    on_event(event)
            if job.get("state") in TERMINAL_STATES:
                final = self.job(job_id)
                if final.get("state") != "done":
                    raise JobFailed(final)
                return final
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {job.get('state')} after"
                    f" {deadline_s:g}s"
                )

    def wait_ready(self, attempts: int = 40, delay_s: float = 0.25,
                   ) -> Dict[str, Any]:
        """Poll ``/healthz`` until the daemon answers (startup races)."""
        last: Optional[ServiceError] = None
        for _ in range(max(1, attempts)):
            try:
                return self.health()
            except ServiceError as exc:
                last = exc
                time.sleep(delay_s)
        raise ServiceError(
            f"service at {self.base_url} never became ready: {last}"
        )
