"""Long-running simulation service: daemon, job queue, HTTP API, client.

The batch entry points (``sweep``, ``validate``, ``bench``) pay the
expensive half of every run -- compiling, profiling, enlarging and
tracing workloads -- on each invocation, and throw the warm state away
on exit.  The service keeps all of it resident: prepared workloads stay
in the in-process cache, the result cache stays loaded, and (under
``--jobs N``) the worker pool stays up, so overlapping grid queries are
served at cache-hit speed after the first request.

Layers (see DESIGN.md "Service layer"):

* :mod:`~repro.service.jobs` -- typed :class:`SweepJob` records with
  deterministic ids derived from result-cache keys, job states, and the
  JSONL job journal that survives daemon restarts;
* :mod:`~repro.service.scheduler` -- FIFO :class:`JobScheduler` fanning
  job points onto an :class:`~repro.harness.backend.ExecutionBackend`,
  with admission control (typed :class:`AdmissionError` rejections),
  in-flight point deduplication and cancellation;
* :mod:`~repro.service.http_api` -- a stdlib-only HTTP front end
  (``http.server``): submit, status, long-poll events, health, metrics;
* :mod:`~repro.service.client` -- the :class:`ServiceClient` used by
  the ``repro-sim serve`` / ``repro-sim submit`` CLI verbs and tests.
"""

from .jobs import (
    GridSpec,
    JOB_STATES,
    JobJournal,
    SpecError,
    SweepJob,
    TERMINAL_STATES,
)
from .scheduler import AdmissionError, JobScheduler, UnknownJobError
from .client import (
    AdmissionRejected,
    JobFailed,
    JobNotFound,
    ServiceClient,
    ServiceError,
)
from .http_api import ServiceServer, make_server

__all__ = [
    "AdmissionError",
    "AdmissionRejected",
    "GridSpec",
    "JOB_STATES",
    "JobFailed",
    "JobJournal",
    "JobNotFound",
    "JobScheduler",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SpecError",
    "SweepJob",
    "TERMINAL_STATES",
    "UnknownJobError",
    "make_server",
]
