"""Job model for the simulation service.

A job is one grid query -- "simulate these benchmarks over this
configuration grid" -- accepted by the daemon and executed
asynchronously.  Two design rules keep the model restart-safe:

* **Deterministic identity.**  A job's id is derived from the sorted
  result-cache keys of its points (plus a per-daemon acceptance
  sequence number for uniqueness), so identical grid queries are
  recognizably identical across restarts, logs and clients, and the
  id pins exactly which ``CACHE_VERSION`` the results belong to.
* **Journaled acceptance.**  Every accepted job and every state
  transition is appended to a JSONL journal before it is acknowledged.
  A daemon restart replays the journal: finished jobs reappear for
  status queries, and accepted-but-unfinished jobs are re-queued.  The
  journal never records results -- completed points live in the result
  cache, which is why a replayed job re-runs at cache-hit speed instead
  of duplicating work.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..chaos.inject import current as chaos_current
from ..harness.cache import result_key
from ..machine.config import (
    MachineConfig,
    cache_configuration_space,
    full_configuration_space,
    sched_configuration_space,
    smoke_configuration_space,
    spec_configuration_space,
)
from ..telemetry.collector import Collector, NULL_COLLECTOR
from ..telemetry.logging import get_logger

_LOG = get_logger("journal")

#: Journal layout version (a line with another version is ignored).
JOURNAL_VERSION = 1

#: Default journal filename, placed next to the result cache.
JOURNAL_BASENAME = "service.journal.jsonl"

# Job lifecycle -------------------------------------------------------
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)
TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED, JOB_CANCELLED})

#: The configuration grids a job may ask for.  The ``cache`` grid is
#: per-benchmark (workloads may pin their own memory letters), so its
#: space function takes the benchmark name; the shared grids ignore it.
GRIDS = {
    "smoke": lambda benchmark=None: smoke_configuration_space(),
    "full": lambda benchmark=None: full_configuration_space(),
    "cache": cache_configuration_space,
    "spec": spec_configuration_space,
    "sched": sched_configuration_space,
}


class SpecError(ValueError):
    """A malformed or unsatisfiable grid spec (the client's fault: 400)."""


def default_journal_path() -> str:
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return os.path.join(root, JOURNAL_BASENAME)


@dataclass(frozen=True)
class PointJob:
    """One (benchmark, configuration) point of a job's fan-out."""

    benchmark: str
    config: MachineConfig
    #: result-cache key; also the scheduler's deduplication key.
    key: str


@dataclass(frozen=True)
class GridSpec:
    """What a client asks the service to simulate.

    ``scale`` of None means "the daemon's configured scale" -- the
    result-cache keys embed the scale, so one daemon serves one scale
    and the scheduler rejects explicit mismatches at admission.
    """

    benchmarks: Tuple[str, ...]
    grid: str = "smoke"
    scale: Optional[int] = None
    #: keep only the first N points of the fan-out (budgeting / tests).
    limit: Optional[int] = None

    @classmethod
    def from_dict(cls, raw: Any) -> "GridSpec":
        """Parse and validate an untrusted spec document."""
        from ..workloads import WORKLOADS

        if not isinstance(raw, dict):
            raise SpecError("spec must be a JSON object")
        unknown_fields = set(raw) - {"benchmarks", "grid", "scale", "limit"}
        if unknown_fields:
            raise SpecError(f"unknown spec fields: {sorted(unknown_fields)}")
        benchmarks = raw.get("benchmarks")
        if benchmarks is None:
            benchmarks = sorted(WORKLOADS)
        if (not isinstance(benchmarks, (list, tuple)) or not benchmarks
                or not all(isinstance(name, str) for name in benchmarks)):
            raise SpecError("benchmarks must be a non-empty list of names")
        unknown = [name for name in benchmarks if name not in WORKLOADS]
        if unknown:
            raise SpecError(f"unknown benchmarks: {unknown}")
        grid = raw.get("grid", "smoke")
        if grid not in GRIDS:
            raise SpecError(f"unknown grid {grid!r}; pick from {sorted(GRIDS)}")
        scale = raw.get("scale")
        if scale is not None and (not isinstance(scale, int) or scale < 1):
            raise SpecError("scale must be a positive integer")
        limit = raw.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 1):
            raise SpecError("limit must be a positive integer")
        return cls(benchmarks=tuple(benchmarks), grid=grid, scale=scale,
                   limit=limit)

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "benchmarks": list(self.benchmarks),
            "grid": self.grid,
        }
        if self.scale is not None:
            document["scale"] = self.scale
        if self.limit is not None:
            document["limit"] = self.limit
        return document

    # ------------------------------------------------------------------
    def points(self, scale: int) -> List[PointJob]:
        """The job's fan-out, benchmark-major (prepare once per benchmark).

        Benchmark-major order matters for the same reason it does in a
        parallel sweep: a benchmark's expensive prepare happens on its
        first point, so grouping keeps at most one prepare in flight and
        every later point of that benchmark rides the warm workload.
        """
        space = GRIDS[self.grid]
        out: List[PointJob] = []
        for name in self.benchmarks:
            for config in space(name):
                out.append(PointJob(name, config,
                                    result_key(name, config, scale)))
        if self.limit is not None:
            out = out[: self.limit]
        return out

    def digest(self, scale: int) -> str:
        """Deterministic identity of this grid query at this scale.

        Hashes the sorted result-cache keys, so two specs naming the
        same point set -- and only those -- share a digest, and any
        ``CACHE_VERSION`` bump changes every digest with it.
        """
        hasher = hashlib.sha256()
        for key in sorted(point.key for point in self.points(scale)):
            hasher.update(key.encode())
            hasher.update(b"\n")
        return hasher.hexdigest()[:12]


@dataclass
class SweepJob:
    """One accepted grid query and everything known about its progress.

    Mutable state is owned by the scheduler (all mutation happens under
    its lock); HTTP handlers only ever see :meth:`to_dict` snapshots.
    """

    job_id: str
    spec: GridSpec
    seq: int
    scale: int
    points_total: int
    state: str = JOB_QUEUED
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    points_cached: int = 0
    points_fresh: int = 0
    points_failed: int = 0
    #: points this job did not dispatch because an identical point was
    #: already in flight for another job (it shares that outcome).
    points_deduped: int = 0
    cancel_requested: bool = False
    error: Optional[str] = None
    #: per-job telemetry counter deltas, stamped at completion.
    counters: Dict[str, int] = field(default_factory=dict)
    #: per-job validation oracle report (``serve --validate``).
    validation: Optional[Dict[str, Any]] = None
    #: one summary record per resolved point, in resolution order.
    results: List[Dict[str, Any]] = field(default_factory=list)
    #: SimResult objects for this job (validation input; not serialized).
    sim_results: List[Any] = field(default_factory=list)

    @property
    def points_resolved(self) -> int:
        return self.points_cached + self.points_fresh + self.points_failed

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_results: bool = True) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "job_id": self.job_id,
            "seq": self.seq,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "scale": self.scale,
            "points": {
                "total": self.points_total,
                "resolved": self.points_resolved,
                "cached": self.points_cached,
                "fresh": self.points_fresh,
                "failed": self.points_failed,
                "deduped": self.points_deduped,
            },
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
        }
        if self.counters:
            document["counters"] = dict(self.counters)
        if self.validation is not None:
            document["validation"] = self.validation
        if include_results:
            document["results"] = [dict(record) for record in self.results]
        return document


class JobJournal:
    """Append-only JSONL record of accepted jobs and their transitions.

    One line per event, flushed immediately, so a killed daemon loses at
    most the event being written.  Replay tolerates a truncated final
    line (the usual crash artefact) by skipping unparsable lines.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = None

    def _open(self):
        if self._handle is None:
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            heal = False
            try:
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    heal = probe.read(1) != b"\n"
            except (OSError, ValueError):
                pass  # absent or empty journal: nothing to heal
            self._handle = open(self.path, "a", encoding="utf-8")
            if heal:
                # The previous writer died mid-record.  Terminate the
                # torn tail so this writer's first record starts on a
                # fresh line instead of gluing onto the fragment (which
                # would garble a well-formed record too).
                self._handle.write("\n")
                self._handle.flush()
                _LOG.warning("journal_torn_tail_healed", path=self.path)
        return self._handle

    def append(self, record: Dict[str, Any]) -> None:
        record = dict(record)
        record["v"] = JOURNAL_VERSION
        line = json.dumps(record, sort_keys=True) + "\n"
        eng = chaos_current()
        if eng is not None:
            rule = eng.act("journal.append", ("torn-write", "io-error",
                                              "delay"))
            if rule is not None and rule.kind == "torn-write":
                handle = self._open()
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                self.close()  # the writer "died" mid-record
                return
        handle = self._open()
        handle.write(line)
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: str,
               collector: Collector = NULL_COLLECTOR) -> List[Dict[str, Any]]:
        """All well-formed journal records at ``path``, in write order.

        A truncated final line (the usual crash artefact) is skipped and
        counted under ``journal.torn_tail``; an unparsable line anywhere
        else means on-disk damage and counts under ``journal.garbled``.
        Both are logged -- replay never raises on bad records.
        """
        records: List[Dict[str, Any]] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw_lines = handle.readlines()
        except OSError:
            return []
        for index, line in enumerate(raw_lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if index == len(raw_lines) - 1:
                    collector.count("journal.torn_tail")
                    _LOG.warning("journal_torn_tail", path=path,
                                 line=index + 1)
                else:
                    collector.count("journal.garbled")
                    _LOG.warning("journal_garbled_record", path=path,
                                 line=index + 1)
                eng = chaos_current()
                if eng is not None:
                    eng.mark_recovered("journal.append")
                continue
            if (isinstance(record, dict)
                    and record.get("v") == JOURNAL_VERSION):
                records.append(record)
        return records

    def rewrite(self, records: Sequence[Dict[str, Any]]) -> None:
        """Compact the journal to ``records`` (restart-time hygiene)."""
        self.close()
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in records:
                record = dict(record)
                record["v"] = JOURNAL_VERSION
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
