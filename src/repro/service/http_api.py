"""Stdlib-only HTTP front end for the simulation service.

Built on ``http.server.ThreadingHTTPServer``: each request runs on its
own thread, but every handler only calls the thread-safe surface of
:class:`~repro.service.scheduler.JobScheduler` (admission lock +
snapshots), so the scheduler thread remains the single writer of the
cache, the checkpointed journal and the telemetry collector.

Routes (all JSON):

==========================================  ===============================
``POST /jobs``                              submit a grid spec -> 202 job
``GET /jobs``                               list jobs (no per-point results)
``GET /jobs/{id}``                          status + partial results
``GET /jobs/{id}/events?after=N&timeout=S`` long-poll progress events
``POST /jobs/{id}/cancel``                  request cancellation
``GET /healthz``                            liveness + queue depths
``GET /metrics``                            Prometheus text exposition
``GET /metrics.json``                       telemetry counter snapshot
==========================================  ===============================

(``/metrics`` is plain text for scrapers; every other route is JSON.)

Errors: 400 malformed spec, 404 unknown job, 429/503 typed admission
rejections (body carries the machine-readable ``reason``; queue-full
responses include ``Retry-After``).
"""

from __future__ import annotations

import json
import re
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..chaos.inject import current as chaos_current
from ..telemetry.logging import get_logger
from ..telemetry.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from .jobs import GridSpec, SpecError
from .scheduler import AdmissionError, JobScheduler, UnknownJobError

_LOG = get_logger("http")

#: Longest long-poll a single request may hold (clients re-poll).
MAX_POLL_S = 60.0

_JOB_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9._-]+)$")
_EVENTS_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9._-]+)/events$")
_CANCEL_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9._-]+)/cancel$")

#: Request body size bound: a grid spec is tiny; anything big is abuse.
MAX_BODY_BYTES = 64 * 1024


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> JobScheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:  # type: ignore[attr-defined]
            _LOG.info("request", client=self.address_string(),
                      line=format % args)

    def _send(self, status: int, payload: Dict[str, Any],
              headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body_text: str,
                   content_type: str) -> None:
        body = body_text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **extra: Any) -> None:
        self._send(status, {"error": message, **extra})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SpecError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise SpecError("request body is not valid JSON") from None

    def _chaos_fault(self) -> bool:
        """Chaos injection at request entry (before any dispatch).

        Injecting *before* the scheduler sees the request keeps every
        faulted request idempotent to retry -- a 503'd or reset POST
        never half-submitted a job.  Returns True when the request was
        consumed by the fault.
        """
        eng = chaos_current()
        if eng is None:
            return False
        rule = eng.act("http.request", ("http-503", "conn-reset", "delay"))
        if rule is None or rule.kind == "delay":
            return False  # delay already slept inside act(); proceed
        # Either fault consumes the request without reading its body, so
        # the connection cannot be reused for a follow-up request.
        self.close_connection = True
        if rule.kind == "http-503":
            # Admission-shaped body so clients map it onto their typed,
            # retryable rejection path.
            self._send(503, {
                "error": "admission",
                "reason": "injected-503",
                "message": "chaos: injected 503",
                "retry_after_s": 0.05,
            }, {"Retry-After": "0"})
        else:  # conn-reset
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        return True

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self._chaos_fault():
            return
        parsed = urlparse(self.path)
        path, query = parsed.path, parse_qs(parsed.query)
        try:
            if path == "/healthz":
                self._send(200, self.scheduler.health())
            elif path == "/metrics":
                self._send_text(200, self.scheduler.metrics_text(),
                                _PROM_CONTENT_TYPE)
            elif path == "/metrics.json":
                self._send(200, self.scheduler.metrics())
            elif path == "/jobs":
                self._send(200, {"jobs": self.scheduler.jobs()})
            elif _JOB_ROUTE.match(path):
                job_id = _JOB_ROUTE.match(path).group(1)
                include = query.get("results", ["1"])[0] not in ("0", "false")
                self._send(200, self.scheduler.job(
                    job_id, include_results=include
                ))
            elif _EVENTS_ROUTE.match(path):
                self._get_events(_EVENTS_ROUTE.match(path).group(1), query)
            else:
                self._error(404, f"no such route: {path}")
        except UnknownJobError as exc:
            self._error(404, f"no such job: {exc.args[0]}")
        except (ValueError, TypeError) as exc:
            self._error(400, str(exc))

    def _get_events(self, job_id: str, query: Dict[str, list]) -> None:
        after = int(query.get("after", ["0"])[0])
        timeout_s = min(float(query.get("timeout", ["25"])[0]), MAX_POLL_S)
        events, job = self.scheduler.wait_events(
            job_id, after=after, timeout_s=timeout_s
        )
        next_after = events[-1]["seq"] if events else after
        self._send(200, {"events": events, "next": next_after, "job": job})

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self._chaos_fault():
            return
        path = urlparse(self.path).path
        try:
            if path == "/jobs":
                spec = GridSpec.from_dict(self._read_body())
                job = self.scheduler.submit(spec)
                self._send(202, job)
            elif _CANCEL_ROUTE.match(path):
                job_id = _CANCEL_ROUTE.match(path).group(1)
                self._send(200, self.scheduler.cancel(job_id))
            else:
                self._error(404, f"no such route: {path}")
        except SpecError as exc:
            self._error(400, str(exc))
        except AdmissionError as exc:
            headers = {}
            if exc.retry_after_s is not None:
                headers["Retry-After"] = str(int(exc.retry_after_s))
            self._send(exc.http_status, exc.to_dict(), headers)
        except UnknownJobError as exc:
            self._error(404, f"no such job: {exc.args[0]}")


class ServiceServer(ThreadingHTTPServer):
    """The daemon's HTTP server, carrying its scheduler reference."""

    daemon_threads = True
    #: a killed daemon should release its port immediately on restart.
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], scheduler: JobScheduler,
                 quiet: bool = False):
        super().__init__(address, _Handler)
        self.scheduler = scheduler
        self.quiet = quiet


def make_server(scheduler: JobScheduler, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = False) -> ServiceServer:
    """Bind (but do not serve) the HTTP front end; port 0 picks a free one."""
    return ServiceServer((host, port), scheduler, quiet=quiet)
