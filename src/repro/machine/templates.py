"""Precompiled timing templates for basic blocks.

The timing engines replay traces over millions of nodes; to keep the hot
loops free of enum dispatch and attribute chasing, each block is compiled
once into flat tuples of small integers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.ops import NodeKind
from ..program.block import BasicBlock
from ..program.program import Program

# Timing node classes.
T_ALU = 0
T_LOAD = 1
T_STORE = 2
T_BRANCH = 3
T_ASSERT = 4
T_CONTROL = 5  # jump / call / ret: ALU-class control transfer
T_SYSCALL = 6  # no datapath slot, excluded from node statistics

#: Classes that occupy a memory issue slot.
MEM_CLASSES = frozenset({T_LOAD, T_STORE})


class BlockTemplate:
    """One basic block, flattened for timing replay.

    ``nodes`` holds ``(cls, dest, srcs)`` tuples in issue order
    (terminator last); ``dest`` is -1 when the node writes no register.
    """

    __slots__ = (
        "label",
        "nodes",
        "n_datapath",
        "n_mem",
        "term_kind",
        "branch_taken",
        "branch_alt",
        "static_hint",
        "control_target",
        "call_link",
        "fault_targets",
        "is_exit",
    )

    def __init__(self, block: BasicBlock):
        self.label = block.label
        self.nodes: List[Tuple[int, int, Tuple[int, ...]]] = []
        self.fault_targets: Dict[int, str] = {}
        self.n_mem = 0

        for index, node in enumerate(block.nodes()):
            kind = node.kind
            dest = node.dest if node.dest is not None else -1
            srcs = node.source_regs()
            if kind is NodeKind.ALU:
                cls = T_ALU
            elif kind is NodeKind.LOAD:
                cls = T_LOAD
                self.n_mem += 1
            elif kind is NodeKind.STORE:
                cls = T_STORE
                self.n_mem += 1
            elif kind is NodeKind.BRANCH:
                cls = T_BRANCH
            elif kind is NodeKind.ASSERT:
                cls = T_ASSERT
                self.fault_targets[index] = node.target
            elif kind is NodeKind.SYSCALL:
                cls = T_SYSCALL
            else:
                cls = T_CONTROL
            self.nodes.append((cls, dest, srcs))

        self.n_datapath = sum(1 for cls, _, _ in self.nodes if cls != T_SYSCALL)

        term = block.terminator
        self.term_kind = term.kind
        self.branch_taken: Optional[str] = None
        self.branch_alt: Optional[str] = None
        self.static_hint: Optional[bool] = None
        self.control_target: Optional[str] = None
        self.call_link: Optional[str] = None
        self.is_exit = False
        if term.kind is NodeKind.BRANCH:
            self.branch_taken = term.target
            self.branch_alt = term.alt_target
            self.static_hint = term.expect_taken
        elif term.kind is NodeKind.JUMP:
            self.control_target = term.target
        elif term.kind is NodeKind.CALL:
            self.control_target = term.target
            self.call_link = term.alt_target
        elif term.kind is NodeKind.SYSCALL:
            self.control_target = term.target  # None for EXIT
            self.is_exit = term.target is None

    @property
    def has_branch(self) -> bool:
        return self.term_kind is NodeKind.BRANCH


def build_templates(program: Program) -> Dict[str, BlockTemplate]:
    """Compile every block of ``program`` into a template."""
    return {block.label: BlockTemplate(block) for block in program}
