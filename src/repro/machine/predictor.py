"""Branch prediction: 2-bit counters in a branch target buffer.

Matches the paper's run-time simulator: dynamic prediction with 2-bit
saturating counters, optionally supplemented by static (profile-derived)
hints used only when a branch is not present in the BTB; and a perfect
mode driven by the recorded trace.

The paper notes that "the 2-bit counter is a fairly simple scheme ... it
is possible that more sophisticated techniques could yield better
prediction"; :func:`make_predictor` provides the ablation family used by
``benchmarks/test_ablations.py``: 1-bit counters, static-only,
always-taken/not-taken, and a two-level gshare scheme.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional


def _label_hash(label: str) -> int:
    """Deterministic label hash for table indexing.

    Python's ``hash(str)`` is salted per process (PYTHONHASHSEED), which
    made BTB/table placement -- and therefore collision patterns and
    mispredict counts -- vary from run to run.  CRC32 is stable across
    processes, platforms and seeds, so simulations are reproducible and
    committed baselines can pin mispredict counts exactly.
    """
    return zlib.crc32(label.encode())

#: 2-bit counter states: 0,1 predict not-taken; 2,3 predict taken.
_STRONG_NOT = 0
_WEAK_NOT = 1
_WEAK_TAKEN = 2
_STRONG_TAKEN = 3


class BranchPredictor:
    """A tagged, direct-mapped BTB of 2-bit counters.

    Branches are identified by block label (our stand-in for the branch
    PC).  A label hashes to a BTB set; a colliding label evicts the
    previous occupant, modelling the paper's "as long as the information
    remains in the branch target buffer".
    """

    def __init__(self, entries: int = 512, use_static_hints: bool = True):
        if entries <= 0:
            raise ValueError("BTB must have at least one entry")
        self.entries = entries
        self.use_static_hints = use_static_hints
        self._tags: Dict[int, str] = {}
        self._counters: Dict[int, int] = {}
        self._slot_cache: Dict[str, int] = {}
        self.lookups = 0
        self.mispredicts = 0

    # ------------------------------------------------------------------
    def _slot(self, label: str) -> int:
        slot = self._slot_cache.get(label)
        if slot is None:
            slot = _label_hash(label) % self.entries
            self._slot_cache[label] = slot
        return slot

    def predict(self, label: str, static_hint: Optional[bool] = None) -> bool:
        """Predicted direction for the branch at ``label``."""
        self.lookups += 1
        slot = self._slot(label)
        if self._tags.get(slot) == label:
            return self._counters[slot] >= _WEAK_TAKEN
        if self.use_static_hints and static_hint is not None:
            return static_hint
        return False

    def peek(self, label: str, static_hint: Optional[bool] = None) -> bool:
        """Predict without counting the lookup (wrong-path fetch)."""
        slot = self._slot(label)
        if self._tags.get(slot) == label:
            return self._counters[slot] >= _WEAK_TAKEN
        if self.use_static_hints and static_hint is not None:
            return static_hint
        return False

    def update(self, label: str, taken: bool, predicted: bool) -> None:
        """Train the counter with the resolved outcome."""
        if taken != predicted:
            self.mispredicts += 1
        slot = self._slot(label)
        if self._tags.get(slot) != label:
            self._tags[slot] = label
            self._counters[slot] = _WEAK_TAKEN if taken else _WEAK_NOT
            return
        counter = self._counters[slot]
        if taken:
            if counter < _STRONG_TAKEN:
                self._counters[slot] = counter + 1
        else:
            if counter > _STRONG_NOT:
                self._counters[slot] = counter - 1

    @property
    def accuracy(self) -> float:
        """Fraction of lookups predicted correctly (1.0 when unused)."""
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class OneBitPredictor(BranchPredictor):
    """Last-outcome (1-bit) prediction in the same tagged BTB."""

    def update(self, label: str, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self.mispredicts += 1
        slot = self._slot(label)
        self._tags[slot] = label
        self._counters[slot] = _STRONG_TAKEN if taken else _STRONG_NOT


class StaticOnlyPredictor(BranchPredictor):
    """Profile hints only; no run-time adaptation."""

    def predict(self, label: str, static_hint: Optional[bool] = None) -> bool:
        self.lookups += 1
        return bool(static_hint) if static_hint is not None else False

    def peek(self, label: str, static_hint: Optional[bool] = None) -> bool:
        return bool(static_hint) if static_hint is not None else False

    def update(self, label: str, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self.mispredicts += 1


class FixedPredictor(BranchPredictor):
    """Always predicts one direction (taken or not-taken)."""

    def __init__(self, direction: bool):
        super().__init__(entries=1, use_static_hints=False)
        self.direction = direction

    def predict(self, label: str, static_hint: Optional[bool] = None) -> bool:
        self.lookups += 1
        return self.direction

    def peek(self, label: str, static_hint: Optional[bool] = None) -> bool:
        return self.direction

    def update(self, label: str, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self.mispredicts += 1


class GSharePredictor(BranchPredictor):
    """Two-level adaptive: global history XORed into a counter table.

    A post-1991 scheme included to quantify the paper's conjecture that
    better prediction would raise the realistic curves toward the perfect
    ones.
    """

    def __init__(self, entries: int = 4096, history_bits: int = 8,
                 use_static_hints: bool = True):
        super().__init__(entries=entries, use_static_hints=use_static_hints)
        self.history_bits = history_bits
        self._history = 0
        self._table: Dict[int, int] = {}
        self._hash_cache: Dict[str, int] = {}

    def _index(self, label: str) -> int:
        raw = self._hash_cache.get(label)
        if raw is None:
            raw = _label_hash(label)
            self._hash_cache[label] = raw
        return (raw ^ self._history) % self.entries

    def predict(self, label: str, static_hint: Optional[bool] = None) -> bool:
        self.lookups += 1
        return self.peek(label, static_hint)

    def peek(self, label: str, static_hint: Optional[bool] = None) -> bool:
        counter = self._table.get(self._index(label))
        if counter is None:
            if self.use_static_hints and static_hint is not None:
                return static_hint
            return False
        return counter >= _WEAK_TAKEN

    def update(self, label: str, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self.mispredicts += 1
        index = self._index(label)
        counter = self._table.get(index)
        if counter is None:
            counter = _WEAK_TAKEN if taken else _WEAK_NOT
        elif taken and counter < _STRONG_TAKEN:
            counter += 1
        elif not taken and counter > _STRONG_NOT:
            counter -= 1
        self._table[index] = counter
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask


class PerceptronPredictor(BranchPredictor):
    """Perceptron branch prediction (Jimenez & Lin, HPCA 2001).

    Each branch hashes to a weight vector; the prediction is the sign of
    the dot product of the weights with the global history (plus a bias
    term).  Training bumps weights only on a mispredict or when the
    output magnitude is below the threshold ``theta``, the standard
    |history|-scaled cutoff.  Long-history correlation makes this the
    strongest realistic scheme in the family, used to quantify how far
    "more sophisticated techniques" (the paper's words) close the gap to
    perfect prediction.
    """

    def __init__(self, entries: int = 512, history_bits: int = 16,
                 use_static_hints: bool = True):
        super().__init__(entries=entries, use_static_hints=use_static_hints)
        self.history_bits = history_bits
        #: Jimenez & Lin's empirically best threshold: 1.93 * h + 14.
        self.theta = int(1.93 * history_bits + 14)
        self._limit = (1 << 7) - 1  # 8-bit signed weights
        #: global history as +/-1 values, most recent last.
        self._history: List[int] = [1] * history_bits
        #: slot -> [bias, w_1 .. w_h]
        self._weights: Dict[int, List[int]] = {}

    def _output(self, slot: int) -> int:
        weights = self._weights.get(slot)
        if weights is None:
            weights = [0] * (self.history_bits + 1)
            self._weights[slot] = weights
        total = weights[0]
        history = self._history
        for i in range(self.history_bits):
            if history[i] > 0:
                total += weights[i + 1]
            else:
                total -= weights[i + 1]
        return total

    def predict(self, label: str, static_hint: Optional[bool] = None) -> bool:
        self.lookups += 1
        return self.peek(label, static_hint)

    def peek(self, label: str, static_hint: Optional[bool] = None) -> bool:
        slot = self._slot(label)
        if slot not in self._weights and self.use_static_hints \
                and static_hint is not None:
            return static_hint
        return self._output(slot) >= 0

    def update(self, label: str, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self.mispredicts += 1
        slot = self._slot(label)
        output = self._output(slot)
        weights = self._weights[slot]
        if taken != (output >= 0) or abs(output) <= self.theta:
            limit = self._limit
            sign = 1 if taken else -1
            w = weights[0] + sign
            weights[0] = max(-limit, min(limit, w))
            history = self._history
            for i in range(self.history_bits):
                w = weights[i + 1] + (sign if history[i] > 0 else -sign)
                weights[i + 1] = max(-limit, min(limit, w))
        history = self._history
        history.pop(0)
        history.append(1 if taken else -1)


#: Names accepted by MachineConfig.predictor.
PREDICTOR_KINDS = (
    "twobit",
    "onebit",
    "static",
    "taken",
    "nottaken",
    "gshare",
    "perceptron",
)


def make_predictor(kind: str, use_static_hints: bool) -> BranchPredictor:
    """Build a predictor by ablation name (default ``twobit``)."""
    if kind == "twobit":
        return BranchPredictor(use_static_hints=use_static_hints)
    if kind == "onebit":
        return OneBitPredictor(use_static_hints=use_static_hints)
    if kind == "static":
        return StaticOnlyPredictor(use_static_hints=True)
    if kind == "taken":
        return FixedPredictor(True)
    if kind == "nottaken":
        return FixedPredictor(False)
    if kind == "gshare":
        return GSharePredictor(use_static_hints=use_static_hints)
    if kind == "perceptron":
        return PerceptronPredictor(use_static_hints=use_static_hints)
    raise ValueError(f"unknown predictor kind {kind!r}")
