"""Engine-level failure types and self-check limits.

The timing engines replay long functional traces; a modelling bug (or a
corrupted trace) can send the scheduling loops spinning toward infinity
or silently mis-account retired work.  These errors let the engines fail
*loudly and typed* so the fault-tolerant harness layer
(:mod:`repro.harness.executor`) can record a structured point failure
instead of wedging or poisoning a sweep.

Defined here (not in the harness) so the machine layer never imports
upward; :mod:`repro.harness.errors` re-exports them as part of the full
error taxonomy.
"""

from __future__ import annotations

import os
from typing import Optional

#: Watchdog ceiling when the caller does not choose one.  Real points in
#: this study finish in well under 10^8 cycles even at scale; anything
#: past this is a runaway scheduling loop, not a slow simulation.
DEFAULT_MAX_CYCLES = 1 << 33  # ~8.6e9 cycles


def resolve_max_cycles(max_cycles: Optional[int] = None) -> int:
    """The effective watchdog limit for one engine run.

    Precedence: explicit argument, then the ``REPRO_MAX_CYCLES``
    environment variable, then :data:`DEFAULT_MAX_CYCLES`.
    """
    if max_cycles is not None:
        return max_cycles
    raw = os.environ.get("REPRO_MAX_CYCLES")
    if raw:
        return int(raw)
    return DEFAULT_MAX_CYCLES


class SimulationError(Exception):
    """Base class for typed failures raised by the timing engines."""


class SimulationHang(SimulationError):
    """An engine's cycle counter blew past its watchdog limit.

    Raised by the per-block watchdog in :class:`StaticEngine` and
    :class:`DynamicEngine` instead of spinning forever.
    """

    def __init__(self, benchmark: str, config: str, cycle: int, limit: int):
        self.benchmark = benchmark
        self.config = config
        self.cycle = cycle
        self.limit = limit
        super().__init__(
            f"{benchmark or '<unnamed>'} on {config}: simulated cycle "
            f"{cycle} exceeded the max_cycles watchdog ({limit})"
        )


class EngineDivergence(SimulationError):
    """An engine's accounting diverged from the functional trace.

    Every block of the trace either retires or faults, so the retired
    datapath-node count of a timing run must equal the functional
    trace's; a mismatch means the replay skipped or double-counted work
    and the result cannot be trusted.
    """

    def __init__(self, benchmark: str, config: str,
                 engine_retired: int, trace_retired: int):
        self.benchmark = benchmark
        self.config = config
        self.engine_retired = engine_retired
        self.trace_retired = trace_retired
        super().__init__(
            f"{benchmark or '<unnamed>'} on {config}: engine retired "
            f"{engine_retired} nodes but the functional trace retired "
            f"{trace_retired}"
        )
