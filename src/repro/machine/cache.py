"""Two-way set-associative cache model (16-byte blocks, LRU).

Matches the paper's cache organisation: 2-way set associative, 16-byte
block size, with 1K and 16K capacities studied.  Only hit/miss behaviour
is modelled -- latency is applied by the timing engines, and the memory
system is fully pipelined so a probe never blocks later probes.
"""

from __future__ import annotations

from typing import Optional

from .config import CACHE_BLOCK_BYTES, CACHE_WAYS, MemoryConfig


class Cache:
    """Hit/miss state for one cache instance."""

    __slots__ = ("sets", "set_mask", "_way0", "_way1", "accesses", "misses")

    def __init__(self, size_bytes: int):
        sets = size_bytes // (CACHE_BLOCK_BYTES * CACHE_WAYS)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"cache size {size_bytes} gives non-power-of-2 sets")
        self.sets = sets
        self.set_mask = sets - 1
        # way0 holds the most recently used tag of each set.
        self._way0 = [-1] * sets
        self._way1 = [-1] * sets
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Probe (and fill) the line containing ``address``; True on hit."""
        line = address // CACHE_BLOCK_BYTES
        index = line & self.set_mask
        tag = line >> 0  # full line id doubles as the tag
        self.accesses += 1
        way0 = self._way0
        way1 = self._way1
        if way0[index] == tag:
            return True
        if way1[index] == tag:
            # Promote to MRU.
            way1[index] = way0[index]
            way0[index] = tag
            return True
        self.misses += 1
        way1[index] = way0[index]
        way0[index] = tag
        return False

    @property
    def hit_rate(self) -> float:
        """Fraction of probes that hit (1.0 when never probed)."""
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.misses / self.accesses


class MemorySystem:
    """Latency model combining write buffer, cache and backing memory.

    The write buffer is a small fully-associative structure in front of
    the cache (the paper notes it "acts as a fully associative cache
    previous to this cache, so hit ratios are higher than might be
    expected"): loads that hit a line recently written see the hit
    latency without probing the cache.
    """

    __slots__ = ("config", "cache", "_wb_lines", "_wb_order", "wb_capacity",
                 "load_count", "store_count", "wb_hits")

    def __init__(self, config: MemoryConfig, write_buffer_lines: int = 16):
        self.config = config
        self.cache: Optional[Cache] = (
            None if config.is_perfect else Cache(config.cache_bytes)
        )
        self.wb_capacity = write_buffer_lines
        self._wb_lines = set()
        self._wb_order = []
        self.load_count = 0
        self.store_count = 0
        self.wb_hits = 0

    # ------------------------------------------------------------------
    def _wb_insert(self, line: int) -> None:
        if line in self._wb_lines:
            return
        self._wb_lines.add(line)
        self._wb_order.append(line)
        if len(self._wb_order) > self.wb_capacity:
            evicted = self._wb_order.pop(0)
            self._wb_lines.discard(evicted)

    def load_latency(self, address: int) -> int:
        """Latency in cycles for a load of ``address``."""
        self.load_count += 1
        config = self.config
        if self.cache is None:
            return config.hit_cycles
        line = address // CACHE_BLOCK_BYTES
        if line in self._wb_lines:
            self.wb_hits += 1
            return config.hit_cycles
        if self.cache.access(address):
            return config.hit_cycles
        return config.miss_cycles

    def store_access(self, address: int) -> None:
        """Record a store: fills the write buffer and the cache.

        Stores never stall the machine in this model (they drain from the
        write buffer); only their hit statistics and their effect on later
        loads are tracked.
        """
        self.store_count += 1
        if self.cache is not None:
            line = address // CACHE_BLOCK_BYTES
            self._wb_insert(line)
            self.cache.access(address)
