"""The statically scheduled (in-order, exposed-pipeline) timing engine.

Replays a trace over the list-scheduled program: one instruction word may
issue per cycle; a word stalls until every operand of every node in it is
ready (the hardware interlock), so cache misses beyond the compiler's
assumed hit latency surface as issue stalls at the consumer.  Speculative
execution fetches one predicted word past an unresolved branch; on a
misprediction that word is squashed and fetch redirects, and a signalling
assert discards its whole (enlarged) block.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..chaos.inject import current as chaos_current
from ..interp.trace import TAKEN, Trace
from ..stats.results import SimResult
from ..telemetry.collector import (
    Collector,
    NULL_COLLECTOR,
    TID_CONTROL,
    TID_MEM,
    finalize_attribution,
)
from .cache import MemorySystem
from .config import MachineConfig
from .errors import EngineDivergence, SimulationHang, resolve_max_cycles
from .predictor import make_predictor
from .templates import (
    BlockTemplate,
    T_ASSERT,
    T_BRANCH,
    T_LOAD,
    T_STORE,
    T_SYSCALL,
)
from ..sched.list_scheduler import ScheduledBlock

#: Issue cycles lost redirecting fetch after a squash.
REDIRECT_PENALTY = 2


class StaticEngine:
    """One trace replay on one static machine configuration."""

    def __init__(self, templates: Dict[str, BlockTemplate],
                 schedules: Dict[str, ScheduledBlock], trace: Trace,
                 config: MachineConfig, benchmark: str = "",
                 collector: Collector = NULL_COLLECTOR,
                 max_cycles: Optional[int] = None, self_check: bool = True):
        self.templates = templates
        self.schedules = schedules
        self.trace = trace
        self.config = config
        self.benchmark = benchmark
        self.collector = collector
        #: watchdog: raise SimulationHang past this simulated cycle.
        self.max_cycles = resolve_max_cycles(max_cycles)
        #: verify engine accounting against the functional trace.
        self.self_check = self_check

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        templates = self.templates
        schedules = self.schedules
        trace = self.trace
        tmpl_of: List[BlockTemplate] = [templates[label] for label in trace.labels]
        sched_of: List[ScheduledBlock] = [schedules[label] for label in trace.labels]
        block_ids = trace.block_ids
        outcomes = trace.outcomes
        fault_indices = trace.fault_indices
        addresses = trace.addresses

        memsys = MemorySystem(self.config.memory_config)
        predictor = make_predictor(self.config.predictor, self.config.static_hints)
        collector = self.collector
        tracing = collector.tracing
        attributing = collector.enabled
        hit_latency = self.config.memory_config.hit_cycles

        reg_ready = [0] * 64
        # Cycle attribution (ATTRIBUTION_BUCKETS): `acct` is a monotonic
        # accounting cursor -- every cycle in [1, acct] has been charged
        # to exactly one bucket, so the buckets always sum to the cycles
        # accounted.  `reg_mem[r]` remembers whether r's producer was a
        # load, which classifies an operand stall as memory-wait.
        acct = 0
        b_issued = b_stall = b_mem = b_recover = 0
        reg_mem = [False] * 64
        cycle = 0  # issue cycle of the most recent word
        retired_nodes = 0
        discarded_nodes = 0
        faults = 0
        max_cycle = 0
        addr_cursor = 0
        issue_words = 0
        issued_slots = 0

        watchdog_limit = self.max_cycles
        chaos_engine = chaos_current()
        if chaos_engine is not None:
            chaos_rule = chaos_engine.act("engine.budget", ("budget",))
            if chaos_rule is not None:
                watchdog_limit = chaos_rule.budget

        for position in range(len(block_ids)):
            # Watchdog: bounds any runaway issue loop at block granularity.
            if cycle > watchdog_limit:
                raise SimulationHang(
                    self.benchmark, str(self.config), cycle, watchdog_limit
                )
            tmpl = tmpl_of[block_ids[position]]
            sched = sched_of[block_ids[position]]
            nodes = tmpl.nodes
            fault_index = fault_indices[position]
            addr_base = addr_cursor
            addr_cursor += tmpl.n_mem

            branch_exec = -1
            fault_exec = -1
            issued_datapath = 0
            block_complete = 0
            block_start = cycle + 1

            for word in sched.words:
                issue = cycle + 1
                for index in word:
                    for src in nodes[index][2]:
                        r = reg_ready[src]
                        if r > issue:
                            issue = r
                issue_words += 1
                if attributing and issue > acct:
                    gap = issue - 1 - acct
                    if gap > 0:
                        # The word waited; charge the wait to memory if
                        # any binding operand (ready exactly at `issue`)
                        # was produced by a load.
                        stall_mem = False
                        for index in word:
                            for src in nodes[index][2]:
                                if reg_ready[src] == issue and reg_mem[src]:
                                    stall_mem = True
                                    break
                            if stall_mem:
                                break
                        if stall_mem:
                            b_mem += gap
                        else:
                            b_stall += gap
                    b_issued += 1
                    acct = issue
                for index in word:
                    cls, dest, _ = nodes[index]
                    if cls == T_LOAD:
                        addr = addresses[addr_base + sched.mem_rank[index]]
                        if tracing:
                            wb_before = memsys.wb_hits
                            lat = memsys.load_latency(addr)
                            collector.event(
                                "mem.load", issue, lat, TID_MEM,
                                {"addr": addr, "miss": lat > hit_latency,
                                 "wb_hit": memsys.wb_hits != wb_before},
                            )
                        else:
                            lat = memsys.load_latency(addr)
                        done = issue + lat
                    elif cls == T_STORE:
                        addr = addresses[addr_base + sched.mem_rank[index]]
                        memsys.store_access(addr)
                        done = issue + 1
                        if tracing:
                            collector.event(
                                "mem.store", issue, 1, TID_MEM, {"addr": addr}
                            )
                    else:
                        done = issue + 1
                        if cls == T_BRANCH:
                            branch_exec = issue
                        elif cls == T_ASSERT and index == fault_index:
                            fault_exec = issue
                    if dest >= 0:
                        reg_ready[dest] = done
                        if attributing:
                            reg_mem[dest] = cls == T_LOAD
                    if cls != T_SYSCALL:
                        issued_datapath += 1
                        if tracing:
                            collector.event(
                                "issue.slot", issue, 0,
                                TID_MEM if cls == T_LOAD or cls == T_STORE
                                else 0,
                            )
                    if done > block_complete:
                        block_complete = done
                cycle = issue
                if fault_exec >= 0:
                    break  # issue stops once the fault resolves

            issued_slots += issued_datapath

            if fault_exec >= 0:
                # Enlarged-block fault: everything issued is discarded.
                faults += 1
                discarded_nodes += issued_datapath
                cycle = fault_exec + REDIRECT_PENALTY
                if attributing and cycle > acct:
                    b_recover += cycle - acct
                    acct = cycle
                if cycle > max_cycle:
                    max_cycle = cycle
                if tracing:
                    collector.event(
                        "block.fault", fault_exec, 0, TID_CONTROL,
                        {"block": tmpl.label, "discarded": issued_datapath},
                    )
                continue

            retired_nodes += tmpl.n_datapath
            if block_complete > max_cycle:
                max_cycle = block_complete
            if tracing:
                collector.event(
                    "block.retire", block_start,
                    max(block_complete - block_start, 1), TID_CONTROL,
                    {"block": tmpl.label, "nodes": tmpl.n_datapath},
                )

            if tmpl.has_branch:
                actual_taken = outcomes[position] == TAKEN
                predicted = predictor.predict(tmpl.label, tmpl.static_hint)
                predictor.update(tmpl.label, actual_taken, predicted)
                if tracing:
                    collector.event(
                        "branch.resolve", branch_exec, 0, TID_CONTROL,
                        {"block": tmpl.label, "taken": actual_taken,
                         "mispredict": predicted != actual_taken},
                    )
                if predicted != actual_taken:
                    wrong_target = (
                        tmpl.branch_taken if predicted else tmpl.branch_alt
                    )
                    discarded_nodes += self._squashed_word_nodes(wrong_target)
                    cycle = branch_exec + REDIRECT_PENALTY
                    if attributing and cycle > acct:
                        b_recover += cycle - acct
                        acct = cycle

        # Cross-engine invariant (see DynamicEngine.run): retired work
        # must match the functional trace exactly.
        if self.self_check and retired_nodes != trace.retired_nodes:
            raise EngineDivergence(
                self.benchmark, str(self.config), retired_nodes,
                trace.retired_nodes,
            )

        cache = memsys.cache
        total_cycles = max(max_cycle, 1)
        extra: Dict[str, float] = {}
        if attributing:
            buckets = {
                "issued_full": b_issued,
                "issue_stall": b_stall,
                "memory_wait": b_mem,
                "mispredict_recovery": b_recover,
                # Static machines never value-speculate; the zero keeps
                # the attribution taxonomy closed across engines.
                "value_recovery": 0,
                "drain_idle": 0,
            }
            finalize_attribution(buckets, total_cycles, acct)
            for name, value in buckets.items():
                collector.count("cycles.static." + name, value)
                extra["attr." + name] = float(value)
            collector.count("branch.lookups", predictor.lookups)
            collector.count("branch.mispredicts", predictor.mispredicts)
        return SimResult(
            benchmark=self.benchmark,
            config=self.config,
            cycles=total_cycles,
            retired_nodes=retired_nodes,
            discarded_nodes=discarded_nodes,
            dynamic_blocks=len(block_ids),
            mispredicts=predictor.mispredicts,
            branch_lookups=predictor.lookups,
            faults=faults,
            loads=memsys.load_count,
            stores=memsys.store_count,
            cache_accesses=cache.accesses if cache else 0,
            cache_misses=cache.misses if cache else 0,
            write_buffer_hits=memsys.wb_hits,
            issue_words=issue_words,
            issued_slots=issued_slots,
            extra=extra,
        )

    # ------------------------------------------------------------------
    def _squashed_word_nodes(self, label: Optional[str]) -> int:
        """Nodes in the one wrongly fetched word past a mispredict."""
        if label is None:
            return 0
        sched = self.schedules.get(label)
        if sched is None or not sched.words:
            return 0
        return len(sched.words[0])
