"""Simulation facade: prepare a workload once, simulate many configs.

The expensive work -- compiling, profiling on training input, building the
enlarged program, and the functional (trace-collecting) runs on the
evaluation input -- happens once per workload in :func:`prepare_workload`;
each call to :func:`simulate` then replays the appropriate trace on one
machine configuration.

This mirrors the paper's flow: ``tld`` (translate + enlarge, profile
driven) runs per program, then ``sim`` runs per configuration, with the
profiling and evaluation runs using *different* input data "to prevent the
branch data from being overly biased".
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..enlarge.builder import apply_plan
from ..enlarge.plan import EnlargeConfig, plan_enlargement
from ..interp.interpreter import run_program
from ..interp.trace import Trace
from ..profiles.profile import annotate_static_hints, build_profile
from ..program.program import Program
from ..sched.list_scheduler import ScheduledBlock, schedule_program
from ..stats.results import SimResult
from ..telemetry.collector import Collector, NULL_COLLECTOR
from .config import BranchMode, Discipline, MachineConfig
from .dynamic import DynamicEngine
from .static_engine import StaticEngine
from .templates import BlockTemplate, build_templates


class WorkloadMismatch(Exception):
    """Enlarged program output differed from the original (a build bug)."""


class PreparedWorkload:
    """A benchmark compiled, enlarged and functionally executed."""

    def __init__(self, name: str, single: Program, enlarged: Program,
                 single_trace: Trace, enlarged_trace: Trace):
        self.name = name
        self.single = single
        self.enlarged = enlarged
        self.single_trace = single_trace
        self.enlarged_trace = enlarged_trace
        self._templates_single: Optional[Dict[str, BlockTemplate]] = None
        self._templates_enlarged: Optional[Dict[str, BlockTemplate]] = None
        self._schedule_cache: Dict[tuple, Dict[str, ScheduledBlock]] = {}

    # ------------------------------------------------------------------
    @property
    def templates_single(self) -> Dict[str, BlockTemplate]:
        """Issue templates for the single-block program (built lazily).

        Laziness matters to the parallel sweep: the parent process
        materializes every benchmark's artifacts without ever
        simulating, so it must not pay template construction for
        programs only its pool workers will run.
        """
        if self._templates_single is None:
            self._templates_single = build_templates(self.single)
        return self._templates_single

    @property
    def templates_enlarged(self) -> Dict[str, BlockTemplate]:
        if self._templates_enlarged is None:
            self._templates_enlarged = build_templates(self.enlarged)
        return self._templates_enlarged

    def program_for(self, mode: BranchMode) -> Program:
        """Which translated program a branch-handling mode runs."""
        return self.single if mode is BranchMode.SINGLE else self.enlarged

    def trace_for(self, mode: BranchMode) -> Trace:
        return (
            self.single_trace if mode is BranchMode.SINGLE else self.enlarged_trace
        )

    def templates_for(self, mode: BranchMode) -> Dict[str, BlockTemplate]:
        return (
            self.templates_single
            if mode is BranchMode.SINGLE
            else self.templates_enlarged
        )

    def schedules_for(self, config: MachineConfig,
                      collector: Collector = NULL_COLLECTOR,
                      ) -> Dict[str, ScheduledBlock]:
        """Schedule the chosen program for a static configuration.

        The greedy list scheduler by default; the exact solver (with its
        on-disk schedule memo) when the configuration carries
        ``optimal_schedule=True``.
        """
        key = (config.branch_mode is BranchMode.SINGLE, config.issue_model,
               config.memory_config.hit_cycles, config.optimal_schedule)
        cached = self._schedule_cache.get(key)
        if cached is None:
            if config.optimal_schedule:
                # Imported lazily: optsched depends on this module's
                # sibling config types.
                from ..optsched import optimal_schedule_program

                cached = optimal_schedule_program(
                    self.program_for(config.branch_mode),
                    config.issue,
                    config.memory_config,
                    collector=collector,
                )
            else:
                cached = schedule_program(
                    self.program_for(config.branch_mode),
                    config.issue,
                    config.memory_config,
                )
            self._schedule_cache[key] = cached
        return cached


def prepare_workload(
    name: str,
    program: Program,
    train_inputs: Optional[Mapping[int, bytes]],
    eval_inputs: Optional[Mapping[int, bytes]],
    enlarge_config: Optional[EnlargeConfig] = None,
    max_nodes: int = 200_000_000,
) -> PreparedWorkload:
    """Profile, enlarge and trace one benchmark.

    Raises:
        WorkloadMismatch: if the enlarged program's output differs from
            the original's on the evaluation input (would indicate an
            enlargement bug; also guarded by tests).
    """
    # 1. Profile on the training input; derive static hints.
    train_run = run_program(program, inputs=train_inputs, max_nodes=max_nodes)
    profile = build_profile(train_run.trace)
    single = annotate_static_hints(program, profile)

    # 2. Build the enlarged program and its own static hints.
    plan = plan_enlargement(single, profile, enlarge_config or EnlargeConfig())
    enlarged = apply_plan(single, plan)
    enlarged_train = run_program(enlarged, inputs=train_inputs, max_nodes=max_nodes)
    enlarged = annotate_static_hints(enlarged, build_profile(enlarged_train.trace))

    # 3. Functional evaluation runs (these traces drive all timing runs).
    single_run = run_program(single, inputs=eval_inputs, max_nodes=max_nodes)
    enlarged_run = run_program(enlarged, inputs=eval_inputs, max_nodes=max_nodes)
    if (
        single_run.output != enlarged_run.output
        or single_run.exit_code != enlarged_run.exit_code
    ):
        raise WorkloadMismatch(
            f"{name}: enlarged program diverged from the original"
        )
    return PreparedWorkload(
        name, single, enlarged, single_run.trace, enlarged_run.trace
    )


def simulate(prepared: PreparedWorkload, config: MachineConfig,
             collector: Collector = NULL_COLLECTOR,
             max_cycles: Optional[int] = None,
             self_check: bool = True) -> SimResult:
    """Run one timing simulation of a prepared workload.

    ``collector`` receives per-cycle pipeline events when it is a
    tracing collector (see :mod:`repro.telemetry`); the default null
    collector records nothing and costs nothing.

    ``max_cycles`` bounds the engine's simulated clock (watchdog; see
    :mod:`repro.machine.errors`), raising ``SimulationHang`` instead of
    spinning forever; ``self_check`` verifies the engine's retired-node
    accounting against the functional trace, raising
    ``EngineDivergence`` on mismatch.
    """
    templates = prepared.templates_for(config.branch_mode)
    trace = prepared.trace_for(config.branch_mode)
    if config.discipline is Discipline.STATIC:
        result = StaticEngine(
            templates, prepared.schedules_for(config, collector), trace, config,
            benchmark=prepared.name, collector=collector,
            max_cycles=max_cycles, self_check=self_check,
        ).run()
    else:
        result = DynamicEngine(
            templates, trace, config, benchmark=prepared.name,
            collector=collector, max_cycles=max_cycles,
            self_check=self_check,
        ).run()
    # Normalise the performance metric to architectural work (the single
    # program's retired node count); see SimResult.retired_per_cycle.
    result.work_nodes = prepared.single_trace.retired_nodes
    return result
