"""Machine configuration space: the paper's four parameter axes.

The simulation study varies scheduling discipline, issue model, memory
configuration and branch handling; with the 100% prediction runs limited
to dynamic windows of 4 and 256 this yields the paper's 560 data points
per benchmark (10 discipline/branch lines x 8 issue models x 7 memory
configurations).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple


class Discipline(enum.Enum):
    """Scheduling discipline."""

    STATIC = "static"
    DYNAMIC = "dynamic"


class BranchMode(enum.Enum):
    """Branch-handling axis.

    ``PERFECT`` uses the enlarged program (the paper fed the enlargement
    file to both the enlarged and the perfect-prediction studies) with a
    trace-driven oracle for every branch-trap prediction.
    """

    SINGLE = "single"
    ENLARGED = "enlarged"
    PERFECT = "perfect"


@dataclass(frozen=True)
class IssueModel:
    """How many nodes of each class issue per cycle.

    ``sequential`` marks the paper's issue model 1, which issues a single
    node of any class per cycle.
    """

    index: int
    mem_slots: int
    alu_slots: int
    sequential: bool = False

    @property
    def total_slots(self) -> int:
        return 1 if self.sequential else self.mem_slots + self.alu_slots

    def __str__(self) -> str:
        if self.sequential:
            return "seq"
        return f"{self.mem_slots}M+{self.alu_slots}A"


#: The paper's eight issue models, keyed by their index, plus two wider
#: extension models (9, 10) for the "wider multinodewords put more
#: pressure on both the hardware and the compiler" future-work study;
#: the extensions are excluded from the paper's 560-point space.
ISSUE_MODELS: Dict[int, IssueModel] = {
    1: IssueModel(1, 1, 1, sequential=True),
    2: IssueModel(2, 1, 1),
    3: IssueModel(3, 1, 2),
    4: IssueModel(4, 1, 3),
    5: IssueModel(5, 2, 4),
    6: IssueModel(6, 2, 6),
    7: IssueModel(7, 4, 8),
    8: IssueModel(8, 4, 12),
    9: IssueModel(9, 8, 24),
    10: IssueModel(10, 16, 48),
}

#: Issue-model indices used by the paper's study.
PAPER_ISSUE_MODELS = tuple(range(1, 9))


@dataclass(frozen=True)
class MemoryConfig:
    """Memory-hierarchy parameters.

    ``cache_bytes`` of None means a perfect memory with constant
    ``hit_cycles`` latency.  All caches are 2-way set associative with
    16-byte blocks, and every miss costs ``miss_cycles``; the memory
    system is fully pipelined.
    """

    letter: str
    hit_cycles: int
    miss_cycles: int
    cache_bytes: Optional[int]

    @property
    def is_perfect(self) -> bool:
        return self.cache_bytes is None

    def __str__(self) -> str:
        if self.is_perfect:
            return f"{self.letter}({self.hit_cycles}cyc)"
        return (
            f"{self.letter}({self.hit_cycles}/{self.miss_cycles}cyc,"
            f"{self.cache_bytes // 1024}K)"
        )


#: The paper's seven memory configurations (A-G), plus two cache-geometry
#: extension points (H, I) that fill out the 1-cycle-hit capacity ladder
#: 1K (D) / 4K (H) / 16K (E) / 64K (I) for the per-workload cache sweeps.
#: The extensions are excluded from the paper's 560-point space.
MEMORY_CONFIGS: Dict[str, MemoryConfig] = {
    "A": MemoryConfig("A", 1, 1, None),
    "B": MemoryConfig("B", 2, 2, None),
    "C": MemoryConfig("C", 3, 3, None),
    "D": MemoryConfig("D", 1, 10, 1024),
    "E": MemoryConfig("E", 1, 10, 16 * 1024),
    "F": MemoryConfig("F", 2, 10, 1024),
    "G": MemoryConfig("G", 2, 10, 16 * 1024),
    "H": MemoryConfig("H", 1, 10, 4 * 1024),
    "I": MemoryConfig("I", 1, 10, 64 * 1024),
}

#: Memory letters used by the paper's study.
PAPER_MEMORIES = ("A", "B", "C", "D", "E", "F", "G")

#: Horizontal-axis order used by the paper's Figure 4 (1-cycle memories
#: with decreasing locality, then 2-cycle, then 3-cycle).
FIGURE4_MEMORY_ORDER = ("A", "E", "D", "B", "G", "F", "C")

#: Dynamic window sizes studied (in active basic blocks).
WINDOW_SIZES = (1, 4, 256)

CACHE_BLOCK_BYTES = 16
CACHE_WAYS = 2


@dataclass(frozen=True)
class MachineConfig:
    """One point in the simulated configuration space."""

    discipline: Discipline
    issue_model: int
    memory: str
    branch_mode: BranchMode
    window_blocks: int = 1
    static_hints: bool = True
    #: ablation axis beyond the paper: see repro.machine.predictor
    predictor: str = "twobit"
    #: data-speculation axis beyond the paper: see repro.predict
    value_predictor: str = "none"
    #: static-scheduling axis beyond the paper: replace the greedy list
    #: scheduler with the exact solver (see repro.optsched)
    optimal_schedule: bool = False

    def __post_init__(self) -> None:
        from ..predict import VALUE_PREDICTOR_KINDS
        from .predictor import PREDICTOR_KINDS

        if self.predictor not in PREDICTOR_KINDS:
            raise ValueError(f"unknown predictor kind {self.predictor!r}")
        if self.value_predictor not in VALUE_PREDICTOR_KINDS:
            raise ValueError(
                f"unknown value predictor kind {self.value_predictor!r}"
            )
        if self.issue_model not in ISSUE_MODELS:
            raise ValueError(f"unknown issue model {self.issue_model}")
        if self.memory not in MEMORY_CONFIGS:
            raise ValueError(f"unknown memory configuration {self.memory!r}")
        if self.discipline is Discipline.DYNAMIC:
            if self.window_blocks < 1:
                raise ValueError("window must be at least one block")
        elif self.value_predictor != "none":
            # Like perfect branch prediction, speculative operand
            # delivery is a dynamic-machine study: the static engine has
            # no out-of-order wakeup for a predicted value to accelerate.
            raise ValueError(
                "value prediction is studied on dynamic machines"
            )
        if (
            self.branch_mode is BranchMode.PERFECT
            and self.discipline is not Discipline.DYNAMIC
        ):
            raise ValueError("perfect prediction is studied on dynamic machines")
        if self.optimal_schedule and self.discipline is not Discipline.STATIC:
            # Dynamic machines build their own issue order in hardware;
            # there is no compile-time word packing to optimise.
            raise ValueError(
                "optimal scheduling is studied on static machines"
            )

    @property
    def issue(self) -> IssueModel:
        return ISSUE_MODELS[self.issue_model]

    @property
    def memory_config(self) -> MemoryConfig:
        return MEMORY_CONFIGS[self.memory]

    def discipline_key(self) -> str:
        """Short name of the scheduling-discipline line this point is on.

        These are the line labels of the paper's Figures 3, 4 and 6, e.g.
        ``static/single`` or ``dyn4/enlarged`` or ``dyn256/perfect``.
        """
        if self.discipline is Discipline.STATIC:
            base = "static"
        else:
            base = f"dyn{self.window_blocks}"
        return f"{base}/{self.branch_mode.value}"

    def __str__(self) -> str:
        base = f"{self.discipline_key()}/{self.issue}/{self.memory}"
        # Non-default speculation axes are spelled out so spec-grid
        # findings and summaries stay distinguishable; paper-grid points
        # keep their historical names.
        if self.predictor != "twobit":
            base += f"/p:{self.predictor}"
        if self.value_predictor != "none":
            base += f"/v:{self.value_predictor}"
        if self.optimal_schedule:
            base += "/opt"
        return base


def scheduling_disciplines() -> Tuple[Tuple[Discipline, int, BranchMode], ...]:
    """The paper's ten discipline/branch-handling lines."""
    lines = []
    for mode in (BranchMode.SINGLE, BranchMode.ENLARGED):
        lines.append((Discipline.STATIC, 1, mode))
        for window in WINDOW_SIZES:
            lines.append((Discipline.DYNAMIC, window, mode))
    for window in (4, 256):
        lines.append((Discipline.DYNAMIC, window, BranchMode.PERFECT))
    return tuple(lines)


def full_configuration_space() -> Iterator[MachineConfig]:
    """All 560 configurations of the paper's study."""
    for (discipline, window, mode), issue, memory in itertools.product(
        scheduling_disciplines(), PAPER_ISSUE_MODELS, PAPER_MEMORIES
    ):
        yield MachineConfig(
            discipline=discipline,
            issue_model=issue,
            memory=memory,
            branch_mode=mode,
            window_blocks=window,
        )


#: Issue models kept by the validation smoke grid: the narrowest
#: non-sequential model and the paper's widest.
SMOKE_ISSUE_MODELS = (2, 8)

#: Memory configurations kept by the smoke grid: the fastest and
#: slowest perfect memories (the ends of the A >= B >= C chain).
SMOKE_MEMORIES = ("A", "C")


def smoke_configuration_space() -> Iterator[MachineConfig]:
    """A 40-point slice of the space that still exercises every ordering.

    All ten discipline/branch-handling lines are kept (so the window,
    branch-handling and discipline comparisons all have their points)
    crossed with two issue models and two perfect memories -- small
    enough for CI to simulate in seconds, rich enough that every
    dominance rule in :mod:`repro.validate.dominance` has pairs to
    compare.
    """
    for (discipline, window, mode), issue, memory in itertools.product(
        scheduling_disciplines(), SMOKE_ISSUE_MODELS, SMOKE_MEMORIES
    ):
        yield MachineConfig(
            discipline=discipline,
            issue_model=issue,
            memory=memory,
            branch_mode=mode,
            window_blocks=window,
        )


#: Default cache-capacity ladder for the per-workload geometry sweeps:
#: every 1-cycle-hit cached memory, smallest first.
CACHE_SWEEP_MEMORIES = ("D", "H", "E", "I")

#: Issue models kept by the cache-geometry grid: the narrowest
#: non-sequential model and a mid-width one, so cache effects are read
#: at two different compute pressures.
CACHE_SWEEP_ISSUE_MODELS = (2, 6)

#: Discipline/branch lines kept by the cache-geometry grid.
CACHE_SWEEP_LINES = (
    (Discipline.STATIC, 1, BranchMode.ENLARGED),
    (Discipline.DYNAMIC, 4, BranchMode.ENLARGED),
    (Discipline.DYNAMIC, 256, BranchMode.ENLARGED),
)


def cache_configuration_space(
    benchmark: Optional[str] = None,
) -> Iterator[MachineConfig]:
    """The cache-geometry grid: capacity ladder x width x discipline.

    With ``benchmark`` given, a workload registered with its own
    ``cache_memories`` restricts the capacity ladder to those letters;
    otherwise (and for ``None``) the full :data:`CACHE_SWEEP_MEMORIES`
    ladder is used.  At most 24 points per benchmark -- sized for CI.
    """
    letters: Tuple[str, ...] = CACHE_SWEEP_MEMORIES
    if benchmark is not None:
        # Imported lazily: the workload registry imports this module.
        from ..workloads import WORKLOADS

        workload = WORKLOADS.get(benchmark)
        if workload is not None and workload.cache_memories:
            letters = workload.cache_memories
    for (discipline, window, mode), issue, memory in itertools.product(
        CACHE_SWEEP_LINES, CACHE_SWEEP_ISSUE_MODELS, letters
    ):
        yield MachineConfig(
            discipline=discipline,
            issue_model=issue,
            memory=memory,
            branch_mode=mode,
            window_blocks=window,
        )


#: Discipline/branch lines kept by the speculation grid: the small and
#: large enlarged windows (where data speculation competes with branch
#: recovery) plus the large perfect-branch window (where the "value
#: speculation never hurts under perfect branches" order is read).
SPEC_SWEEP_LINES = (
    (Discipline.DYNAMIC, 4, BranchMode.ENLARGED),
    (Discipline.DYNAMIC, 256, BranchMode.ENLARGED),
    (Discipline.DYNAMIC, 256, BranchMode.PERFECT),
)

#: Issue models kept by the speculation grid (narrow and wide, matching
#: the smoke grid so cross-grid comparisons line up).
SPEC_ISSUE_MODELS = (2, 8)

#: Memory configurations kept by the speculation grid: the 1-cycle
#: perfect memory (value prediction can only hide operand waits) and
#: the 3-cycle one (the latency actually worth hiding).
SPEC_MEMORIES = ("A", "C")

#: The full value-predictor chain, weakest first (``dominance.value``).
SPEC_VALUE_PREDICTORS = ("none", "last", "stride", "context", "perfect")

#: Branch predictors promoted into the supported family between
#: "realistic" (the paper's 2-bit BTB) and "perfect": the spec grid
#: carries each at value_predictor=none on the large enlarged window.
SPEC_BRANCH_PREDICTORS = ("gshare", "perceptron")


def spec_configuration_space(
    benchmark: Optional[str] = None,
) -> Iterator[MachineConfig]:
    """The speculation grid: the value-predictor chain x the harness axes.

    68 points per benchmark: every :data:`SPEC_SWEEP_LINES` line crossed
    with two issue models, two memories and the five-kind value-predictor
    chain (60 points), plus the promoted branch-predictor family
    (gshare, perceptron) on the large enlarged window at
    ``value_predictor="none"`` (8 points).  ``benchmark`` is accepted for
    signature parity with the per-benchmark ``cache`` grid and ignored.
    """
    del benchmark  # shared grid: same points for every workload
    for (discipline, window, mode), issue, memory, kind in itertools.product(
        SPEC_SWEEP_LINES, SPEC_ISSUE_MODELS, SPEC_MEMORIES,
        SPEC_VALUE_PREDICTORS,
    ):
        yield MachineConfig(
            discipline=discipline,
            issue_model=issue,
            memory=memory,
            branch_mode=mode,
            window_blocks=window,
            value_predictor=kind,
        )
    for predictor, issue, memory in itertools.product(
        SPEC_BRANCH_PREDICTORS, SPEC_ISSUE_MODELS, SPEC_MEMORIES
    ):
        yield MachineConfig(
            discipline=Discipline.DYNAMIC,
            issue_model=issue,
            memory=memory,
            branch_mode=BranchMode.ENLARGED,
            window_blocks=256,
            predictor=predictor,
        )


#: Static lines kept by the scheduling grid (the only lines with
#: compile-time word packing to optimise).
SCHED_SWEEP_LINES = (
    (Discipline.STATIC, 1, BranchMode.SINGLE),
    (Discipline.STATIC, 1, BranchMode.ENLARGED),
)

#: Issue models kept by the scheduling grid: narrow (where slot
#: pressure dominates), the paper's mid-width, and the widest (where
#: the critical path dominates and greedy choices matter most).
SCHED_ISSUE_MODELS = (2, 5, 8)

#: Memory configurations kept by the scheduling grid: perfect memories
#: only, so IPC differences come purely from word packing -- a cached
#: memory would let schedule-induced access reordering perturb cache
#: state and blur the list-vs-optimal comparison.
SCHED_MEMORIES = ("A", "C")


def sched_configuration_space(
    benchmark: Optional[str] = None,
) -> Iterator[MachineConfig]:
    """The scheduling grid: list vs exact schedules on static machines.

    24 points per benchmark: both static lines crossed with three issue
    models and two perfect memories, each at ``optimal_schedule`` off
    and on -- every on/off pair feeds the ``dominance.sched`` rule.
    ``benchmark`` is accepted for signature parity with the
    per-benchmark ``cache`` grid and ignored.
    """
    del benchmark  # shared grid: same points for every workload
    for (discipline, window, mode), issue, memory, optimal in itertools.product(
        SCHED_SWEEP_LINES, SCHED_ISSUE_MODELS, SCHED_MEMORIES,
        (False, True),
    ):
        yield MachineConfig(
            discipline=discipline,
            issue_model=issue,
            memory=memory,
            branch_mode=mode,
            window_blocks=window,
            optimal_schedule=optimal,
        )
