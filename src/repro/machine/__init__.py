"""Machine models: configuration space, memory system, predictors, engines."""

from .cache import Cache, MemorySystem
from .config import (
    BranchMode,
    Discipline,
    FIGURE4_MEMORY_ORDER,
    ISSUE_MODELS,
    IssueModel,
    MEMORY_CONFIGS,
    MachineConfig,
    MemoryConfig,
    PAPER_MEMORIES,
    WINDOW_SIZES,
    cache_configuration_space,
    full_configuration_space,
    scheduling_disciplines,
)
from .dynamic import DynamicEngine
from .errors import (
    DEFAULT_MAX_CYCLES,
    EngineDivergence,
    SimulationError,
    SimulationHang,
    resolve_max_cycles,
)
from .predictor import BranchPredictor
from .simulator import (
    PreparedWorkload,
    WorkloadMismatch,
    prepare_workload,
    simulate,
)
from .static_engine import StaticEngine
from .templates import BlockTemplate, build_templates

__all__ = [
    "BlockTemplate",
    "BranchMode",
    "BranchPredictor",
    "Cache",
    "DEFAULT_MAX_CYCLES",
    "Discipline",
    "DynamicEngine",
    "EngineDivergence",
    "SimulationError",
    "SimulationHang",
    "resolve_max_cycles",
    "FIGURE4_MEMORY_ORDER",
    "ISSUE_MODELS",
    "IssueModel",
    "MEMORY_CONFIGS",
    "MachineConfig",
    "MemorySystem",
    "MemoryConfig",
    "PAPER_MEMORIES",
    "PreparedWorkload",
    "StaticEngine",
    "WINDOW_SIZES",
    "WorkloadMismatch",
    "build_templates",
    "cache_configuration_space",
    "full_configuration_space",
    "prepare_workload",
    "scheduling_disciplines",
    "simulate",
]
