"""The dynamically scheduled (restricted-dataflow) timing engine.

Replays a functional trace against an HPS-style machine: nodes are issued
in program order in multi-node words, decoupled immediately, and
scheduled to function units as their operands (registers and memory
locations) become ready -- an unlimited-renaming dataflow model with
per-cycle function-unit limits equal to the issue-word shape, a window
bounded in *active basic blocks*, in-order block retirement, speculative
fetch past predicted branches, and full squash on mispredictions and
enlarged-block faults.

Modelling notes (documented deltas from real hardware, see DESIGN.md):

* cache probes happen in issue order rather than execution order;
* wrong-path memory operations see hit latency and do not pollute the
  cache;
* squashed nodes do not release the function-unit slots they reserved
  before the squash (slots for nodes that would execute after the squash
  are never reserved).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..chaos.inject import current as chaos_current
from ..interp.trace import TAKEN, Trace
from ..isa.ops import NodeKind
from ..stats.results import SimResult
from ..telemetry.collector import (
    Collector,
    NULL_COLLECTOR,
    TID_CONTROL,
    TID_MEM,
    finalize_attribution,
)
from ..predict import make_value_predictor
from .cache import MemorySystem
from .config import BranchMode, MachineConfig
from .errors import EngineDivergence, SimulationHang, resolve_max_cycles
from .predictor import BranchPredictor, make_predictor
from .templates import (
    BlockTemplate,
    T_ASSERT,
    T_BRANCH,
    T_LOAD,
    T_STORE,
    T_SYSCALL,
)

#: Cycles between a resolving squash and the start of correct-path fetch
#: (the first issue word opens one cycle later).
REDIRECT_PENALTY = 1

#: Fetch budget for one wrong-path excursion, in blocks.
_WRONG_PATH_BLOCK_LIMIT = 64

#: Prune the per-cycle slot tables when they grow past this many entries.
_SLOT_PRUNE_THRESHOLD = 1_000_000


class DynamicEngine:
    """One trace replay on one dynamic machine configuration."""

    def __init__(self, templates: Dict[str, BlockTemplate], trace: Trace,
                 config: MachineConfig, benchmark: str = "",
                 collector: Collector = NULL_COLLECTOR,
                 max_cycles: Optional[int] = None, self_check: bool = True):
        self.templates = templates
        self.trace = trace
        self.config = config
        self.benchmark = benchmark
        self.collector = collector
        issue = config.issue
        self.sequential = issue.sequential
        self.mem_limit = issue.mem_slots
        self.alu_limit = issue.alu_slots
        self.window = config.window_blocks
        self.perfect = config.branch_mode is BranchMode.PERFECT
        #: data speculation: deliver confident load-value predictions to
        #: dependents early; verify on real completion (DESIGN.md §16).
        self.value_spec = config.value_predictor != "none"
        #: watchdog: raise SimulationHang past this simulated cycle.
        self.max_cycles = resolve_max_cycles(max_cycles)
        #: verify engine accounting against the functional trace.
        self.self_check = self_check

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        templates = self.templates
        trace = self.trace
        tmpl_of: List[BlockTemplate] = [templates[label] for label in trace.labels]
        block_ids = trace.block_ids
        outcomes = trace.outcomes
        fault_indices = trace.fault_indices
        addresses = trace.addresses

        memsys = MemorySystem(self.config.memory_config)
        predictor = make_predictor(self.config.predictor, self.config.static_hints)
        perfect = self.perfect
        sequential = self.sequential
        mem_limit = self.mem_limit
        alu_limit = self.alu_limit
        window_size = self.window
        collector = self.collector
        tracing = collector.tracing
        attributing = collector.enabled
        hit_latency = self.config.memory_config.hit_cycles

        reg_ready = [0] * 64
        store_time: Dict[int, int] = {}
        load_time: Dict[int, int] = {}
        alu_used: Dict[int, int] = {}
        mem_used: Dict[int, int] = {}

        # Value speculation (DESIGN.md §16).  A confident prediction for
        # a load delivers its value one cycle after issue; verification
        # happens at the load's real completion.  A *wrong* delivered
        # value poisons the destination register: `spec_avail[reg]` is
        # when the wrong value became available, `spec_verify[reg]` when
        # the squash resolves it, and any dependent that would have
        # consumed the poisoned value before its verify burns a wasted
        # function-unit slot and replays -- propagating the poison one
        # level down the dependent subtree.
        value_spec = self.value_spec
        vp = None
        vp_perfect = False
        load_values: List[int] = []
        val_cursor = 0
        spec_avail: Dict[int, int] = {}
        spec_verify: Dict[int, int] = {}
        vr_replays = 0
        replay_nodes: set = set()
        if value_spec:
            vp = make_value_predictor(self.config.value_predictor)
            vp_perfect = vp.perfect
            load_values = trace.load_values
            if not load_values and any(
                node[0] == T_LOAD for t in tmpl_of for node in t.nodes
            ):
                raise ValueError(
                    "value prediction needs a trace with recorded load"
                    " values; re-prepare the workload's artifacts"
                )

        fetch_cycle = 0
        word_mem_left = 0
        word_alu_left = 0
        window_retires: deque = deque()

        # Cycle attribution (ATTRIBUTION_BUCKETS).  `acct` is a
        # monotonic accounting cursor: every cycle in [1, acct] has been
        # charged to exactly one bucket.  Fetch-gap cycles are classified
        # by two absolute-cycle markers -- `recover_until` (set at squash
        # redirects) and `window_until` (set when the window gate holds
        # fetch) -- applied recovery-first at the next word open.
        # `window_mem` mirrors `window_retires` and remembers what kind
        # of node a window entry's straggler was (0 = ALU, 1 = memory
        # op, 2 = value-squash replay), so a window-gate wait on a
        # straggling load reads as memory-wait and a wait on a replayed
        # dependent reads as value-recovery.
        acct = 0
        b_issued = b_stall = b_mem = b_recover = b_value = 0
        recover_until = 0
        window_until = 0
        window_wait_kind = 0
        window_mem: deque = deque()

        def _charge_issue(f: int) -> None:
            """Charge the issue cycle ``f`` and classify the gap to it."""
            nonlocal acct, b_issued, b_stall, b_mem, b_recover, b_value
            if f <= acct:
                return  # already charged (fetch re-covered old cycles)
            lo = acct
            hi = f - 1
            if recover_until > lo:
                take = (recover_until if recover_until < hi else hi) - lo
                if take > 0:
                    b_recover += take
                    lo += take
            if window_until > lo:
                take = (window_until if window_until < hi else hi) - lo
                if take > 0:
                    if window_wait_kind == 2:
                        b_value += take
                    elif window_wait_kind == 1:
                        b_mem += take
                    else:
                        b_stall += take
                    lo += take
            if hi > lo:
                b_stall += hi - lo
            b_issued += 1
            acct = f

        retired_nodes = 0
        discarded_nodes = 0
        faults = 0
        prev_retire = 0
        max_cycle = 0
        addr_cursor = 0
        issue_words = 0
        issued_slots = 0
        window_block_cycles = 0
        window_samples = 0
        exec_times: List[int] = []

        watchdog_limit = self.max_cycles
        chaos_engine = chaos_current()
        if chaos_engine is not None:
            chaos_rule = chaos_engine.act("engine.budget", ("budget",))
            if chaos_rule is not None:
                watchdog_limit = chaos_rule.budget

        for position in range(len(block_ids)):
            tmpl = tmpl_of[block_ids[position]]

            # Watchdog: one comparison per block bounds any runaway
            # scheduling loop without touching the per-node hot path.
            if fetch_cycle > watchdog_limit:
                raise SimulationHang(
                    self.benchmark, str(self.config), fetch_cycle,
                    watchdog_limit,
                )

            # Window gating: a new block may not begin issue until the
            # block `window_size` older has retired (or been squashed).
            if len(window_retires) >= window_size:
                freed = window_retires.popleft()
                freed_kind = window_mem.popleft() if attributing else 0
                if freed + 1 > fetch_cycle:
                    fetch_cycle = freed + 1
                    word_mem_left = 0
                    word_alu_left = 0
                    if attributing:
                        window_until = fetch_cycle
                        window_wait_kind = freed_kind

            occupancy = len(window_retires) + 1
            if occupancy > window_size:
                occupancy = window_size
            window_block_cycles += occupancy
            window_samples += 1
            block_start = fetch_cycle
            if tracing:
                collector.event(
                    "window.occupancy", fetch_cycle, 0, 0,
                    {"blocks": occupancy},
                )

            fault_index = fault_indices[position]
            fault_time = -1
            branch_exec = -1
            block_complete = 0
            del exec_times[:]
            if value_spec:
                replay_nodes.clear()
            # Each basic block is issued as its own unit of work: a new
            # issue word opens at every block boundary.  Small blocks
            # therefore waste issue slots -- the issue-bandwidth problem
            # basic block enlargement exists to solve.
            word_mem_left = 0
            word_alu_left = 0

            for index, (cls, dest, srcs) in enumerate(tmpl.nodes):
                # ---- issue slot -------------------------------------
                if cls != T_SYSCALL:
                    if sequential:
                        issue_cycle = fetch_cycle
                        fetch_cycle += 1
                        issue_words += 1
                        if attributing:
                            _charge_issue(issue_cycle)
                    else:
                        if cls == T_LOAD or cls == T_STORE:
                            if word_mem_left <= 0:
                                fetch_cycle += 1
                                word_mem_left = mem_limit
                                word_alu_left = alu_limit
                                issue_words += 1
                                if attributing:
                                    _charge_issue(fetch_cycle)
                            word_mem_left -= 1
                        else:
                            if word_alu_left <= 0:
                                fetch_cycle += 1
                                word_mem_left = mem_limit
                                word_alu_left = alu_limit
                                issue_words += 1
                                if attributing:
                                    _charge_issue(fetch_cycle)
                            word_alu_left -= 1
                        issue_cycle = fetch_cycle
                    issued_slots += 1
                    if tracing:
                        collector.event(
                            "issue.slot", issue_cycle, 0,
                            TID_MEM if cls == T_LOAD or cls == T_STORE
                            else 0,
                        )
                else:
                    issue_cycle = fetch_cycle

                # ---- operand readiness ------------------------------
                ready = issue_cycle + 1
                for src in srcs:
                    r = reg_ready[src]
                    if r > ready:
                        ready = r

                # ---- schedule to a function unit --------------------
                if cls == T_LOAD:
                    addr = addresses[addr_cursor]
                    addr_cursor += 1
                    word = addr >> 2
                    st = store_time.get(word)
                    if st is not None and st > ready:
                        ready = st
                    t = ready
                    while mem_used.get(t, 0) >= mem_limit:
                        t += 1
                    mem_used[t] = mem_used.get(t, 0) + 1
                    lt = load_time.get(word)
                    if lt is None or t > lt:
                        load_time[word] = t
                    if tracing:
                        wb_before = memsys.wb_hits
                        lat = memsys.load_latency(addr)
                        collector.event(
                            "mem.load", t, lat, TID_MEM,
                            {"addr": addr, "miss": lat > hit_latency,
                             "wb_hit": memsys.wb_hits != wb_before},
                        )
                    else:
                        lat = memsys.load_latency(addr)
                    done = t + lat
                elif cls == T_STORE:
                    addr = addresses[addr_cursor]
                    addr_cursor += 1
                    word = addr >> 2
                    lt = load_time.get(word)
                    if lt is not None and lt > ready:
                        ready = lt
                    st = store_time.get(word)
                    if st is not None and st > ready:
                        ready = st
                    t = ready
                    while mem_used.get(t, 0) >= mem_limit:
                        t += 1
                    mem_used[t] = mem_used.get(t, 0) + 1
                    memsys.store_access(addr)
                    if tracing:
                        collector.event(
                            "mem.store", t, 1, TID_MEM, {"addr": addr}
                        )
                    done = t + 1
                    store_time[word] = done
                elif cls == T_SYSCALL:
                    t = ready
                    done = t + 1
                else:  # ALU, CONTROL, BRANCH, ASSERT
                    t = ready
                    while alu_used.get(t, 0) >= alu_limit:
                        t += 1
                    alu_used[t] = alu_used.get(t, 0) + 1
                    done = t + 1
                    if cls == T_BRANCH:
                        branch_exec = t
                    elif cls == T_ASSERT and index == fault_index:
                        fault_time = t

                if dest >= 0:
                    reg_ready[dest] = done
                exec_times.append(t)
                if done > block_complete:
                    block_complete = done

                # ---- value speculation ------------------------------
                if value_spec:
                    poisoned = False
                    if spec_verify and cls != T_STORE and cls != T_SYSCALL:
                        # Did this node start on a wrong speculative
                        # operand before its verify?  Then it burned a
                        # slot on the wrong value and replays at `t`
                        # (the verified-operand time already charged
                        # above); the wasted early result propagates
                        # the poison one level down.
                        spec_ready = issue_cycle + 1
                        uses_spec = False
                        for src in srcs:
                            sa = spec_avail.get(src)
                            if sa is None:
                                r = reg_ready[src]
                            else:
                                r = sa
                                uses_spec = True
                            if r > spec_ready:
                                spec_ready = r
                        if uses_spec and spec_ready < ready:
                            if cls == T_LOAD:
                                w = spec_ready
                                while mem_used.get(w, 0) >= mem_limit:
                                    w += 1
                                if w < ready:
                                    mem_used[w] = mem_used.get(w, 0) + 1
                            else:
                                w = spec_ready
                                while alu_used.get(w, 0) >= alu_limit:
                                    w += 1
                                if w < ready:
                                    alu_used[w] = alu_used.get(w, 0) + 1
                            if w < ready:
                                vr_replays += 1
                                discarded_nodes += 1
                                replay_nodes.add(index)
                                poisoned = True
                                if dest >= 0:
                                    spec_avail[dest] = w + 1
                                    spec_verify[dest] = done
                                if tracing:
                                    collector.event(
                                        "value.replay", w, 1, TID_MEM
                                        if cls == T_LOAD else 0,
                                        {"block": tmpl.label,
                                         "node": index},
                                    )
                    if cls == T_LOAD:
                        actual = load_values[val_cursor]
                        val_cursor += 1
                        if vp_perfect:
                            vp.lookups += 1
                            predicted: Optional[int] = actual
                        else:
                            predicted = vp.predict(
                                "%s#%d" % (tmpl.label, index)
                            )
                        if predicted is not None:
                            # The predicted value is in hand one cycle
                            # after issue -- always strictly before the
                            # real completion `done` (t >= issue+1 and
                            # lat >= 1, so done >= issue+2).
                            spec_done = issue_cycle + 1
                            if predicted == actual:
                                reg_ready[dest] = spec_done
                                poisoned = False
                            else:
                                spec_avail[dest] = spec_done
                                spec_verify[dest] = done
                                poisoned = True
                            if tracing:
                                collector.event(
                                    "value.verify", done, 0, TID_MEM,
                                    {"block": tmpl.label, "node": index,
                                     "confirmed": predicted == actual},
                                )
                        if vp_perfect:
                            vp.update("", actual, actual)
                        else:
                            vp.update(
                                "%s#%d" % (tmpl.label, index),
                                actual, predicted,
                            )
                    # A clean (non-speculative) write supersedes any
                    # stale poison on the destination register.
                    if dest >= 0 and not poisoned and spec_avail:
                        if spec_avail.pop(dest, None) is not None:
                            del spec_verify[dest]

            # ---- end of block: faults, branches, retirement ---------
            if fault_time >= 0:
                # The whole block is discarded.  Nodes that reached a
                # function unit by the fault's resolution count as
                # executed-but-not-retired work.
                faults += 1
                block_discarded = 0
                for index, t in enumerate(exec_times):
                    if t <= fault_time and tmpl.nodes[index][0] != T_SYSCALL:
                        block_discarded += 1
                discarded_nodes += block_discarded
                if tracing:
                    collector.event(
                        "block.fault", fault_time, 0, TID_CONTROL,
                        {"block": tmpl.label, "discarded": block_discarded},
                    )
                if not perfect:
                    discarded_nodes += self._wrong_path_issue(
                        self._predicted_successor(tmpl, predictor),
                        fetch_cycle + 1,
                        fault_time + 1,
                        window_retires,
                        reg_ready,
                        predictor,
                        alu_used,
                        mem_used,
                    )
                fetch_cycle = fault_time + REDIRECT_PENALTY
                word_mem_left = 0
                word_alu_left = 0
                window_retires.append(fault_time)
                if attributing:
                    window_mem.append(0)  # the assert is an ALU op
                    if fetch_cycle > recover_until:
                        recover_until = fetch_cycle
                if fault_time > max_cycle:
                    max_cycle = fault_time
                continue

            if tmpl.has_branch:
                actual_taken = outcomes[position] == TAKEN
                if perfect:
                    predicted = actual_taken
                else:
                    predicted = predictor.predict(tmpl.label, tmpl.static_hint)
                    predictor.update(tmpl.label, actual_taken, predicted)
                if tracing:
                    collector.event(
                        "branch.resolve", branch_exec, 0, TID_CONTROL,
                        {"block": tmpl.label, "taken": actual_taken,
                         "mispredict": predicted != actual_taken},
                    )
                if predicted != actual_taken:
                    wrong_target = (
                        tmpl.branch_taken if predicted else tmpl.branch_alt
                    )
                    discarded_nodes += self._wrong_path_issue(
                        wrong_target,
                        fetch_cycle + 1,
                        branch_exec + 1,
                        window_retires,
                        reg_ready,
                        predictor,
                        alu_used,
                        mem_used,
                    )
                    fetch_cycle = branch_exec + REDIRECT_PENALTY
                    word_mem_left = 0
                    word_alu_left = 0
                    if attributing and fetch_cycle > recover_until:
                        recover_until = fetch_cycle

            retire = block_complete if block_complete > prev_retire else prev_retire
            prev_retire = retire
            # The window slot is reclaimed once every node of the block has
            # been *scheduled* (dispatched to a function unit) -- the node
            # table entries, not the retirement commit, are what bounds
            # fetch in an HPS-style machine.  Retirement stays in order for
            # the statistics above.
            last_scheduled = max(exec_times) if exec_times else fetch_cycle
            window_retires.append(last_scheduled)
            if attributing:
                if exec_times:
                    straggler = max(
                        range(len(exec_times)), key=exec_times.__getitem__
                    )
                    scls = tmpl.nodes[straggler][0]
                    if value_spec and straggler in replay_nodes:
                        window_mem.append(2)
                    elif scls == T_LOAD or scls == T_STORE:
                        window_mem.append(1)
                    else:
                        window_mem.append(0)
                else:
                    window_mem.append(0)
            retired_nodes += tmpl.n_datapath
            if retire > max_cycle:
                max_cycle = retire
            if tracing:
                collector.event(
                    "block.retire", block_start,
                    max(block_complete - block_start, 1), TID_CONTROL,
                    {"block": tmpl.label, "nodes": tmpl.n_datapath},
                )

            # Keep the per-cycle slot tables bounded.
            if len(alu_used) > _SLOT_PRUNE_THRESHOLD:
                horizon = fetch_cycle
                alu_used = {c: n for c, n in alu_used.items() if c >= horizon}
                mem_used = {c: n for c, n in mem_used.items() if c >= horizon}

        # Cross-engine invariant: every trace block either retires or
        # faults, so the retired datapath-node count must match the
        # functional run's.  A divergence means the replay is wrong.
        if self.self_check and retired_nodes != trace.retired_nodes:
            raise EngineDivergence(
                self.benchmark, str(self.config), retired_nodes,
                trace.retired_nodes,
            )

        cache = memsys.cache
        total_cycles = max(max_cycle, 1)
        extra: Dict[str, float] = {}
        if attributing:
            buckets = {
                "issued_full": b_issued,
                "issue_stall": b_stall,
                "memory_wait": b_mem,
                "mispredict_recovery": b_recover,
                "value_recovery": b_value,
                "drain_idle": 0,
            }
            finalize_attribution(buckets, total_cycles, acct)
            for name, value in buckets.items():
                collector.count("cycles.dynamic." + name, value)
                extra["attr." + name] = float(value)
            collector.count("branch.lookups", predictor.lookups)
            collector.count("branch.mispredicts", predictor.mispredicts)
            if value_spec:
                collector.count("value.predictions", vp.predictions)
                collector.count("value.confirmed", vp.confirmed)
                collector.count("value.squashed", vp.squashed)
                collector.count("value.replays", vr_replays)
        return SimResult(
            benchmark=self.benchmark,
            config=self.config,
            cycles=total_cycles,
            retired_nodes=retired_nodes,
            discarded_nodes=discarded_nodes,
            dynamic_blocks=len(block_ids),
            mispredicts=predictor.mispredicts,
            branch_lookups=predictor.lookups,
            faults=faults,
            loads=memsys.load_count,
            stores=memsys.store_count,
            cache_accesses=cache.accesses if cache else 0,
            cache_misses=cache.misses if cache else 0,
            write_buffer_hits=memsys.wb_hits,
            issue_words=issue_words,
            issued_slots=issued_slots,
            window_block_cycles=window_block_cycles,
            window_samples=window_samples,
            value_predictions=vp.predictions if vp is not None else 0,
            value_confirmed=vp.confirmed if vp is not None else 0,
            value_squashed=vp.squashed if vp is not None else 0,
            value_replays=vr_replays,
            extra=extra,
        )

    # ------------------------------------------------------------------
    def _predicted_successor(self, tmpl: BlockTemplate,
                             predictor: BranchPredictor) -> Optional[str]:
        """Where fetch would go after ``tmpl`` on the predicted path."""
        if tmpl.has_branch:
            taken = predictor.peek(tmpl.label, tmpl.static_hint)
            return tmpl.branch_taken if taken else tmpl.branch_alt
        if tmpl.term_kind in (NodeKind.JUMP, NodeKind.CALL):
            return tmpl.control_target
        if tmpl.term_kind is NodeKind.SYSCALL:
            return tmpl.control_target  # None for EXIT
        return None  # RET: the return stack redirects; treat as fetch stall

    def _wrong_path_issue(self, start_label: Optional[str], start_cycle: int,
                          until_cycle: int, window_retires: deque,
                          reg_ready: List[int], predictor: BranchPredictor,
                          alu_used: Dict[int, int],
                          mem_used: Dict[int, int]) -> int:
        """Issue and schedule wrong-path work; returns nodes executed.

        Wrong-path nodes consume issue bandwidth and function-unit slots
        until the squash at ``until_cycle``; their register results live
        in an overlay so the architectural ready times are untouched.
        """
        if start_label is None or start_cycle > until_cycle:
            return 0
        sequential = self.sequential
        mem_limit = self.mem_limit
        alu_limit = self.alu_limit
        window_size = self.window
        templates = self.templates

        overlay: Dict[int, int] = {}
        executed = 0
        cycle = start_cycle
        word_mem_left = 0
        word_alu_left = 0
        label = start_label
        blocks_fetched = 0
        hit_latency = self.config.memory_config.hit_cycles

        while label is not None and cycle <= until_cycle:
            blocks_fetched += 1
            if blocks_fetched > _WRONG_PATH_BLOCK_LIMIT:
                break
            # Window room: real unretired blocks plus wrong-path blocks.
            active_real = sum(1 for r in window_retires if r > cycle) + 1
            if active_real + blocks_fetched - 1 >= window_size:
                break
            tmpl = templates.get(label)
            if tmpl is None:
                break
            word_mem_left = 0  # each block opens a fresh issue word
            word_alu_left = 0
            for cls, dest, srcs in tmpl.nodes:
                if cls == T_SYSCALL:
                    continue
                if sequential:
                    issue_cycle = cycle
                    cycle += 1
                else:
                    if cls == T_LOAD or cls == T_STORE:
                        if word_mem_left <= 0:
                            cycle += 1
                            word_mem_left = mem_limit
                            word_alu_left = alu_limit
                        word_mem_left -= 1
                    else:
                        if word_alu_left <= 0:
                            cycle += 1
                            word_mem_left = mem_limit
                            word_alu_left = alu_limit
                        word_alu_left -= 1
                    issue_cycle = cycle
                if issue_cycle > until_cycle:
                    return executed
                ready = issue_cycle + 1
                for src in srcs:
                    r = overlay.get(src)
                    if r is None:
                        r = reg_ready[src]
                    if r > ready:
                        ready = r
                if cls == T_LOAD or cls == T_STORE:
                    t = ready
                    while mem_used.get(t, 0) >= mem_limit:
                        t += 1
                    if t <= until_cycle:
                        mem_used[t] = mem_used.get(t, 0) + 1
                        executed += 1
                    done = t + (hit_latency if cls == T_LOAD else 1)
                else:
                    t = ready
                    while alu_used.get(t, 0) >= alu_limit:
                        t += 1
                    if t <= until_cycle:
                        alu_used[t] = alu_used.get(t, 0) + 1
                        executed += 1
                    done = t + 1
                if dest >= 0:
                    overlay[dest] = done
            label = self._predicted_successor(tmpl, predictor)
        return executed
