"""Execution profiles: block counts, branch arcs and direction statistics.

The paper's enlargement tool consumes "branch arc densities from the first
simulated run"; this module derives exactly that from a functional trace
(the training-input run), plus the static branch hints that supplement the
2-bit dynamic predictor.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..interp.trace import NOT_TAKEN, TAKEN, Trace
from ..isa import node as nd
from ..isa.ops import NodeKind
from ..program.block import BasicBlock
from ..program.program import Program


class BranchProfile:
    """Aggregated execution statistics for one program run."""

    def __init__(self) -> None:
        #: label -> dynamic execution count
        self.block_counts: Dict[str, int] = {}
        #: (from_label, to_label) -> traversal count (all control arcs)
        self.arc_counts: Dict[Tuple[str, str], int] = {}
        #: label -> [not_taken_count, taken_count] for conditional branches
        self.branch_outcomes: Dict[str, list] = {}

    # ------------------------------------------------------------------
    def taken_fraction(self, label: str) -> float:
        """Fraction of executions in which the branch at ``label`` took."""
        counts = self.branch_outcomes.get(label)
        if not counts or sum(counts) == 0:
            return 0.5
        return counts[TAKEN] / (counts[NOT_TAKEN] + counts[TAKEN])

    def majority_taken(self, label: str) -> bool:
        """Static prediction for the branch at ``label``."""
        return self.taken_fraction(label) >= 0.5

    def arcs_by_weight(self):
        """All arcs sorted by descending traversal count."""
        return sorted(self.arc_counts.items(), key=lambda item: -item[1])


def build_profile(trace: Trace) -> BranchProfile:
    """Aggregate a functional trace into a :class:`BranchProfile`."""
    profile = BranchProfile()
    block_counts = profile.block_counts
    arc_counts = profile.arc_counts
    outcomes = profile.branch_outcomes
    labels = trace.labels

    previous = None
    for position, block_id in enumerate(trace.block_ids):
        label = labels[block_id]
        block_counts[label] = block_counts.get(label, 0) + 1
        if previous is not None:
            arc = (previous, label)
            arc_counts[arc] = arc_counts.get(arc, 0) + 1
        outcome = trace.outcomes[position]
        if outcome in (TAKEN, NOT_TAKEN):
            entry = outcomes.get(label)
            if entry is None:
                entry = [0, 0]
                outcomes[label] = entry
            entry[outcome] += 1
        previous = label
    return profile


def annotate_static_hints(program: Program, profile: BranchProfile) -> Program:
    """Set ``expect_taken`` on conditional branches from profile majority.

    The run-time simulator uses these hints the first time a branch is
    encountered (before its 2-bit counter warms up), matching the paper's
    static-supplemented dynamic prediction.
    """
    replacements: Dict[str, BasicBlock] = {}
    for block in program:
        term = block.terminator
        if term.kind is not NodeKind.BRANCH:
            continue
        if block.label not in profile.branch_outcomes:
            continue
        hint = profile.majority_taken(block.label)
        if term.expect_taken == hint:
            continue
        new_term = nd.branch(term.src1.index, term.target, term.alt_target, hint)
        replacements[block.label] = block.with_body(list(block.body), new_term)
    if not replacements:
        return program
    return program.replace_blocks(replacements)
