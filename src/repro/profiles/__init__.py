"""Profile collection from functional traces."""

from .profile import BranchProfile, annotate_static_hints, build_profile

__all__ = ["BranchProfile", "annotate_static_hints", "build_profile"]
