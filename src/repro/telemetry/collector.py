"""Telemetry collectors: counters, histograms, timers and trace events.

The collector API is designed around one invariant: **when telemetry is
off, the instrumented code must do no extra work**.  The base
:class:`Collector` is itself the null object -- every method is a no-op
and its read-side views are empty -- and the timing engines additionally
guard each per-cycle ``event()`` call behind the plain-attribute
``tracing`` flag, so the disabled path costs one attribute read at engine
start and nothing per cycle (no calls, no allocations).

Three tiers:

* :class:`Collector` -- the null object; :data:`NULL_COLLECTOR` is the
  shared default instance.
* :class:`MetricsCollector` -- counters / histograms / timers / sweep
  points, for harness-level instrumentation (``enabled`` but not
  ``tracing``).
* :class:`TraceCollector` -- additionally records per-cycle pipeline
  events for the exporters in :mod:`repro.telemetry.export`.
"""

from __future__ import annotations

import time
from types import MappingProxyType
from typing import Any, Dict, List, Optional, Tuple

#: Trace-event names the engines may emit.  Exporters and tests treat
#: this as the closed vocabulary; add here (and in DESIGN.md) when an
#: engine grows a new hook.
EVENT_NAMES = frozenset({
    "issue.slot",         # one issue slot consumed (tid: 0=ALU, 1=MEM)
    "window.occupancy",   # active basic blocks at block entry
    "mem.load",           # load scheduled (dur=latency; args: miss, wb_hit)
    "mem.store",          # store scheduled
    "branch.resolve",     # conditional branch resolved (args: mispredict)
    "block.fault",        # enlarged-block assert fired, block discarded
    "block.retire",       # block retired (dur = issue..complete span)
    "value.verify",       # load-value prediction verified (args: confirmed)
    "value.replay",       # dependent burned a slot on a squashed value
})

#: Trace-event thread lanes (Chrome ``tid``): which resource an event
#: belongs to.
TID_ALU = 0
TID_MEM = 1
TID_CONTROL = 2

#: An event record: (ts_cycle, dur_cycles, name, tid, args-or-None).
Event = Tuple[int, int, str, int, Optional[Dict[str, Any]]]

#: The closed cycle-attribution taxonomy (see DESIGN.md "Profiling &
#: metrics"): every simulated cycle of either engine lands in exactly
#: one bucket, so the buckets of one run sum to its total cycles.
ATTRIBUTION_BUCKETS = (
    "issued_full",          # a word issued this cycle
    "issue_stall",          # fetch ready, operands/window were not
    "memory_wait",          # stalled on a memory-produced operand / block
    "mispredict_recovery",  # wrong-path issue + redirect after squash
    "value_recovery",       # window held by a value-squash replay straggler
    "drain_idle",           # tail: in-flight work completing after issue
)

_EMPTY_MAP: Any = MappingProxyType({})


def finalize_attribution(buckets: Dict[str, int], total_cycles: int,
                         accounted: int) -> None:
    """Close an engine's cycle-attribution books so buckets sum exactly.

    ``accounted`` is the engine's accounting cursor: how many cycles it
    charged during the run.  The usual case (cursor behind the total)
    charges the tail -- in-flight work completing after the last issue
    -- to ``drain_idle``.  A cursor *past* the total only happens when a
    trailing redirect charged fetch cycles that never materialised in
    the final cycle count; the overshoot is un-charged from the
    speculative buckets first so every bucket stays non-negative.
    """
    tail = total_cycles - accounted
    if tail >= 0:
        buckets["drain_idle"] += tail
        return
    need = -tail
    for name in ("drain_idle", "mispredict_recovery", "value_recovery",
                 "issue_stall", "memory_wait", "issued_full"):
        have = buckets.get(name)
        if have is None:
            continue  # engines without the bucket (static: no value axis)
        take = have if have < need else need
        buckets[name] = have - take
        need -= take
        if not need:
            return


class _NullTimer:
    """Context manager that measures nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager accumulating wall time into a collector."""

    __slots__ = ("_collector", "_name", "_start")

    def __init__(self, collector: "MetricsCollector", name: str):
        self._collector = collector
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._collector.add_time(self._name, time.perf_counter() - self._start)


class _SpanTimer:
    """Context manager recording one named span into a collector."""

    __slots__ = ("_collector", "_name", "_attrs", "_start")

    def __init__(self, collector: "MetricsCollector", name: str,
                 attrs: Dict[str, Any]):
        self._collector = collector
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._collector.add_span(
            self._name, time.perf_counter() - self._start, **self._attrs
        )


class Collector:
    """The telemetry API; the base class is the null implementation.

    ``enabled`` gates harness-level instrumentation (counters, timers,
    per-point records); ``tracing`` gates per-cycle event recording.
    Both are plain class attributes so hot loops can hoist them into a
    local bool once.
    """

    __slots__ = ()

    enabled = False
    tracing = False

    # ---- write side (all no-ops on the null object) ------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named monotonic counter."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the named distribution."""

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate elapsed wall time under the named timer."""

    def time(self, name: str) -> "_NullTimer":
        """Context manager timing a block into :meth:`add_time`."""
        return _NULL_TIMER

    def event(self, name: str, ts: int, dur: int = 0, tid: int = TID_ALU,
              args: Optional[Dict[str, Any]] = None) -> None:
        """Record one trace event at cycle ``ts`` lasting ``dur`` cycles."""

    def record_point(self, **fields: Any) -> None:
        """Record one sweep-point summary (benchmark, config, timings)."""

    def add_span(self, name: str, dur_s: float, **attrs: Any) -> None:
        """Record one finished named span of ``dur_s`` wall seconds.

        Spans are the phase-attribution primitive: ``phase.prepare``,
        ``phase.simulate``, ``phase.validate`` and ``phase.merge``
        spans threaded through the harness add up to a sweep's wall
        time the way cycle-attribution buckets add up to a simulation's
        cycles.  Attributes carry correlation (benchmark, config,
        job id).
        """

    def span(self, name: str, **attrs: Any) -> "_NullTimer":
        """Context manager timing a block into :meth:`add_span`."""
        return _NULL_TIMER

    # ---- cross-process merge (no-ops on the null object) -------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-data copy of everything recorded so far.

        The snapshot is picklable and feeds :meth:`merge` in another
        collector -- the message a parallel sweep worker sends back to
        the parent so ``telemetry.json`` stays single-writer.
        """
        return {}

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold another collector's :meth:`snapshot` into this one."""

    # ---- read side (empty on the null object) ------------------------
    @property
    def counters(self) -> Dict[str, int]:
        return _EMPTY_MAP

    @property
    def histograms(self) -> Dict[str, List[float]]:
        return _EMPTY_MAP

    @property
    def timers(self) -> Dict[str, List[float]]:
        return _EMPTY_MAP

    @property
    def events(self) -> List[Event]:
        return []

    @property
    def points(self) -> List[Dict[str, Any]]:
        return []

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return []


#: Shared null collector: the default everywhere telemetry is optional.
NULL_COLLECTOR = Collector()


class MetricsCollector(Collector):
    """Collector recording counters, histograms, timers and sweep points."""

    __slots__ = ("_counters", "_histograms", "_timers", "_points", "_spans")

    enabled = True
    tracing = False

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, List[float]] = {}
        self._timers: Dict[str, List[float]] = {}  # name -> [total_s, count]
        self._points: List[Dict[str, Any]] = []
        self._spans: List[Dict[str, Any]] = []

    def count(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        self._histograms.setdefault(name, []).append(value)

    def add_time(self, name: str, seconds: float) -> None:
        entry = self._timers.get(name)
        if entry is None:
            self._timers[name] = [seconds, 1]
        else:
            entry[0] += seconds
            entry[1] += 1

    def time(self, name: str) -> _Timer:
        return _Timer(self, name)

    def record_point(self, **fields: Any) -> None:
        self._points.append(fields)

    def add_span(self, name: str, dur_s: float, **attrs: Any) -> None:
        span: Dict[str, Any] = {"name": name, "dur_s": dur_s}
        if attrs:
            span.update(attrs)
        self._spans.append(span)

    def span(self, name: str, **attrs: Any) -> _SpanTimer:
        return _SpanTimer(self, name, attrs)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self._counters),
            "histograms": {
                name: list(values)
                for name, values in self._histograms.items()
            },
            "timers": {
                name: list(entry) for name, entry in self._timers.items()
            },
            "points": [dict(point) for point in self._points],
            "spans": [dict(span) for span in self._spans],
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        for name, total in snap.get("counters", {}).items():
            self.count(name, total)
        for name, values in snap.get("histograms", {}).items():
            self._histograms.setdefault(name, []).extend(values)
        for name, (total_s, count) in snap.get("timers", {}).items():
            entry = self._timers.get(name)
            if entry is None:
                self._timers[name] = [total_s, count]
            else:
                entry[0] += total_s
                entry[1] += count
        self._points.extend(snap.get("points", []))
        self._spans.extend(snap.get("spans", []))

    @property
    def counters(self) -> Dict[str, int]:
        return self._counters

    @property
    def histograms(self) -> Dict[str, List[float]]:
        return self._histograms

    @property
    def timers(self) -> Dict[str, List[float]]:
        return self._timers

    @property
    def points(self) -> List[Dict[str, Any]]:
        return self._points

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return self._spans


class TraceCollector(MetricsCollector):
    """Collector that additionally records per-cycle pipeline events.

    Events are held as flat tuples (no per-event objects) and ordered by
    the exporters, not here, to keep the record path cheap.
    """

    __slots__ = ("_events",)

    tracing = True

    def __init__(self) -> None:
        super().__init__()
        self._events: List[Event] = []

    def event(self, name: str, ts: int, dur: int = 0, tid: int = TID_ALU,
              args: Optional[Dict[str, Any]] = None) -> None:
        self._events.append((ts, dur, name, tid, args))

    @property
    def events(self) -> List[Event]:
        return self._events
