"""Observability subsystem: counters, timers, per-cycle pipeline traces.

See DESIGN.md section "Observability" for the collector API, the
event/counter naming scheme, and the ``telemetry.json`` schema.
"""

from .collector import (
    Collector,
    EVENT_NAMES,
    MetricsCollector,
    NULL_COLLECTOR,
    TID_ALU,
    TID_CONTROL,
    TID_MEM,
    TraceCollector,
)
from .export import (
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from .progress import ProgressLine

__all__ = [
    "Collector",
    "EVENT_NAMES",
    "MetricsCollector",
    "NULL_COLLECTOR",
    "TID_ALU",
    "TID_CONTROL",
    "TID_MEM",
    "TraceCollector",
    "chrome_trace",
    "jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
    "ProgressLine",
]
