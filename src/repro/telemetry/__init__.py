"""Observability subsystem: counters, timers, per-cycle pipeline traces.

See DESIGN.md section "Observability" for the collector API, the
event/counter naming scheme, and the ``telemetry.json`` schema, and
section "Profiling & metrics" for spans, cycle attribution, the
sampling profiler, and the Prometheus exposition.
"""

from .collector import (
    ATTRIBUTION_BUCKETS,
    Collector,
    EVENT_NAMES,
    MetricsCollector,
    NULL_COLLECTOR,
    TID_ALU,
    TID_CONTROL,
    TID_MEM,
    TraceCollector,
)
from .export import (
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from .logging import StructuredLogger, get_logger
from .perfscope import SamplingProfiler, host_block, profile_call
from .progress import ProgressLine

__all__ = [
    "ATTRIBUTION_BUCKETS",
    "Collector",
    "EVENT_NAMES",
    "MetricsCollector",
    "NULL_COLLECTOR",
    "TID_ALU",
    "TID_CONTROL",
    "TID_MEM",
    "TraceCollector",
    "chrome_trace",
    "jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
    "StructuredLogger",
    "get_logger",
    "SamplingProfiler",
    "host_block",
    "profile_call",
    "ProgressLine",
]
