"""A single-line, carriage-return progress display for long sweeps."""

from __future__ import annotations

import sys
from typing import IO, Optional


class ProgressLine:
    """Rewrites one status line in place (``\\r``) on a terminal stream.

    The line is overwritten on every :meth:`update`; :meth:`finish`
    terminates it with a newline so subsequent output starts clean.
    Writes are plain text (no escape codes), so redirected streams just
    see one line per update.
    """

    def __init__(self, total: int, stream: Optional[IO[str]] = None):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self._last_width = 0

    def update(self, done: int, text: str = "") -> None:
        line = f"[{done}/{self.total}] {text}".rstrip()
        pad = max(self._last_width - len(line), 0)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._last_width = len(line)

    def finish(self) -> None:
        if self._last_width:
            self.stream.write("\n")
            self.stream.flush()
            self._last_width = 0
