"""Perfscope: wall-clock profiling primitives for the harness.

ROADMAP's 10x-engine campaign needs to know *where* a sweep's seconds
go before touching the inner loops.  This module supplies the three
instruments the ``profile`` CLI verb combines:

* :class:`SamplingProfiler` -- a background thread that samples the
  profiled thread's Python stack at a fixed interval and folds the
  samples into collapsed-stack counts (``a;b;c 42``), the input format
  of every flamegraph renderer.  Sampling observes the program as it
  runs, so its numbers are free of call-accounting overhead.
* :func:`profile_call` -- runs a callable under :mod:`cProfile` and
  returns a deterministic top-N hot-function table (exact call counts
  and cumulative times, at the cost of tracing overhead).
* :func:`host_block` -- the machine-identity block every ``BENCH_*``
  document embeds, so perf trajectories across machines compare like
  with like.

None of this imports anything outside the stdlib, and nothing here runs
unless the ``profile`` verb (or a test) asks for it.
"""

from __future__ import annotations

import cProfile
import os
import platform
import pstats
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

T = TypeVar("T")

#: Default sampling period: 5 ms keeps a 10-second run at ~2000 samples
#: -- enough resolution for a flamegraph, negligible observer cost.
DEFAULT_INTERVAL_S = 0.005


class SamplingProfiler:
    """Samples one thread's Python stack into collapsed-stack counts.

    Usage::

        prof = SamplingProfiler()
        with prof:
            run_sweep()
        lines = prof.collapsed()   # ["main;simulate;run 1234", ...]

    The sampler targets the thread that *enters* the context manager
    (via :func:`sys._current_frames`), so wrap only the code under
    study.  Frames are folded root-first as ``module:function`` joined
    with ``;`` -- the folded format ``flamegraph.pl`` and speedscope
    ingest directly.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S):
        self.interval_s = interval_s
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._target_ident: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def start(self, target_ident: Optional[int] = None) -> None:
        if self._thread is not None:
            raise RuntimeError("SamplingProfiler already running")
        self._target_ident = (
            target_ident if target_ident is not None
            else threading.get_ident()
        )
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="perfscope-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        ident = self._target_ident
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue
            # Fold leaf-to-root, then reverse: flamegraph stacks read
            # root-first.
            parts: List[str] = []
            while frame is not None:
                code = frame.f_code
                module = os.path.splitext(
                    os.path.basename(code.co_filename))[0]
                parts.append(f"{module}:{code.co_name}")
                frame = frame.f_back
            stack = ";".join(reversed(parts))
            self._counts[stack] = self._counts.get(stack, 0) + 1
            self._samples += 1

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Total samples taken (0 means the run was too short to see)."""
        return self._samples

    def collapsed(self) -> List[str]:
        """Folded stack lines, most-sampled first (ties lexicographic)."""
        ordered = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        return [f"{stack} {count}" for stack, count in ordered]

    def hot_frames(self, top_n: int = 10) -> List[Dict[str, Any]]:
        """Leaf-frame sample shares: where the program actually *was*."""
        leaves: Dict[str, int] = {}
        for stack, count in self._counts.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        total = self._samples or 1
        ordered = sorted(
            leaves.items(), key=lambda item: (-item[1], item[0])
        )[:top_n]
        return [
            {"frame": frame, "samples": count,
             "share": round(count / total, 4)}
            for frame, count in ordered
        ]


def profile_call(fn: Callable[[], T],
                 top_n: int = 15) -> Tuple[T, List[Dict[str, Any]]]:
    """Run ``fn`` under cProfile; return its result and a hot table.

    The table rows are ``{function, file, line, calls, tottime_s,
    cumtime_s}`` sorted by internal time (the frames burning CPU
    themselves, not waiting on callees), top ``top_n``.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows: List[Dict[str, Any]] = []
    for (filename, lineno, funcname), (cc, nc, tottime, cumtime, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        rows.append({
            "function": funcname,
            "file": os.path.basename(filename),
            "line": lineno,
            "calls": nc,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    rows.sort(key=lambda row: (-row["tottime_s"], row["function"]))
    return result, rows[:top_n]


def host_block() -> Dict[str, Any]:
    """Machine identity for ``BENCH_*`` documents.

    Captures what makes perf numbers (in)comparable across machines:
    platform triple, Python implementation/version, CPU count, and any
    ``REPRO_*`` environment knobs that alter harness behaviour.
    """
    repro_env = {
        name: value for name, value in sorted(os.environ.items())
        if name.startswith("REPRO_")
    }
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "python_impl": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "repro_env": repro_env,
    }


def measure_overhead(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall seconds for ``fn`` (overhead gating).

    Best-of is the standard noise-rejection for micro-benches: the
    minimum is the run least disturbed by the OS.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
