"""Structured logging with correlation ids for harness and service code.

Diagnostics used to go to stderr as bare ``print`` calls; this module
gives them one shared shape so an operator tailing a daemon (or a log
shipper scraping one) sees a single, greppable stream:

* **Human mode** (the default): ``component: event key=value ...`` --
  one line, stable ordering, no escape codes.
* **JSON mode** (``repro-sim --log-json ...`` or ``REPRO_LOG_JSON=1``):
  one JSON object per line (JSONL), ``{"ts", "level", "component",
  "event", ...fields}`` -- machine-parseable with nothing else mixed in.

Correlation: a logger can :meth:`~StructuredLogger.bind` context fields
(job id, point key, backend) that ride on every record it emits, so a
job's admission, phase spans, point resolutions and terminal state can
be stitched back together from the stream with one grep.

This is intentionally not :mod:`logging` from the stdlib: the harness
needs exactly one sink (stderr), no level hierarchy surgery, and
records cheap enough to emit from the sweep loop.  The module name
shadows nothing -- absolute imports mean ``import logging`` elsewhere
still finds the stdlib.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, IO, Optional

LEVEL_DEBUG = "debug"
LEVEL_INFO = "info"
LEVEL_WARNING = "warning"
LEVEL_ERROR = "error"

#: Process-wide output mode; flipped once at CLI startup (never per
#: record, so a stream is all-JSONL or all-human, never interleaved).
_JSON_MODE: Optional[bool] = None


def configure(json_mode: Optional[bool] = None) -> bool:
    """Set (or re-derive) the process-wide log format.

    ``json_mode=None`` re-reads the ``REPRO_LOG_JSON`` environment
    variable (any non-empty value except ``0``/``false`` enables JSONL);
    an explicit boolean overrides it.  Returns the effective mode.
    """
    global _JSON_MODE
    if json_mode is None:
        raw = os.environ.get("REPRO_LOG_JSON", "")
        _JSON_MODE = raw.lower() not in ("", "0", "false")
    else:
        _JSON_MODE = bool(json_mode)
    return _JSON_MODE


def json_mode() -> bool:
    """Whether records are emitted as JSONL (lazily reads the env)."""
    if _JSON_MODE is None:
        return configure(None)
    return _JSON_MODE


def _render_value(value: Any) -> str:
    """Human-mode value rendering: compact, quote only when needed."""
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or text == "":
        return json.dumps(text)
    return text


class StructuredLogger:
    """One named emitter of structured records (see module docstring)."""

    __slots__ = ("component", "context", "_stream")

    def __init__(self, component: str,
                 context: Optional[Dict[str, Any]] = None,
                 stream: Optional[IO[str]] = None):
        self.component = component
        self.context = dict(context) if context else {}
        #: None means "sys.stderr at emit time", so pytest's capture and
        #: daemon redirection both see records without re-plumbing.
        self._stream = stream

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger whose records all carry ``fields``."""
        merged = dict(self.context)
        merged.update(fields)
        return StructuredLogger(self.component, merged, self._stream)

    # ------------------------------------------------------------------
    def log(self, level: str, event: str, **fields: Any) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        if json_mode():
            record: Dict[str, Any] = {
                "ts": round(time.time(), 6),
                "level": level,
                "component": self.component,
                "event": event,
            }
            record.update(self.context)
            record.update(fields)
            line = json.dumps(record, separators=(",", ":"),
                              default=str)
        else:
            parts = [f"{self.component}: {event}"]
            for name, value in {**self.context, **fields}.items():
                parts.append(f"{name}={_render_value(value)}")
            if level in (LEVEL_WARNING, LEVEL_ERROR):
                parts.insert(0, level.upper())
            line = " ".join(parts)
        try:
            stream.write(line + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # a closed stderr must never take the sweep down

    def debug(self, event: str, **fields: Any) -> None:
        self.log(LEVEL_DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(LEVEL_INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(LEVEL_WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(LEVEL_ERROR, event, **fields)


def get_logger(component: str, **context: Any) -> StructuredLogger:
    """A logger for one component, optionally with bound context."""
    return StructuredLogger(component, context or None)
