"""Prometheus text exposition (format 0.0.4) for the sweep service.

The service's ``/metrics`` endpoint speaks the plain-text format every
Prometheus-compatible scraper understands::

    # TYPE repro_service_jobs_accepted counter
    repro_service_jobs_accepted 2
    # TYPE repro_job_queue_wait_seconds histogram
    repro_job_queue_wait_seconds_bucket{le="0.1"} 4
    ...

Rendering happens at exposition time from plain snapshot data (dict of
counters, dict of histogram sample lists, dict of gauges) that the
scheduler refreshes under its lock -- this module never touches a live
collector, so it cannot race the scheduler thread.

Only the exposition subset the service needs is implemented: counters,
gauges, and cumulative histograms with fixed ``le`` buckets.  Metric
names are sanitized (dots and dashes become underscores) and prefixed
``repro_`` so the sweep daemon's series namespace is unmistakable.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence

#: MIME type of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency buckets (seconds): sub-ms queue hops through
#: multi-minute jobs, the usual log-ish ladder.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

_PREFIX = "repro_"


def sanitize(name: str) -> str:
    """A dotted collector name as a legal Prometheus metric name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return _PREFIX + text


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_counters(counters: Dict[str, int]) -> List[str]:
    lines: List[str] = []
    for name in sorted(counters):
        metric = sanitize(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    return lines


def render_gauges(gauges: Dict[str, float]) -> List[str]:
    lines: List[str] = []
    for name in sorted(gauges):
        metric = sanitize(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    return lines


def render_histogram(name: str, samples: Sequence[float],
                     buckets: Iterable[float] = DEFAULT_BUCKETS,
                     ) -> List[str]:
    """One histogram family from raw samples.

    Prometheus histograms are cumulative: each ``le`` bucket counts all
    samples at or below its bound, ``+Inf`` counts everything, and
    ``_sum`` / ``_count`` close the family.
    """
    metric = sanitize(name)
    if not metric.endswith("_seconds"):
        metric += "_seconds"
    lines = [f"# TYPE {metric} histogram"]
    bounds = sorted(set(buckets))
    for bound in bounds:
        covered = sum(1 for sample in samples if sample <= bound)
        lines.append(
            f'{metric}_bucket{{le="{_format_value(bound)}"}} {covered}'
        )
    lines.append(f'{metric}_bucket{{le="+Inf"}} {len(samples)}')
    lines.append(f"{metric}_sum {_format_value(float(sum(samples)))}")
    lines.append(f"{metric}_count {len(samples)}")
    return lines


def render_exposition(counters: Dict[str, int],
                      gauges: Dict[str, float],
                      histograms: Dict[str, List[float]],
                      buckets: Iterable[float] = DEFAULT_BUCKETS) -> str:
    """The full ``/metrics`` body; ends with the mandatory newline."""
    lines: List[str] = []
    lines.extend(render_counters(counters))
    lines.extend(render_gauges(gauges))
    for name in sorted(histograms):
        lines.extend(render_histogram(name, histograms[name], buckets))
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse an exposition body back into families (tests / debugging).

    Returns ``{metric_name: {"type": ..., "samples": {label_sig: value}}}``
    where ``label_sig`` is the raw ``{...}`` text (or ``""``).  Raises
    ``ValueError`` on any line that is not a comment, blank, or a
    well-formed sample -- which is what makes it useful as a validity
    check in tests.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                families.setdefault(
                    parts[2], {"type": parts[3], "samples": {}}
                )["type"] = parts[3]
            continue
        # sample line: name[{labels}] value
        if "{" in line:
            name_part, rest = line.split("{", 1)
            labels, value_part = rest.rsplit("}", 1)
            label_sig = "{" + labels + "}"
        else:
            pieces = line.split()
            if len(pieces) != 2:
                raise ValueError(f"malformed sample line: {raw!r}")
            name_part, value_part = pieces
            label_sig = ""
        name = name_part.strip()
        if not name or not all(
                ch.isalnum() or ch in "_:" for ch in name):
            raise ValueError(f"bad metric name in line: {raw!r}")
        value = float(value_part.strip().replace("+Inf", "inf"))
        # _bucket/_sum/_count samples belong to their histogram family.
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        family = families.setdefault(base, {"type": "untyped", "samples": {}})
        family["samples"][name + label_sig] = value
    return families
