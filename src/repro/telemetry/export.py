"""Trace exporters: Chrome ``chrome://tracing`` JSON and compact JSONL.

Both exporters consume a :class:`~repro.telemetry.collector.TraceCollector`
and emit events sorted by timestamp (the engines append in schedule
order, which is not globally monotonic on a dataflow machine).

Chrome format notes (the ``about:tracing`` / Perfetto JSON schema):

* timestamps and durations are nominally microseconds; we map one
  machine cycle to one microsecond so cycle numbers read directly;
* span events (``dur > 0``) become complete events (``ph="X"``);
* point events become instants (``ph="i"``, thread scope);
* ``issue.slot`` and ``window.occupancy`` events become counter tracks
  (``ph="C"``), aggregated per cycle, so slot pressure is a plot rather
  than thousands of instants.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Union

from .collector import (
    Event,
    TID_ALU,
    TID_CONTROL,
    TID_MEM,
    TraceCollector,
)

#: Chrome trace process id used for all events (one simulated machine).
CHROME_PID = 1

_THREAD_NAMES = {
    TID_ALU: "alu units",
    TID_MEM: "memory units",
    TID_CONTROL: "control",
}


def _sorted_events(collector: TraceCollector) -> List[Event]:
    return sorted(collector.events, key=lambda e: (e[0], e[2], e[3]))


def _slot_counter_series(events: Iterable[Event]) -> Dict[int, List[int]]:
    """Aggregate ``issue.slot`` events into per-cycle [alu, mem] counts."""
    series: Dict[int, List[int]] = {}
    for ts, _dur, name, tid, _args in events:
        if name != "issue.slot":
            continue
        row = series.get(ts)
        if row is None:
            row = series[ts] = [0, 0]
        row[1 if tid == TID_MEM else 0] += 1
    return series


def chrome_trace(collector: TraceCollector, *,
                 benchmark: str = "", config: str = "") -> Dict[str, Any]:
    """Build the Chrome-tracing JSON document for a recorded trace."""
    trace_events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": CHROME_PID, "tid": 0, "name": "process_name",
         "args": {"name": f"repro {benchmark} {config}".strip()}},
    ]
    for tid, label in sorted(_THREAD_NAMES.items()):
        trace_events.append(
            {"ph": "M", "pid": CHROME_PID, "tid": tid, "name": "thread_name",
             "args": {"name": label}}
        )

    events = _sorted_events(collector)
    timed: List[Dict[str, Any]] = []
    for ts, counts in _slot_counter_series(events).items():
        timed.append(
            {"ph": "C", "pid": CHROME_PID, "tid": 0, "ts": ts,
             "name": "issue.slots",
             "args": {"alu": counts[0], "mem": counts[1]}}
        )
    for ts, dur, name, tid, args in events:
        if name == "issue.slot":
            continue  # folded into the counter track above
        record: Dict[str, Any] = {
            "pid": CHROME_PID, "tid": tid, "ts": ts, "name": name,
        }
        if name == "window.occupancy":
            record["ph"] = "C"
            record["tid"] = 0
        elif dur > 0:
            record["ph"] = "X"
            record["dur"] = dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if args:
            record["args"] = dict(args)
        timed.append(record)
    timed.sort(key=lambda r: r["ts"])
    trace_events.extend(timed)

    return {
        "displayTimeUnit": "ms",
        "otherData": {"benchmark": benchmark, "config": config,
                      "clock": "1 cycle = 1 us"},
        "traceEvents": trace_events,
    }


def write_chrome_trace(collector: TraceCollector,
                       destination: Union[str, IO[str]], *,
                       benchmark: str = "", config: str = "") -> None:
    """Write the Chrome-tracing JSON document to a path or stream."""
    document = chrome_trace(collector, benchmark=benchmark, config=config)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, destination)


def jsonl_lines(collector: TraceCollector) -> Iterable[str]:
    """One compact JSON object per event, sorted by timestamp."""
    for ts, dur, name, tid, args in _sorted_events(collector):
        record: Dict[str, Any] = {"ts": ts, "name": name, "tid": tid}
        if dur:
            record["dur"] = dur
        if args:
            record.update(args)
        yield json.dumps(record, separators=(",", ":"))


def write_jsonl(collector: TraceCollector,
                destination: Union[str, IO[str]]) -> None:
    """Write the JSONL event stream to a path or stream."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            for line in jsonl_lines(collector):
                handle.write(line + "\n")
    else:
        for line in jsonl_lines(collector):
            destination.write(line + "\n")
