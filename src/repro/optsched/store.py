"""Content-addressed memoization of solved block schedules.

Exact scheduling is pure: the solution depends only on the block's
nodes, the issue model's slot shape, and the memory latency the shared
dependence relation bakes into flow edges.  The store keys each solved
block by exactly that triple -- ``(block signature, issue parameters,
hit cycles)`` -- so a block re-solved under any benchmark, grid, or
enlargement reuses the earlier search, and bumping
``SCHEDULE_STORE_VERSION`` retires every stale entry at once.

Entries live under ``default_artifact_root()/schedules/v<N>/`` as one
JSON file per key, written with the crash-safe
:func:`repro.harness.cache.atomic_write_json`.  A corrupt or
wrong-shape entry is treated as a miss and overwritten, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence

from ..harness.artifacts import default_artifact_root
from ..harness.cache import atomic_write_json
from ..isa.node import Node
from ..machine.config import IssueModel, MemoryConfig
from ..telemetry.logging import get_logger
from .model import block_signature

#: Bump when the solver, the dependence relation, or the latency table
#: changes enough to invalidate memoized schedules.
SCHEDULE_STORE_VERSION = 1

_LOG = get_logger("optsched.store")

#: Fields every stored entry must carry to be trusted.
_ENTRY_FIELDS = ("words", "list_makespan", "makespan", "lower_bound",
                 "closed", "steps")


def schedule_key(nodes: Sequence[Node], issue: IssueModel,
                 memory: MemoryConfig) -> str:
    """Digest of everything a block's optimal schedule depends on."""
    raw = "|".join((
        f"v{SCHEDULE_STORE_VERSION}",
        block_signature(nodes),
        f"seq{int(issue.sequential)}",
        f"a{issue.alu_slots}",
        f"m{issue.mem_slots}",
        f"hit{memory.hit_cycles}",
    ))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:32]


class ScheduleStore:
    """On-disk memo of :class:`repro.optsched.solver.BlockSolution` data."""

    def __init__(self, root: Optional[str] = None):
        base = root if root is not None else default_artifact_root()
        self.directory = os.path.join(
            base, "schedules", f"v{SCHEDULE_STORE_VERSION}"
        )

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str) -> Optional[Dict]:
        """A previously stored entry, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if any(field not in entry for field in _ENTRY_FIELDS):
            _LOG.warning("schedule_entry_malformed", path=path)
            return None
        words = entry["words"]
        if not isinstance(words, list) or not all(
            isinstance(word, list) and all(isinstance(i, int) for i in word)
            for word in words
        ):
            _LOG.warning("schedule_words_malformed", path=path)
            return None
        return entry

    def save(self, key: str, words: List[List[int]], list_makespan: int,
             makespan: int, lower_bound: int, closed: bool,
             steps: int) -> None:
        """Persist one solved block (crash-safe, last writer wins)."""
        entry = {
            "words": words,
            "list_makespan": list_makespan,
            "makespan": makespan,
            "lower_bound": lower_bound,
            "closed": closed,
            "steps": steps,
        }
        atomic_write_json(self._path(key), entry)
