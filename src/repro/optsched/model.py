"""Constraint model for exact basic-block scheduling.

One :class:`ScheduleProblem` is the complete constraint formulation the
solver works on: decision variables are the issue cycle of each node
(slots within a cycle are interchangeable, so a per-node *slot* variable
would add symmetry without information); constraints are

* precedence edges with latencies -- the exact relation the list
  scheduler honours (flow dependences weighted by the shared
  :mod:`repro.sched.latency` table, anti/output register dependences,
  the conservative memory-ordering relation, terminator-last), imported
  verbatim from :func:`repro.sched.build_dependences`;
* per-cycle slot capacity from the issue model -- memory nodes against
  ``mem_slots``, datapath nodes against ``alu_slots``, syscalls free
  (they occupy no datapath slot), and the sequential model's single
  slot of any class (which a syscall *does* consume), mirroring the
  list scheduler's accounting exactly.

The model also computes the two certified lower bounds the
branch-and-bound search is anchored on: the latency-weighted critical
path and the slot-capacity (resource) bound.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

from ..isa.node import Node
from ..isa.ops import NodeKind
from ..machine.config import IssueModel, MemoryConfig
from ..sched.list_scheduler import build_dependences

#: Slot classes a node can occupy (see the issue-model accounting).
CLASS_MEM = 0
CLASS_ALU = 1
CLASS_FREE = 2  # syscall: no datapath slot on multi-issue models


def slot_class(node: Node) -> int:
    """Which issue-slot budget this node draws from."""
    if node.kind is NodeKind.SYSCALL:
        return CLASS_FREE
    if node.is_memory:
        return CLASS_MEM
    return CLASS_ALU


class ScheduleProblem:
    """One block's scheduling constraints, ready for the exact solver."""

    __slots__ = (
        "nodes", "preds", "succs", "classes", "issue",
        "est", "tail", "n_mem", "n_alu",
    )

    def __init__(self, nodes: Sequence[Node], issue: IssueModel,
                 memory: MemoryConfig):
        self.nodes = list(nodes)
        self.issue = issue
        self.preds: List[List[Tuple[int, int]]] = build_dependences(
            self.nodes, memory
        )
        count = len(self.nodes)
        self.succs: List[List[Tuple[int, int]]] = [[] for _ in range(count)]
        for index, plist in enumerate(self.preds):
            for pred, latency in plist:
                self.succs[pred].append((index, latency))
        self.classes = [slot_class(node) for node in self.nodes]
        self.n_mem = sum(1 for c in self.classes if c == CLASS_MEM)
        self.n_alu = sum(1 for c in self.classes if c == CLASS_ALU)
        # Longest latency-weighted path from sources (earliest start) and
        # to sinks (the node's tail).  Dependence edges always point
        # backward in program order, so index order is topological.
        self.est = [0] * count
        for index in range(count):
            best = 0
            for pred, latency in self.preds[index]:
                candidate = self.est[pred] + latency
                if candidate > best:
                    best = candidate
            self.est[index] = best
        self.tail = [0] * count
        for index in range(count - 1, -1, -1):
            best = 0
            for succ, latency in self.succs[index]:
                candidate = latency + self.tail[succ]
                if candidate > best:
                    best = candidate
            self.tail[index] = best

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.nodes)

    def capacity(self, cls: int) -> int:
        """Per-cycle slot budget of one class (a large value = unbounded)."""
        if self.issue.sequential:
            return 1
        if cls == CLASS_MEM:
            return self.issue.mem_slots
        if cls == CLASS_ALU:
            return self.issue.alu_slots
        return len(self.nodes) or 1  # syscalls are free on multi-issue

    def critical_path_bound(self) -> int:
        """Makespan lower bound from the latency-weighted critical path."""
        if not self.nodes:
            return 0
        return max(e + 1 for e in self.est)

    def resource_bound(self) -> int:
        """Makespan lower bound from issue-slot capacity."""
        if not self.nodes:
            return 0
        if self.issue.sequential:
            # Every node (syscalls included) consumes the single slot.
            return len(self.nodes)
        bound = 1
        if self.n_mem:
            bound = max(bound, -(-self.n_mem // self.issue.mem_slots))
        if self.n_alu:
            bound = max(bound, -(-self.n_alu // self.issue.alu_slots))
        return bound

    def lower_bound(self) -> int:
        """The certified makespan lower bound the search starts from."""
        return max(self.critical_path_bound(), self.resource_bound())


def block_signature(nodes: Sequence[Node]) -> str:
    """Content digest over everything scheduling depends on.

    Branch targets are deliberately excluded: the dependence relation and
    slot classes never consult them, so two blocks differing only in
    control-flow targets schedule identically and share a memo entry.
    """
    hasher = hashlib.sha256()
    for node in nodes:
        parts = [
            node.kind.value,
            node.op.value if node.op is not None else "",
            str(node.dest if node.dest is not None else ""),
            repr(node.src1) if node.src1 is not None else "",
            repr(node.src2) if node.src2 is not None else "",
            str(node.base if node.base is not None else ""),
            str(node.offset),
            str(node.width.value) if node.width is not None else "",
            ",".join(str(arg) for arg in node.args),
        ]
        hasher.update("|".join(parts).encode("utf-8"))
        hasher.update(b";")
    return hasher.hexdigest()[:24]
