"""Modulo software pipelining of innermost single-block loops.

An innermost loop in this ISA is a block whose conditional terminator
targets its own label.  For each such block the analysis computes the
paper-standard minimum initiation interval ``MII = max(ResMII,
RecMII)`` -- ``ResMII`` from per-iteration issue-slot demand,
``RecMII`` from loop-carried dependence cycles -- then searches II
upward from MII, solving the kernel as the same constraint problem
*modulo II*: precedence edges as in straight-line scheduling, carried
(distance-1) edges relaxed by one II per iteration crossed, and slot
capacities enforced per residue class ``cycle mod II``.

Carried edges reuse :func:`repro.sched.build_dependences` verbatim on a
doubled copy of the block (iteration ``k`` concatenated with iteration
``k+1``): every edge crossing the copy boundary is a distance-1 carried
dependence under exactly the conservative register/memory rules the
list scheduler and the exact block solver already share.  ``RecMII``
and the kernel search use the *same* conservative relation, so MII is
a certified lower bound within this dependence model.

The engine replays blocks one trace entry at a time and cannot overlap
iterations, so modulo schedules are reported as analysis (the
``schedule`` verb and the EXPERIMENTS gap table: II achieved vs MII
per loop), not wired into timing runs; the fallback when the budget
exhausts is the list schedule, whose makespan is itself a valid
(serial) initiation interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa.ops import NodeKind
from ..machine.config import IssueModel, MemoryConfig
from ..program.block import BasicBlock
from ..program.program import Program
from ..sched.list_scheduler import build_dependences, schedule_block
from .model import CLASS_FREE, ScheduleProblem
from .solver import Budget, _Exhausted

#: Default per-loop step budget for the kernel search.
DEFAULT_LOOP_BUDGET = 150_000


@dataclass
class LoopPipeline:
    """Modulo-scheduling verdict for one innermost loop block."""

    label: str
    node_count: int
    #: per-iteration resource bound on II.
    res_mii: int
    #: loop-carried recurrence bound on II.
    rec_mii: int
    #: ``max(res_mii, rec_mii, 1)``: the certified lower bound.
    mii: int
    #: initiation interval achieved (== list makespan on fallback).
    ii: int
    #: the list scheduler's serial makespan (the fallback II).
    list_makespan: int
    #: True iff ``ii == mii`` (the kernel is certified optimal).
    closed: bool
    #: True when a pipelined kernel (ii < list makespan) was found.
    pipelined: bool
    #: candidate placements explored.
    steps: int


def is_innermost_loop(block: BasicBlock) -> bool:
    """A single-block loop: a conditional branch back to its own label."""
    term = block.terminator
    return term.kind is NodeKind.BRANCH and block.label in (
        term.target, term.alt_target
    )


def carried_edges(block: BasicBlock,
                  memory: MemoryConfig) -> List[Tuple[int, int, int]]:
    """Distance-1 loop-carried dependences ``(from, to, latency)``.

    Computed by running the shared dependence builder over two
    concatenated copies of the block and keeping exactly the edges that
    cross the iteration boundary.
    """
    nodes = list(block.nodes())
    count = len(nodes)
    doubled = build_dependences(nodes + nodes, memory)
    edges: List[Tuple[int, int, int]] = []
    for index in range(count, 2 * count):
        for pred, latency in doubled[index]:
            if pred < count:
                edges.append((pred, index - count, latency))
    return edges


def _recurrence_mii(problem: ScheduleProblem,
                    carried: List[Tuple[int, int, int]]) -> int:
    """RecMII: the heaviest distance-1 dependence cycle.

    For a carried edge ``u -> v`` the cycle closes along the longest
    intra-iteration path ``v -> u`` (edges always point forward in
    index order, so a simple ascending DP suffices).
    """
    best = 0
    count = problem.count
    for source, target, latency in carried:
        if target > source:
            continue  # no intra path back: no simple cycle via this edge
        if target == source:
            best = max(best, latency)
            continue
        dist = [-1] * count
        dist[target] = 0
        for index in range(target + 1, source + 1):
            reach = -1
            for pred, lat in problem.preds[index]:
                if pred >= target and dist[pred] >= 0:
                    candidate = dist[pred] + lat
                    if candidate > reach:
                        reach = candidate
            dist[index] = reach
        if dist[source] >= 0:
            best = max(best, latency + dist[source])
    return best


def _decide_kernel(problem: ScheduleProblem,
                   carried: List[Tuple[int, int, int]], ii: int,
                   budget: Budget) -> Optional[List[int]]:
    """A kernel at initiation interval ``ii``, or None within the window.

    Each node is tried over the ``ii`` cycles starting at its earliest
    intra-iteration start (Rau's window); carried edges add exact
    bounds against already-placed nodes.  Slot capacity is enforced per
    residue class ``cycle mod ii``.
    """
    count = problem.count
    classes = problem.classes
    preds = problem.preds
    capacity = [problem.capacity(cls) for cls in (0, 1, 2)]
    used = [[0, 0, 0] for _ in range(ii)]
    sequential = problem.issue.sequential
    # Carried edges indexed by whichever endpoint is placed *later* in
    # index order; the other endpoint's cycle is known at that moment.
    lower_by_later: List[List[Tuple[int, int]]] = [[] for _ in range(count)]
    upper_by_later: List[List[Tuple[int, int]]] = [[] for _ in range(count)]
    for source, target, latency in carried:
        # cycle[target] + ii >= cycle[source] + latency
        if target >= source:
            lower_by_later[target].append((source, latency))
        else:
            upper_by_later[source].append((target, latency))
    cycles = [-1] * count
    choice = [0] * count

    def fits(cls: int, slot: int) -> bool:
        slot_use = used[slot]
        if sequential:
            return slot_use[0] + slot_use[1] + slot_use[2] < 1
        if cls == CLASS_FREE:
            return True
        return slot_use[cls] < capacity[cls]

    index = 0
    while 0 <= index < count:
        cls = classes[index]
        if cycles[index] < 0:
            earliest = 0
            for pred, latency in preds[index]:
                candidate = cycles[pred] + latency
                if candidate > earliest:
                    earliest = candidate
            for other, latency in lower_by_later[index]:
                candidate = cycles[other] + latency - ii
                if candidate > earliest:
                    earliest = candidate
            choice[index] = max(choice[index], earliest)
        latest = problem.est[index] + ii - 1
        for other, latency in upper_by_later[index]:
            bound = cycles[other] + ii - latency
            if bound < latest:
                latest = bound
        placed = False
        cycle = choice[index]
        while cycle <= latest:
            if not budget.step():
                raise _Exhausted()
            if fits(cls, cycle % ii):
                cycles[index] = cycle
                used[cycle % ii][cls] += 1
                choice[index] = cycle + 1
                placed = True
                break
            cycle += 1
        if placed:
            index += 1
            continue
        choice[index] = 0
        index -= 1
        if index >= 0:
            used[cycles[index] % ii][classes[index]] -= 1
            cycles[index] = -1
    if index < 0:
        return None
    return cycles


def _verify_kernel(problem: ScheduleProblem,
                   carried: List[Tuple[int, int, int]],
                   cycles: List[int], ii: int) -> None:
    """Assert a found kernel satisfies every modulo constraint."""
    for index, cycle in enumerate(cycles):
        for pred, latency in problem.preds[index]:
            assert cycle >= cycles[pred] + latency, "kernel precedence"
    for source, target, latency in carried:
        assert cycles[target] + ii >= cycles[source] + latency, (
            "carried dependence violated"
        )
    used = [[0, 0, 0] for _ in range(ii)]
    for index, cycle in enumerate(cycles):
        used[cycle % ii][problem.classes[index]] += 1
    for slot_use in used:
        if problem.issue.sequential:
            assert sum(slot_use) <= 1, "kernel sequential capacity"
        else:
            assert slot_use[0] <= problem.capacity(0), "kernel mem capacity"
            assert slot_use[1] <= problem.capacity(1), "kernel alu capacity"


def pipeline_loop(block: BasicBlock, issue: IssueModel,
                  memory: MemoryConfig,
                  budget_steps: int = DEFAULT_LOOP_BUDGET) -> LoopPipeline:
    """Modulo-schedule one innermost loop block, budget-bounded."""
    nodes = list(block.nodes())
    problem = ScheduleProblem(nodes, issue, memory)
    carried = carried_edges(block, memory)
    res_mii = problem.resource_bound()
    rec_mii = _recurrence_mii(problem, carried)
    mii = max(res_mii, rec_mii, 1)
    list_makespan = len(schedule_block(block, issue, memory).words)
    budget = Budget(budget_steps)

    ii = list_makespan
    pipelined = False
    candidate = mii
    while candidate < list_makespan:
        try:
            cycles = _decide_kernel(problem, carried, candidate, budget)
        except _Exhausted:
            break
        if cycles is not None:
            _verify_kernel(problem, carried, cycles, candidate)
            ii = candidate
            pipelined = True
            break
        candidate += 1
    return LoopPipeline(
        label=block.label,
        node_count=len(nodes),
        res_mii=res_mii,
        rec_mii=rec_mii,
        mii=mii,
        ii=ii,
        list_makespan=list_makespan,
        closed=ii == mii,
        pipelined=pipelined,
        steps=budget.spent,
    )


def pipeline_program(program: Program, issue: IssueModel,
                     memory: MemoryConfig,
                     budget_steps: int = DEFAULT_LOOP_BUDGET,
                     ) -> List[LoopPipeline]:
    """Modulo-schedule every innermost single-block loop of a program."""
    return [
        pipeline_loop(block, issue, memory, budget_steps=budget_steps)
        for block in program
        if is_innermost_loop(block)
    ]
