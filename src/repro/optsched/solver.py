"""Exact block scheduling by budgeted branch-and-bound.

The optimiser answers a sequence of *decision problems*: "does a
schedule of makespan ``T`` exist?" starting at the certified lower
bound of :class:`repro.optsched.model.ScheduleProblem` and walking up
to the list scheduler's makespan (the seeded upper bound).  Each UNSAT
answer is a proof that raises the certified bound by one, so the first
SAT answer -- or reaching the list makespan with everything below it
refuted -- closes the block with a certificate ``makespan ==
lower_bound``.  By construction the returned schedule is never worse
than the list schedule.

The decision search assigns issue cycles in program (= topological)
order, so every predecessor is placed when a node is tried and its
earliest feasible cycle is exact, with DPLL-style pruning: the
latency-weighted tail bounds each node's latest cycle, per-cycle slot
capacities bound the candidates, and an aggregate free-slot count per
class refutes branches whose remaining work cannot fit.  Exploration
order is fully deterministic (index order, ascending cycles, no
``hash()`` anywhere) and metered by a deterministic step budget -- a
counter of candidate placements, not wall clock -- so identical inputs
explore identical trees on every interpreter and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..isa.node import Node
from ..machine.config import IssueModel, MemoryConfig
from ..program.block import BasicBlock
from ..sched.list_scheduler import ScheduledBlock, schedule_block
from .model import CLASS_FREE, ScheduleProblem

#: Default per-block step budget (candidate placements tried).  Chosen
#: so real Mini-C blocks close in well under a second while a
#: pathological block degrades to the list schedule instead of hanging.
DEFAULT_BLOCK_BUDGET = 250_000


class Budget:
    """Deterministic exploration meter shared across decision calls."""

    __slots__ = ("remaining", "spent")

    def __init__(self, steps: int):
        self.remaining = steps
        self.spent = 0

    def step(self) -> bool:
        """Consume one step; False once the budget is exhausted."""
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        self.spent += 1
        return True


class _Exhausted(Exception):
    """Internal: the step budget ran out mid-search."""


@dataclass
class BlockSolution:
    """One block's solved schedule plus its optimality certificate."""

    schedule: ScheduledBlock
    #: the greedy list scheduler's makespan (the seeded upper bound).
    list_makespan: int
    #: makespan of the returned schedule (== len(schedule.words)).
    makespan: int
    #: highest certified lower bound (critical-path/resource seed plus
    #: one per UNSAT proof).
    lower_bound: int
    #: True iff the search closed: ``makespan == lower_bound``.
    closed: bool
    #: candidate placements explored before returning.
    steps: int

    @property
    def gap(self) -> int:
        """List-vs-returned makespan gap in cycles (>= 0)."""
        return self.list_makespan - self.makespan


def _decide(problem: ScheduleProblem, horizon: int,
            budget: Budget) -> Optional[List[int]]:
    """SAT: a cycle per node within ``horizon`` cycles; None: UNSAT.

    Raises :class:`_Exhausted` when the budget runs out undecided.
    """
    count = problem.count
    classes = problem.classes
    preds = problem.preds
    tail = problem.tail
    # A node's window is [exact earliest from placed preds, horizon-1-tail];
    # an empty static window refutes the horizon without any search.
    latest = [horizon - 1 - tail[index] for index in range(count)]
    for index in range(count):
        if problem.est[index] > latest[index]:
            return None
    capacity = [problem.capacity(cls) for cls in (0, 1, 2)]
    used = [[0, 0, 0] for _ in range(horizon)]
    sequential = problem.issue.sequential
    cycles = [-1] * count
    choice = [0] * count  # next candidate cycle to try per node

    def fits(cls: int, cycle: int) -> bool:
        slot_use = used[cycle]
        if sequential:
            return slot_use[0] + slot_use[1] + slot_use[2] < 1
        if cls == CLASS_FREE:
            return True
        return slot_use[cls] < capacity[cls]

    index = 0
    while 0 <= index < count:
        cls = classes[index]
        if cycles[index] < 0:
            earliest = 0
            for pred, latency in preds[index]:
                candidate = cycles[pred] + latency
                if candidate > earliest:
                    earliest = candidate
            choice[index] = max(choice[index], earliest)
        placed = False
        cycle = choice[index]
        while cycle <= latest[index]:
            if not budget.step():
                raise _Exhausted()
            if fits(cls, cycle):
                cycles[index] = cycle
                used[cycle][cls] += 1
                choice[index] = cycle + 1  # resume point on backtrack
                placed = True
                break
            cycle += 1
        if placed:
            index += 1
            continue
        # Window exhausted: backtrack to the previous node.
        choice[index] = 0
        index -= 1
        if index >= 0:
            used[cycles[index]][classes[index]] -= 1
            cycles[index] = -1
    if index < 0:
        return None
    return cycles


def _verify(problem: ScheduleProblem, cycles: Sequence[int],
            horizon: int) -> None:
    """Assert a SAT assignment actually satisfies every constraint."""
    capacity = [problem.capacity(cls) for cls in (0, 1, 2)]
    used = [[0, 0, 0] for _ in range(horizon)]
    for index, cycle in enumerate(cycles):
        assert 0 <= cycle < horizon, "cycle outside horizon"
        for pred, latency in problem.preds[index]:
            assert cycle >= cycles[pred] + latency, "precedence violated"
        used[cycle][problem.classes[index]] += 1
    for cycle_use in used:
        if problem.issue.sequential:
            assert sum(cycle_use) <= 1, "sequential capacity violated"
        else:
            assert cycle_use[0] <= capacity[0], "mem capacity violated"
            assert cycle_use[1] <= capacity[1], "alu capacity violated"


def _words_from_cycles(cycles: Sequence[int], horizon: int) -> List[List[int]]:
    """Issue words from a cycle assignment, program order within a word.

    Ascending index order inside each word keeps same-cycle memory
    accesses in program order when the engine replays them (write-buffer
    and cache state see the sequence the functional trace recorded).
    """
    words: List[List[int]] = [[] for _ in range(horizon)]
    for index, cycle in enumerate(cycles):
        words[cycle].append(index)
    return words


def solve_block(block: BasicBlock, issue: IssueModel, memory: MemoryConfig,
                budget_steps: int = DEFAULT_BLOCK_BUDGET) -> BlockSolution:
    """Optimally schedule one block, certified, budget-bounded.

    The list schedule seeds the upper bound, so the returned schedule is
    *never* worse than the list scheduler's; on every block the search
    closes, ``makespan == lower_bound`` (the acceptance certificate).
    A budget exhaustion falls back to the list schedule and reports the
    highest bound proven before the meter ran out.
    """
    listed = schedule_block(block, issue, memory)
    nodes = list(block.nodes())
    problem = ScheduleProblem(nodes, issue, memory)
    upper = len(listed.words)
    bound = problem.lower_bound()
    budget = Budget(budget_steps)

    best_cycles: Optional[List[int]] = None
    best_horizon = upper
    closed = False
    horizon = bound
    while horizon < upper:
        try:
            cycles = _decide(problem, horizon, budget)
        except _Exhausted:
            break
        if cycles is not None:
            _verify(problem, cycles, horizon)
            best_cycles = cycles
            best_horizon = horizon
            closed = True
            break
        bound = horizon + 1  # UNSAT proof: no schedule this short exists
        horizon += 1
    if not closed and bound == upper:
        closed = True  # every shorter makespan refuted: the list won

    if best_cycles is not None:
        words = _words_from_cycles(best_cycles, best_horizon)
        schedule = ScheduledBlock(
            listed.label, words, listed.mem_rank, listed.node_count
        )
        makespan = best_horizon
    else:
        schedule = listed
        makespan = upper
    return BlockSolution(
        schedule=schedule,
        list_makespan=upper,
        makespan=makespan,
        lower_bound=bound,
        closed=closed,
        steps=budget.spent,
    )
