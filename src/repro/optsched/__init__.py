"""Optimal static scheduling: exact block schedules + modulo pipelining.

The subsystem formulates per-block node scheduling as a constraint
problem (:mod:`.model`), solves it exactly with a budgeted, fully
deterministic branch-and-bound search (:mod:`.solver`), modulo-schedules
innermost single-block loops (:mod:`.modulo`), and memoizes solved
blocks content-addressed on disk (:mod:`.store`).

Entry points:

* :func:`optimal_schedule_program` -- drop-in replacement for
  :func:`repro.sched.schedule_program` used by the static engine when a
  machine configuration carries ``optimal_schedule=True``;
* :func:`analyze_program` -- the full per-block/per-loop study behind
  the ``schedule`` CLI verb and the EXPERIMENTS gap table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..machine.config import IssueModel, MemoryConfig
from ..program.program import Program
from ..sched.list_scheduler import ScheduledBlock
from ..telemetry.collector import Collector, NULL_COLLECTOR
from .model import ScheduleProblem, block_signature, slot_class
from .modulo import (
    DEFAULT_LOOP_BUDGET,
    LoopPipeline,
    carried_edges,
    is_innermost_loop,
    pipeline_loop,
    pipeline_program,
)
from .solver import (
    DEFAULT_BLOCK_BUDGET,
    BlockSolution,
    solve_block,
)
from .store import SCHEDULE_STORE_VERSION, ScheduleStore, schedule_key

__all__ = [
    "BlockSolution",
    "DEFAULT_BLOCK_BUDGET",
    "DEFAULT_LOOP_BUDGET",
    "LoopPipeline",
    "ProgramAnalysis",
    "SCHEDULE_STORE_VERSION",
    "ScheduleProblem",
    "ScheduleStore",
    "analyze_program",
    "block_signature",
    "carried_edges",
    "is_innermost_loop",
    "optimal_schedule_program",
    "pipeline_loop",
    "pipeline_program",
    "schedule_key",
    "slot_class",
    "solve_block",
]


def _count_block(collector: Collector, list_makespan: int, makespan: int,
                 lower_bound: int, closed: bool, memo_hit: bool) -> None:
    """Fold one solved block into the ``sched.*`` telemetry counters."""
    collector.count("sched.blocks")
    collector.count("sched.list_words", list_makespan)
    collector.count("sched.optimal_words", makespan)
    collector.count("sched.lower_bound_words", lower_bound)
    collector.count("sched.gap_cycles", list_makespan - makespan)
    if closed:
        collector.count("sched.closed")
    else:
        collector.count("sched.fallback")
    if memo_hit:
        collector.count("sched.memo_hits")


def optimal_schedule_program(
    program: Program,
    issue: IssueModel,
    memory: MemoryConfig,
    collector: Collector = NULL_COLLECTOR,
    store: Optional[ScheduleStore] = None,
    budget_steps: int = DEFAULT_BLOCK_BUDGET,
) -> Dict[str, ScheduledBlock]:
    """Exactly schedule every block of a program (memoized, certified).

    Returns the same shape as :func:`repro.sched.schedule_program`, so
    the static engine consumes the result unchanged.  Solved blocks are
    memoized through ``store`` (pass None to use the default artifact
    root); telemetry lands under the ``sched.*`` counter prefix.
    """
    if store is None:
        store = ScheduleStore()
    schedules: Dict[str, ScheduledBlock] = {}
    for block in program:
        nodes = list(block.nodes())
        key = schedule_key(nodes, issue, memory)
        entry = store.load(key)
        if entry is not None:
            mem_rank = {
                index: rank for rank, index in enumerate(
                    i for i, node in enumerate(nodes) if node.is_memory
                )
            }
            schedules[block.label] = ScheduledBlock(
                block.label,
                [list(word) for word in entry["words"]],
                mem_rank,
                len(nodes),
            )
            _count_block(
                collector, entry["list_makespan"], entry["makespan"],
                entry["lower_bound"], bool(entry["closed"]), memo_hit=True,
            )
            continue
        solution = solve_block(block, issue, memory, budget_steps=budget_steps)
        store.save(
            key,
            solution.schedule.words,
            solution.list_makespan,
            solution.makespan,
            solution.lower_bound,
            solution.closed,
            solution.steps,
        )
        schedules[block.label] = solution.schedule
        _count_block(
            collector, solution.list_makespan, solution.makespan,
            solution.lower_bound, solution.closed, memo_hit=False,
        )
    return schedules


@dataclass
class ProgramAnalysis:
    """The full schedule-quality study of one program on one machine."""

    #: per-block exact solutions, in program block order.
    blocks: List[BlockSolution]
    #: per-innermost-loop modulo-scheduling verdicts.
    loops: List[LoopPipeline]

    @property
    def list_words(self) -> int:
        return sum(b.list_makespan for b in self.blocks)

    @property
    def optimal_words(self) -> int:
        return sum(b.makespan for b in self.blocks)

    @property
    def lower_bound_words(self) -> int:
        return sum(b.lower_bound for b in self.blocks)

    @property
    def closed_blocks(self) -> int:
        return sum(1 for b in self.blocks if b.closed)

    @property
    def gap_percent(self) -> float:
        """Static list-vs-optimal makespan gap over the whole program."""
        if self.list_words == 0:
            return 0.0
        return 100.0 * (self.list_words - self.optimal_words) / self.list_words


def analyze_program(
    program: Program,
    issue: IssueModel,
    memory: MemoryConfig,
    block_budget: int = DEFAULT_BLOCK_BUDGET,
    loop_budget: int = DEFAULT_LOOP_BUDGET,
) -> ProgramAnalysis:
    """Solve every block exactly and modulo-schedule every innermost loop."""
    blocks = [
        solve_block(block, issue, memory, budget_steps=block_budget)
        for block in program
    ]
    loops = pipeline_program(program, issue, memory, budget_steps=loop_budget)
    return ProgramAnalysis(blocks=blocks, loops=loops)
