"""Abstract syntax tree for Mini-C.

Nodes are plain classes with ``__slots__``; the semantic analyser
annotates expressions with a ``ctype`` attribute in place.
"""

from __future__ import annotations

from typing import List, Optional

from .ctypes import CType


class AstNode:
    __slots__ = ("line", "column")

    def __init__(self, line: int = 0, column: int = 0):
        self.line = line
        self.column = column


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr(AstNode):
    __slots__ = ("ctype",)

    def __init__(self, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.ctype: Optional[CType] = None


class IntLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.value = value


class StringLiteral(Expr):
    __slots__ = ("value", "symbol")

    def __init__(self, value: str, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.value = value
        self.symbol: Optional[str] = None  # assigned by sema


class Identifier(Expr):
    __slots__ = ("name", "symbol")

    def __init__(self, name: str, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.name = name
        self.symbol = None  # resolved by sema to a Symbol


class Unary(Expr):
    """Prefix unary: ``-``, ``~``, ``!``, ``*``, ``&``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.op = op
        self.left = left
        self.right = right


class Assign(Expr):
    """``target op= value``; ``op`` is ``"="`` or a compound like ``"+="``."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Expr, value: Expr, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.op = op
        self.target = target
        self.value = value


class Conditional(Expr):
    """The ternary operator ``cond ? then_value : else_value``."""

    __slots__ = ("cond", "then_value", "else_value")

    def __init__(self, cond: Expr, then_value: Expr, else_value: Expr,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.cond = cond
        self.then_value = then_value
        self.else_value = else_value


class IncDec(Expr):
    """``++``/``--`` in prefix or postfix position."""

    __slots__ = ("op", "target", "is_prefix")

    def __init__(self, op: str, target: Expr, is_prefix: bool, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.op = op
        self.target = target
        self.is_prefix = is_prefix


class Member(Expr):
    """Member access: ``object.name`` or ``pointer->name``."""

    __slots__ = ("object", "name", "is_arrow")

    def __init__(self, object_: Expr, name: str, is_arrow: bool,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.object = object_
        self.name = name
        self.is_arrow = is_arrow


class Index(Expr):
    __slots__ = ("array", "index")

    def __init__(self, array: Expr, index: Expr, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.array = array
        self.index = index


class Call(Expr):
    """A call: direct (``name`` set, ``func`` resolved by sema) or
    indirect through a function-pointer value (``callee`` set by the
    parser for postfix calls, or by sema when ``name`` resolves to a
    function-pointer variable)."""

    __slots__ = ("name", "args", "func", "callee")

    def __init__(self, name: str, args: List[Expr], line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.name = name
        self.args = args
        self.func = None  # resolved by sema to a FunctionInfo (direct calls)
        self.callee: Optional[Expr] = None  # callee expression (indirect calls)


class SizeOf(Expr):
    __slots__ = ("target_type",)

    def __init__(self, target_type: CType, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.target_type = target_type


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Stmt(AstNode):
    __slots__ = ()


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.expr = expr


class VarDecl(Stmt):
    """Declaration of one variable (local or global)."""

    __slots__ = ("name", "ctype", "init", "symbol")

    def __init__(
        self,
        name: str,
        ctype: CType,
        init,  # Expr, (possibly nested) list of Expr (array), or None
        line: int = 0,
        column: int = 0,
    ):
        super().__init__(line, column)
        self.name = name
        self.ctype = ctype
        self.init = init
        self.symbol = None  # assigned by sema


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: List[Stmt], line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.statements = statements


class If(Stmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(
        self,
        cond: Expr,
        then_body: Stmt,
        else_body: Optional[Stmt],
        line: int = 0,
        column: int = 0,
    ):
        super().__init__(line, column)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.cond = cond
        self.body = body


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional[Expr],
        step: Optional[Expr],
        body: Stmt,
        line: int = 0,
        column: int = 0,
    ):
        super().__init__(line, column)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class SwitchCase(AstNode):
    """One ``case`` arm: a constant value (None for ``default``) and its
    statements (which may fall through to the next arm)."""

    __slots__ = ("value", "body")

    def __init__(self, value: Optional[int], body: List["Stmt"],
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.value = value
        self.body = body


class Switch(Stmt):
    __slots__ = ("subject", "cases")

    def __init__(self, subject: Expr, cases: List[SwitchCase],
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.subject = subject
        self.cases = cases


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
class Param(AstNode):
    __slots__ = ("name", "ctype", "symbol")

    def __init__(self, name: str, ctype: CType, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.name = name
        self.ctype = ctype
        self.symbol = None


class FunctionDecl(AstNode):
    __slots__ = ("name", "return_type", "params", "body")

    def __init__(
        self,
        name: str,
        return_type: CType,
        params: List[Param],
        body: Optional[Block],
        line: int = 0,
        column: int = 0,
    ):
        super().__init__(line, column)
        self.name = name
        self.return_type = return_type
        self.params = params
        self.body = body


class StructDecl(AstNode):
    """A top-level ``struct Tag { ... };`` declaration (layout resolved
    at parse time; kept in the AST for tooling and tests)."""

    __slots__ = ("tag", "layout")

    def __init__(self, tag: str, layout, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.tag = tag
        self.layout = layout


class TranslationUnit(AstNode):
    __slots__ = ("globals", "functions", "structs")

    def __init__(
        self,
        globals_: List[VarDecl],
        functions: List[FunctionDecl],
        structs: Optional[List[StructDecl]] = None,
    ):
        super().__init__()
        self.globals = globals_
        self.functions = functions
        self.structs = structs or []
