"""Mini-C front end: the translating loader's language side.

The paper's ``tld`` decompiles VAX object code into the node intermediate
form; our substitute compiles a small C dialect into the same form (see
DESIGN.md for why this preserves the relevant program character).
"""

from .ast_nodes import TranslationUnit
from .codegen import STACK_TOP, generate
from .ctypes import CType
from .errors import CompileError, LexError, ParseError, SemanticError
from .frontend import compile_source
from .lexer import tokenize
from .parser import parse_source
from .sema import analyze

__all__ = [
    "CType",
    "CompileError",
    "LexError",
    "ParseError",
    "STACK_TOP",
    "SemanticError",
    "TranslationUnit",
    "analyze",
    "compile_source",
    "generate",
    "parse_source",
    "tokenize",
]
