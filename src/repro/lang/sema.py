"""Semantic analysis for Mini-C.

Resolves identifiers, checks types (permissively, in the spirit of early
C), marks address-taken locals, interns string literals and verifies
control-flow statement placement.  Expressions are annotated in place with
their computed :class:`~repro.lang.ctypes.CType`.

Function pointers: a defined function's name used as a value denotes a
small integer *function id* (assigned here, in first-use order, starting
at 1).  Codegen lowers indirect calls to a compare-and-branch dispatch
over the signature-compatible targets in :attr:`SemaResult.fp_targets`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import ast_nodes as ast
from .ctypes import CType
from .errors import SemanticError
from .symbols import BUILTINS, FunctionInfo, Scope, ScopeStack, Symbol

_INT = CType.int_()
_MAX_REG_ARGS = 6


class SemaResult:
    """Output of semantic analysis, consumed by the code generator."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = dict(BUILTINS)
        self.global_scope = Scope()
        #: string label -> raw bytes (NUL-terminated)
        self.strings: Dict[str, bytes] = {}
        #: per-function list of all local/param symbols, keyed by name
        self.function_locals: Dict[str, List[Symbol]] = {}
        #: per-function evaluated constant initialisers for globals:
        #: name -> int | bytes | list[int]
        self.global_inits: Dict[str, object] = {}
        #: functions whose address was taken: name -> function id (>= 1),
        #: in first-use order.  Indirect calls can only reach these.
        self.fp_targets: Dict[str, int] = {}


class Analyzer:
    """Semantic analyser over a translation unit.

    Declarations are collected first (so global initialisers and bodies
    may reference any function), then global initialisers are evaluated,
    then bodies are analysed.
    """

    def __init__(self) -> None:
        self.result = SemaResult()
        self._string_counter = 0
        self._loop_depth = 0
        self._break_depth = 0
        self._scope_stack: Optional[ScopeStack] = None
        self._current_function: Optional[ast.FunctionDecl] = None

    # ------------------------------------------------------------------
    def analyze(self, unit: ast.TranslationUnit) -> SemaResult:
        """Analyse ``unit``; raises :class:`SemanticError` on problems."""
        for decl in unit.globals:
            self._declare_global(decl)
        for func in unit.functions:
            self._declare_function(func)
        if "main" not in self.result.functions:
            raise SemanticError("program has no main() function", 1, 1)
        # Initialisers run after the function pass so they may name
        # functions (function-pointer globals hold function ids).
        for decl in unit.globals:
            if decl.init is not None:
                self.result.global_inits[decl.name] = (
                    self._evaluate_global_init(decl)
                )
        for func in unit.functions:
            if func.body is not None:
                self._analyze_function(func)
        return self.result

    @staticmethod
    def _err(message: str, node: ast.AstNode) -> SemanticError:
        """A :class:`SemanticError` carrying the node's source location."""
        return SemanticError(message, node.line, node.column)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _declare_global(self, decl: ast.VarDecl) -> None:
        if decl.ctype.is_void:
            raise self._err(f"variable {decl.name!r} has void type", decl)
        symbol = Symbol(decl.name, decl.ctype, "global")
        symbol.addr_taken = True  # globals always live in memory
        self.result.global_scope.declare(symbol, decl.line, decl.column)
        decl.symbol = symbol

    def _evaluate_global_init(self, decl: ast.VarDecl):
        init = decl.init
        ctype = decl.ctype
        if isinstance(init, list):
            if not ctype.is_array:
                raise self._err(
                    f"brace initialiser on non-array {decl.name!r}", decl
                )
            return self._flatten_array_init(ctype, init, decl)
        if isinstance(init, ast.StringLiteral):
            data = init.value.encode("latin-1") + b"\x00"
            if ctype.is_array and ctype.element.is_char:
                if len(data) > ctype.length:
                    raise self._err(
                        f"string too long for {decl.name!r}", decl
                    )
                return data
            if ctype.is_pointer and ctype.pointee.is_char:
                label = self._intern_string(init)
                return ("string_ref", label)
            raise self._err(
                f"string initialiser on incompatible type for {decl.name!r}",
                decl,
            )
        if ctype.is_array:
            raise self._err(
                f"scalar initialiser on array {decl.name!r}", decl
            )
        return self._const_int(init)

    def _flatten_array_init(self, ctype: CType, init: list,
                            decl: ast.VarDecl) -> List[int]:
        """Flatten a (possibly nested) brace list to row-major scalars.

        Each dimension may be partially initialised; missing trailing
        elements are zero-filled so inner rows keep their layout.
        """
        if len(init) > ctype.length:
            raise self._err(f"too many initialisers for {decl.name!r}", decl)
        if not ctype.element.is_array:
            values: List[int] = []
            for item in init:
                if isinstance(item, list):
                    raise self._err(
                        f"too many braces in initialiser for {decl.name!r}",
                        decl,
                    )
                values.append(self._const_int(item))
            values.extend([0] * (ctype.length - len(values)))
            return values
        flat: List[int] = []
        for item in init:
            if not isinstance(item, list):
                raise self._err(
                    f"initialiser for multi-dimensional array {decl.name!r} "
                    "needs nested braces",
                    decl,
                )
            flat.extend(self._flatten_array_init(ctype.element, item, decl))
        row_scalars = self._scalar_count(ctype.element)
        flat.extend([0] * ((ctype.length - len(init)) * row_scalars))
        return flat

    @staticmethod
    def _scalar_count(ctype: CType) -> int:
        count = 1
        while ctype.is_array:
            count *= ctype.length
            ctype = ctype.element
        return count

    def _const_int(self, expr: ast.Expr) -> int:
        """Evaluate a constant integer expression for a global initialiser."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.Identifier):
            # A function name in a constant initialiser denotes its id
            # (the runtime value of every function pointer).
            info = self.result.functions.get(expr.name)
            if info is not None and not info.is_builtin:
                return self._function_id(info, expr)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_int(expr.operand)
        if isinstance(expr, ast.Unary) and expr.op == "~":
            return ~self._const_int(expr.operand)
        if isinstance(expr, ast.Binary):
            left = self._const_int(expr.left)
            right = self._const_int(expr.right)
            ops = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "|": lambda: left | right,
                "&": lambda: left & right,
                "^": lambda: left ^ right,
                "<<": lambda: left << (right & 31),
                ">>": lambda: left >> (right & 31),
            }
            if expr.op in ops:
                return ops[expr.op]()
        raise self._err(
            "global initialiser must be a constant expression", expr
        )

    def _declare_function(self, func: ast.FunctionDecl) -> None:
        if func.name in BUILTINS:
            raise self._err(
                f"{func.name!r} is a built-in function", func
            )
        if len(func.params) > _MAX_REG_ARGS:
            raise self._err(
                f"function {func.name!r} has more than {_MAX_REG_ARGS} parameters",
                func,
            )
        if func.return_type.is_struct:
            raise self._err(
                f"function {func.name!r} returns a struct by value; "
                "return a pointer instead",
                func,
            )
        for param in func.params:
            if param.ctype.is_struct:
                raise self._err(
                    f"parameter {param.name!r} is a struct by value; "
                    "pass a pointer instead",
                    param,
                )
        param_types = tuple(p.ctype for p in func.params)
        existing = self.result.functions.get(func.name)
        if existing is not None:
            if existing.defined and func.body is not None:
                raise self._err(f"redefinition of {func.name!r}()", func)
            if (
                existing.param_types != param_types
                or existing.return_type != func.return_type
            ):
                raise self._err(
                    f"conflicting declaration of {func.name!r}()", func
                )
            existing.defined = existing.defined or func.body is not None
            return
        self.result.functions[func.name] = FunctionInfo(
            func.name, func.return_type, param_types, func.body is not None
        )

    # ------------------------------------------------------------------
    # Function bodies
    # ------------------------------------------------------------------
    def _analyze_function(self, func: ast.FunctionDecl) -> None:
        self._current_function = func
        self._scope_stack = ScopeStack(self.result.global_scope)
        self._scope_stack.push()
        for param in func.params:
            if param.ctype.is_void:
                raise self._err(
                    f"parameter {param.name!r} has void type", param
                )
            param.symbol = self._scope_stack.declare_local(
                param.name, param.ctype, "param", param.line, param.column
            )
        self._analyze_block(func.body)
        self._scope_stack.pop()
        self.result.function_locals[func.name] = self._scope_stack.all_locals
        self._scope_stack = None
        self._current_function = None

    def _analyze_block(self, block: ast.Block) -> None:
        self._scope_stack.push()
        for stmt in block.statements:
            self._analyze_statement(stmt)
        self._scope_stack.pop()

    def _analyze_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._analyze_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._analyze_local_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._analyze_expression(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._analyze_expression(stmt.cond), stmt.cond)
            self._analyze_statement(stmt.then_body)
            if stmt.else_body is not None:
                self._analyze_statement(stmt.else_body)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._require_scalar(self._analyze_expression(stmt.cond), stmt.cond)
            self._loop_depth += 1
            self._break_depth += 1
            self._analyze_statement(stmt.body)
            self._loop_depth -= 1
            self._break_depth -= 1
        elif isinstance(stmt, ast.For):
            self._scope_stack.push()
            if stmt.init is not None:
                self._analyze_statement(stmt.init)
            if stmt.cond is not None:
                self._require_scalar(self._analyze_expression(stmt.cond), stmt.cond)
            if stmt.step is not None:
                self._analyze_expression(stmt.step)
            self._loop_depth += 1
            self._break_depth += 1
            self._analyze_statement(stmt.body)
            self._loop_depth -= 1
            self._break_depth -= 1
            self._scope_stack.pop()
        elif isinstance(stmt, ast.Switch):
            self._require_arith(self._analyze_expression(stmt.subject), stmt.subject)
            seen_values = set()
            seen_default = False
            for case in stmt.cases:
                if case.value is None:
                    if seen_default:
                        raise self._err(
                            "multiple default labels in switch", case
                        )
                    seen_default = True
                elif case.value in seen_values:
                    raise self._err(
                        f"duplicate case label {case.value}", case
                    )
                else:
                    seen_values.add(case.value)
            # `break` leaves the switch; `continue` still needs a loop.
            self._break_depth += 1
            self._scope_stack.push()
            for case in stmt.cases:
                for inner in case.body:
                    self._analyze_statement(inner)
            self._scope_stack.pop()
            self._break_depth -= 1
        elif isinstance(stmt, ast.Return):
            ret_type = self._current_function.return_type
            if stmt.value is not None:
                if ret_type.is_void:
                    raise self._err(
                        "void function returns a value", stmt
                    )
                self._require_scalar(
                    self._analyze_expression(stmt.value), stmt.value
                )
            elif not ret_type.is_void:
                raise self._err(
                    "non-void function returns without a value", stmt
                )
        elif isinstance(stmt, ast.Break):
            if self._break_depth == 0:
                raise self._err("break outside a loop or switch", stmt)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise self._err("continue outside a loop", stmt)
        else:  # pragma: no cover - parser produces no other kinds
            raise self._err(f"unhandled statement {type(stmt).__name__}", stmt)

    def _analyze_local_decl(self, decl: ast.VarDecl) -> None:
        if decl.ctype.is_void:
            raise self._err(f"variable {decl.name!r} has void type", decl)
        symbol = self._scope_stack.declare_local(
            decl.name, decl.ctype, "local", decl.line, decl.column
        )
        decl.symbol = symbol
        if decl.init is not None:
            if isinstance(decl.init, (list, ast.StringLiteral)) and decl.ctype.is_array:
                raise self._err(
                    "local array initialisers are not supported; assign elementwise",
                    decl,
                )
            if isinstance(decl.init, list):
                raise self._err(
                    "brace initialiser on non-array local", decl
                )
            self._require_scalar(self._analyze_expression(decl.init), decl.init)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _analyze_expression(self, expr: ast.Expr) -> CType:
        ctype = self._compute_type(expr)
        expr.ctype = ctype
        return ctype

    def _compute_type(self, expr: ast.Expr) -> CType:
        if isinstance(expr, ast.IntLiteral):
            return _INT
        if isinstance(expr, ast.StringLiteral):
            expr.symbol = self._intern_string(expr)
            return CType.pointer(CType.char())
        if isinstance(expr, ast.Identifier):
            return self._analyze_identifier(expr)
        if isinstance(expr, ast.SizeOf):
            return _INT
        if isinstance(expr, ast.Call):
            return self._analyze_call(expr)
        if isinstance(expr, ast.Unary):
            return self._analyze_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._analyze_binary(expr)
        if isinstance(expr, ast.Conditional):
            self._require_scalar(self._analyze_expression(expr.cond), expr.cond)
            then_type = self._analyze_expression(expr.then_value).decay()
            else_type = self._analyze_expression(expr.else_value).decay()
            self._require_scalar(then_type, expr.then_value)
            self._require_scalar(else_type, expr.else_value)
            if then_type.is_pointer:
                return then_type
            if else_type.is_pointer:
                return else_type
            return _INT
        if isinstance(expr, ast.Assign):
            return self._analyze_assign(expr)
        if isinstance(expr, ast.IncDec):
            target_type = self._analyze_expression(expr.target)
            self._require_lvalue(expr.target)
            if not target_type.is_scalar:
                raise self._err("++/-- requires a scalar operand", expr)
            if target_type.is_function_pointer:
                raise self._err("++/-- on a function pointer", expr)
            return target_type
        if isinstance(expr, ast.Member):
            return self._analyze_member(expr)
        if isinstance(expr, ast.Index):
            base = self._analyze_expression(expr.array)
            self._require_arith(self._analyze_expression(expr.index), expr.index)
            if base.is_array:
                return base.element
            if base.is_pointer:
                if base.pointee.is_void:
                    raise self._err("cannot index a void pointer", expr)
                if base.pointee.is_function:
                    raise self._err("cannot index a function pointer", expr)
                return base.pointee
            raise self._err("indexing a non-pointer value", expr)
        raise self._err(
            f"unhandled expression {type(expr).__name__}", expr
        )  # pragma: no cover

    def _analyze_identifier(self, expr: ast.Identifier) -> CType:
        symbol = self._scope_stack.lookup(expr.name)
        if symbol is not None:
            expr.symbol = symbol
            return symbol.ctype
        # A function name used as a value is a function pointer.
        info = self.result.functions.get(expr.name)
        if info is not None:
            if info.is_builtin:
                raise self._err(
                    f"built-in {expr.name!r} cannot be used as a value", expr
                )
            self._function_id(info, expr)
            expr.symbol = info
            return CType.pointer(
                CType.function(info.return_type, tuple(info.param_types))
            )
        raise self._err(f"undefined identifier {expr.name!r}", expr)

    def _function_id(self, info: FunctionInfo, node: ast.AstNode) -> int:
        """Register (and return) the function id backing ``&info``."""
        if not info.defined:
            raise self._err(
                f"function {info.name!r} used as a value but never defined",
                node,
            )
        if info.name not in self.result.fp_targets:
            self.result.fp_targets[info.name] = len(self.result.fp_targets) + 1
        return self.result.fp_targets[info.name]

    def _analyze_member(self, expr: ast.Member) -> CType:
        object_type = self._analyze_expression(expr.object)
        if expr.is_arrow:
            decayed = object_type.decay()
            if not decayed.is_pointer or not decayed.pointee.is_struct:
                raise self._err(
                    "'->' requires a pointer to a struct", expr
                )
            layout = decayed.pointee.struct
        else:
            if not object_type.is_struct:
                raise self._err("'.' requires a struct value", expr)
            layout = object_type.struct
        entry = layout.member(expr.name)
        if entry is None:
            raise self._err(
                f"struct {layout.tag} has no member {expr.name!r}", expr
            )
        return entry[1]

    def _analyze_call(self, expr: ast.Call) -> CType:
        if expr.callee is None:
            # A named call: a visible variable of function-pointer type
            # shadows any function of the same name (C scoping).
            symbol = self._scope_stack.lookup(expr.name)
            if symbol is not None:
                if symbol.ctype.decay().is_function_pointer:
                    ident = ast.Identifier(expr.name, expr.line, expr.column)
                    self._analyze_expression(ident)
                    expr.callee = ident
                else:
                    raise self._err(
                        f"called object {expr.name!r} is not a function",
                        expr,
                    )
        if expr.callee is not None:
            return self._analyze_indirect_call(expr)
        info = self.result.functions.get(expr.name)
        if info is None:
            raise self._err(f"call to undefined function {expr.name!r}", expr)
        expr.func = info
        if len(expr.args) != len(info.param_types):
            raise self._err(
                f"{expr.name}() expects {len(info.param_types)} arguments, "
                f"got {len(expr.args)}",
                expr,
            )
        for arg in expr.args:
            arg_type = self._analyze_expression(arg)
            if not arg_type.decay().is_scalar:
                raise self._err(
                    f"argument to {expr.name}() is not a scalar", arg
                )
        return info.return_type

    def _analyze_indirect_call(self, expr: ast.Call) -> CType:
        callee_type = expr.callee.ctype
        if callee_type is None:
            callee_type = self._analyze_expression(expr.callee)
        decayed = callee_type.decay()
        if decayed.is_function_pointer:
            fn = decayed.pointee
        elif callee_type.is_function:
            fn = callee_type
        else:
            raise self._err("calling a non-function value", expr.callee)
        if len(expr.args) != len(fn.params):
            raise self._err(
                f"function-pointer call expects {len(fn.params)} arguments, "
                f"got {len(expr.args)}",
                expr,
            )
        for arg in expr.args:
            arg_type = self._analyze_expression(arg)
            if not arg_type.decay().is_scalar:
                raise self._err(
                    "argument to function-pointer call is not a scalar", arg
                )
        expr.func = None
        return fn.ret

    def _analyze_unary(self, expr: ast.Unary) -> CType:
        operand_type = self._analyze_expression(expr.operand)
        op = expr.op
        if op in ("-", "~"):
            self._require_arith(operand_type, expr.operand)
            return _INT
        if op == "!":
            self._require_scalar(operand_type, expr.operand)
            return _INT
        if op == "*":
            decayed = operand_type.decay()
            if not decayed.is_pointer:
                raise self._err("dereference of a non-pointer", expr)
            if decayed.pointee.is_void:
                raise self._err("dereference of a void pointer", expr)
            return decayed.pointee
        if op == "&":
            if (
                isinstance(expr.operand, ast.Identifier)
                and isinstance(expr.operand.symbol, FunctionInfo)
            ):
                # ``&f`` and ``f`` are the same function-pointer value.
                return operand_type
            self._require_lvalue(expr.operand)
            self._mark_addr_taken(expr.operand)
            return CType.pointer(operand_type.decay() if operand_type.is_array else operand_type)
        raise self._err(f"unhandled unary operator {op!r}", expr)

    def _analyze_binary(self, expr: ast.Binary) -> CType:
        left = self._analyze_expression(expr.left).decay()
        right = self._analyze_expression(expr.right).decay()
        op = expr.op
        if op in ("&&", "||"):
            self._require_scalar(left, expr.left)
            self._require_scalar(right, expr.right)
            return _INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            self._require_scalar(left, expr.left)
            self._require_scalar(right, expr.right)
            return _INT
        if op in ("+", "-"):
            if left.is_function_pointer or right.is_function_pointer:
                raise self._err("arithmetic on a function pointer", expr)
            if left.is_pointer and right.is_arith:
                return left
            if op == "+" and left.is_arith and right.is_pointer:
                return right
            if op == "-" and left.is_pointer and right.is_pointer:
                return _INT
            self._require_arith(left, expr.left)
            self._require_arith(right, expr.right)
            return _INT
        # Remaining operators are integer-only.
        self._require_arith(left, expr.left)
        self._require_arith(right, expr.right)
        return _INT

    def _analyze_assign(self, expr: ast.Assign) -> CType:
        target_type = self._analyze_expression(expr.target)
        self._require_lvalue(expr.target)
        if target_type.is_array:
            raise self._err("cannot assign to an array", expr)
        if target_type.is_struct:
            raise self._err(
                "cannot assign whole structs; copy members or use pointers",
                expr,
            )
        if target_type.is_function:
            raise self._err("cannot assign to a function", expr)
        value_type = self._analyze_expression(expr.value).decay()
        self._require_scalar(value_type, expr.value)
        if expr.op != "=":
            if target_type.is_function_pointer:
                raise self._err(
                    "compound assignment on a function pointer", expr
                )
            base_op = expr.op[:-1]
            if base_op in ("+", "-"):
                if target_type.is_pointer and not value_type.is_arith:
                    raise self._err(
                        "pointer compound assignment needs an integer", expr
                    )
                if target_type.is_arith:
                    self._require_arith(value_type, expr.value)
            else:
                self._require_arith(target_type, expr.target)
                self._require_arith(value_type, expr.value)
        return target_type

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _intern_string(self, literal: ast.StringLiteral) -> str:
        data = literal.value.encode("latin-1") + b"\x00"
        for label, existing in self.result.strings.items():
            if existing == data:
                literal.symbol = label
                return label
        self._string_counter += 1
        label = f"$str{self._string_counter}"
        self.result.strings[label] = data
        literal.symbol = label
        return label

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Identifier):
            if isinstance(expr.symbol, FunctionInfo):
                raise self._err(
                    f"cannot assign to function {expr.name!r}", expr
                )
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        if isinstance(expr, ast.Index):
            return
        if isinstance(expr, ast.Member):
            return
        raise self._err("expression is not assignable", expr)

    def _mark_addr_taken(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Identifier) and isinstance(expr.symbol, Symbol):
            expr.symbol.addr_taken = True
        elif isinstance(expr, ast.Member) and not expr.is_arrow:
            self._mark_addr_taken(expr.object)

    def _require_arith(self, ctype: CType, expr: ast.Expr) -> None:
        if not ctype.decay().is_arith:
            raise self._err("expected an arithmetic value", expr)

    def _require_scalar(self, ctype: CType, expr: ast.Expr) -> None:
        if not ctype.decay().is_scalar:
            raise self._err("expected a scalar value", expr)


def analyze(unit: ast.TranslationUnit) -> SemaResult:
    """Run semantic analysis over a parsed translation unit."""
    return Analyzer().analyze(unit)
