"""Hand-written lexer for Mini-C."""

from __future__ import annotations

from typing import List

from .errors import LexError
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenType

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "b": 8,
    "f": 12,
}


class Lexer:
    """Turns Mini-C source text into a token list."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def tokenize(self) -> List[Token]:
        """Lex the whole input, ending with an EOF token."""
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenType.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_column = self.line, self.column
                self._advance(2)
                while self.pos < len(self.source):
                    if self.source[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated comment", start_line, start_column)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self.source[self.pos]

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start:self.pos]
            kind = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
            return Token(kind, text, line, column)

        if ch.isdigit():
            start = self.pos
            if ch == "0" and self._peek(1) in ("x", "X"):
                self._advance(2)
                # note: _peek() is "" at EOF, and "" is `in` any string
                while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                    self._advance()
                value = int(self.source[start:self.pos], 16)
            else:
                while self._peek().isdigit():
                    self._advance()
                value = int(self.source[start:self.pos])
            return Token(TokenType.NUMBER, value, line, column)

        if ch == "'":
            self._advance()
            value = self._read_char_escape("'")
            if self._peek() != "'":
                raise self._error("unterminated character literal")
            self._advance()
            return Token(TokenType.CHAR, value, line, column)

        if ch == '"':
            self._advance()
            chars: List[int] = []
            while self._peek() != '"':
                if not self._peek():
                    raise self._error("unterminated string literal")
                chars.append(self._read_char_escape('"'))
            self._advance()
            text = "".join(chr(c) for c in chars)
            return Token(TokenType.STRING, text, line, column)

        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenType.PUNCT, punct, line, column)

        raise self._error(f"unexpected character {ch!r}")

    def _read_char_escape(self, quote: str) -> int:
        ch = self._peek()
        if ch == "\\":
            self._advance()
            esc = self._peek()
            if esc not in _ESCAPES:
                raise self._error(f"unknown escape sequence \\{esc}")
            self._advance()
            return _ESCAPES[esc]
        if not ch or ch == "\n":
            raise self._error(f"unterminated {quote} literal")
        self._advance()
        return ord(ch)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into tokens."""
    return Lexer(source).tokenize()
