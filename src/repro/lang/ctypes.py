"""Mini-C's small type system: void, char, int, pointers, arrays,
structs, and function types (only reachable through pointers)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class StructLayout:
    """A struct tag's members with computed offsets.

    Built by :meth:`CType.struct_` from an ordered member list; natural
    alignment, with the total size rounded up to the struct's alignment.
    """

    __slots__ = ("tag", "members", "size_bytes", "align_bytes")

    def __init__(self, tag: str,
                 members: Optional[List[Tuple[str, "CType"]]] = None):
        self.tag = tag
        self.members: Dict[str, Tuple[int, "CType"]] = {}
        self.size_bytes = 0
        self.align_bytes = 0
        if members is not None:
            self.fill(members)

    @property
    def is_complete(self) -> bool:
        """False while the tag is declared but its body not yet laid out
        (the window in which only pointers to it may be formed)."""
        return self.align_bytes > 0

    def fill(self, members: List[Tuple[str, "CType"]]) -> None:
        """Lay out the members (once); enables self-referential pointers."""
        if self.is_complete:
            raise ValueError(f"struct {self.tag} laid out twice")
        offset = 0
        max_align = 1
        for name, ctype in members:
            if name in self.members:
                raise ValueError(f"duplicate member {name!r} in struct {self.tag}")
            align = ctype.align()
            max_align = max(max_align, align)
            offset = (offset + align - 1) // align * align
            self.members[name] = (offset, ctype)
            offset += ctype.size()
        self.align_bytes = max_align
        self.size_bytes = (offset + max_align - 1) // max_align * max_align
        if self.size_bytes == 0:
            self.size_bytes = max_align

    def member(self, name: str) -> Optional[Tuple[int, "CType"]]:
        """(offset, type) of a member, or None."""
        return self.members.get(name)


class CType:
    """An immutable Mini-C type.

    ``base`` is one of ``"void"``, ``"char"``, ``"int"``; ``pointee`` is
    set for pointer types, ``element``/``length`` for array types,
    ``struct`` for struct types, and ``ret``/``params`` for function
    types (which carry no storage themselves -- values of them exist
    only behind pointers).
    """

    __slots__ = ("base", "pointee", "element", "length", "struct", "ret", "params")

    def __init__(
        self,
        base: Optional[str] = None,
        pointee: Optional["CType"] = None,
        element: Optional["CType"] = None,
        length: int = 0,
        struct: Optional[StructLayout] = None,
        ret: Optional["CType"] = None,
        params: Optional[Tuple["CType", ...]] = None,
    ):
        self.base = base
        self.pointee = pointee
        self.element = element
        self.length = length
        self.struct = struct
        self.ret = ret
        self.params = params

    # Constructors -----------------------------------------------------
    @staticmethod
    def void() -> "CType":
        return _VOID

    @staticmethod
    def int_() -> "CType":
        return _INT

    @staticmethod
    def char() -> "CType":
        return _CHAR

    @staticmethod
    def pointer(pointee: "CType") -> "CType":
        return CType(pointee=pointee)

    @staticmethod
    def array(element: "CType", length: int) -> "CType":
        if length <= 0:
            raise ValueError("array length must be positive")
        return CType(element=element, length=length)

    @staticmethod
    def struct_(layout: StructLayout) -> "CType":
        return CType(struct=layout)

    @staticmethod
    def function(ret: "CType", params: Tuple["CType", ...]) -> "CType":
        """A function signature type; only pointers to it have storage."""
        return CType(ret=ret, params=tuple(params))

    # Predicates -------------------------------------------------------
    @property
    def is_void(self) -> bool:
        return self.base == "void"

    @property
    def is_int(self) -> bool:
        return self.base == "int"

    @property
    def is_char(self) -> bool:
        return self.base == "char"

    @property
    def is_arith(self) -> bool:
        return self.base in ("int", "char")

    @property
    def is_pointer(self) -> bool:
        return self.pointee is not None

    @property
    def is_array(self) -> bool:
        return self.element is not None

    @property
    def is_struct(self) -> bool:
        return self.struct is not None

    @property
    def is_function(self) -> bool:
        return self.ret is not None

    @property
    def is_function_pointer(self) -> bool:
        return self.is_pointer and self.pointee.is_function

    @property
    def is_scalar(self) -> bool:
        """True for values that fit in one register."""
        return self.is_arith or self.is_pointer

    # Layout -----------------------------------------------------------
    def size(self) -> int:
        """Size in bytes."""
        if self.is_char:
            return 1
        if self.is_int or self.is_pointer:
            return 4
        if self.is_array:
            return self.element.size() * self.length
        if self.is_struct:
            if not self.struct.is_complete:
                raise ValueError(f"struct {self.struct.tag} is incomplete")
            return self.struct.size_bytes
        raise ValueError(f"type {self} has no size")

    def align(self) -> int:
        """Required alignment in bytes."""
        if self.is_char:
            return 1
        if self.is_array:
            return self.element.align()
        if self.is_struct:
            if not self.struct.is_complete:
                raise ValueError(f"struct {self.struct.tag} is incomplete")
            return self.struct.align_bytes
        return 4

    def decay(self) -> "CType":
        """Array-to-pointer decay; other types unchanged."""
        if self.is_array:
            return CType.pointer(self.element)
        return self

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CType):
            return NotImplemented
        if self.is_pointer and other.is_pointer:
            return self.pointee == other.pointee
        if self.is_array and other.is_array:
            return self.element == other.element and self.length == other.length
        if self.is_function or other.is_function:
            if not (self.is_function and other.is_function):
                return False
            return self.ret == other.ret and self.params == other.params
        if self.is_struct or other.is_struct:
            return self.struct is other.struct  # struct types are nominal
        return self.base == other.base and not (
            self.is_pointer or other.is_pointer or self.is_array or other.is_array
        )

    def __hash__(self) -> int:
        if self.is_pointer:
            return hash(("ptr", self.pointee))
        if self.is_array:
            return hash(("arr", self.element, self.length))
        if self.is_struct:
            return hash(("struct", id(self.struct)))
        if self.is_function:
            return hash(("fn", self.ret, self.params))
        return hash(self.base)

    def __repr__(self) -> str:
        if self.is_pointer:
            return f"{self.pointee!r}*"
        if self.is_array:
            return f"{self.element!r}[{self.length}]"
        if self.is_struct:
            return f"struct {self.struct.tag}"
        if self.is_function:
            args = ", ".join(repr(p) for p in self.params)
            return f"{self.ret!r}({args})"
        return self.base or "?"


_VOID = CType(base="void")
_INT = CType(base="int")
_CHAR = CType(base="char")
