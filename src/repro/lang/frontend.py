"""One-call Mini-C compilation driver."""

from __future__ import annotations

from ..opt.pipeline import optimize_program
from ..program.program import Program
from .codegen import generate
from .parser import parse_source
from .sema import analyze


def compile_source(source: str, optimize: bool = True) -> Program:
    """Compile Mini-C source text into an optimised node-IR program.

    Args:
        source: Mini-C translation unit text.
        optimize: run the standard optimisation pipeline (on by default;
            turn off to inspect raw code generation in tests).

    Returns:
        A validated :class:`~repro.program.Program` with entry ``_start``.

    Raises:
        CompileError: on any lexical, syntactic or semantic problem.
    """
    unit = parse_source(source)
    sema = analyze(unit)
    program = generate(unit, sema)
    if optimize:
        program = optimize_program(program)
    return program
