"""Diagnostics for the Mini-C front end."""

from __future__ import annotations


class CompileError(Exception):
    """Base class for all Mini-C compilation failures."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"{line}:{column}: " if line else ""
        super().__init__(location + message)
        self.line = line
        self.column = column


class LexError(CompileError):
    """Malformed lexical input."""


class ParseError(CompileError):
    """Grammar violation."""


class SemanticError(CompileError):
    """Type or scoping violation."""
