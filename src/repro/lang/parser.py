"""Recursive-descent parser for Mini-C."""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .ctypes import CType
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenType

#: Binary operators by precedence level, loosest first.
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class Parser:
    """Parses a token stream into a :class:`~repro.lang.ast_nodes.TranslationUnit`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        #: struct tag -> layout; filled by top-level struct declarations
        self.struct_tags = {}

    # ------------------------------------------------------------------
    # Token utilities
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _check_punct(self, text: str) -> bool:
        token = self._peek()
        return token.type is TokenType.PUNCT and token.value == text

    def _check_keyword(self, text: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value == text

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        if not self._check_punct(text):
            raise self._error(f"expected {text!r}, found {self._peek().value!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        if not self._check_keyword(text):
            raise self._error(f"expected {text!r}, found {self._peek().value!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error(f"expected identifier, found {token.value!r}")
        return self._advance()

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _at_type(self) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value in (
            "int", "char", "void", "struct"
        )

    def _parse_type(self) -> CType:
        token = self._peek()
        if not self._at_type():
            raise self._error(f"expected a type, found {token.value!r}")
        self._advance()
        if token.value == "int":
            ctype = CType.int_()
        elif token.value == "char":
            ctype = CType.char()
        elif token.value == "struct":
            tag_token = self._expect_ident()
            layout = self.struct_tags.get(str(tag_token.value))
            if layout is None:
                raise self._error(
                    f"unknown struct tag {tag_token.value!r}", tag_token
                )
            ctype = CType.struct_(layout)
        else:
            ctype = CType.void()
        while self._accept_punct("*"):
            ctype = CType.pointer(ctype)
        return ctype

    def _parse_array_suffix(self, ctype: CType) -> CType:
        """Parse trailing ``[N]`` suffixes onto a declarator type."""
        lengths: List[int] = []
        while self._accept_punct("["):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise self._error("array length must be an integer literal")
            self._advance()
            self._expect_punct("]")
            if int(token.value) <= 0:
                raise self._error("array length must be positive", token)
            lengths.append(int(token.value))
        for length in reversed(lengths):
            ctype = CType.array(ctype, length)
        return ctype

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_translation_unit(self) -> ast.TranslationUnit:
        """Parse the whole program."""
        globals_: List[ast.VarDecl] = []
        functions: List[ast.FunctionDecl] = []
        structs: List[ast.StructDecl] = []
        while self._peek().type is not TokenType.EOF:
            if (
                self._check_keyword("struct")
                and self._peek(1).type is TokenType.IDENT
                and self._peek(2).value == "{"
            ):
                structs.append(self._parse_struct_decl())
                continue
            base_type = self._parse_type()
            name_token = self._expect_ident()
            if self._check_punct("("):
                functions.append(self._parse_function(base_type, name_token))
            else:
                globals_.append(self._parse_global_var(base_type, name_token))
        return ast.TranslationUnit(globals_, functions, structs)

    def _parse_struct_decl(self) -> ast.StructDecl:
        """``struct Tag { member declarations } ;``

        The tag is registered (incomplete) before the body is parsed so
        members may contain ``struct Tag *`` self-references; by-value
        self-members are rejected because the layout is still incomplete
        when their size is needed.
        """
        from .ctypes import StructLayout

        self._expect_keyword("struct")
        tag_token = self._expect_ident()
        tag = str(tag_token.value)
        if tag in self.struct_tags:
            raise self._error(f"redefinition of struct {tag!r}", tag_token)
        layout = StructLayout(tag)
        self.struct_tags[tag] = layout
        self._expect_punct("{")
        members = []
        while not self._check_punct("}"):
            member_base = self._parse_type()
            while True:
                ctype = member_base
                while self._accept_punct("*"):
                    ctype = CType.pointer(ctype)
                member_token = self._expect_ident()
                ctype = self._parse_array_suffix(ctype)
                if ctype.is_void:
                    raise self._error(
                        f"member {member_token.value!r} has void type",
                        member_token,
                    )
                if ctype.is_struct and not ctype.struct.is_complete:
                    raise self._error(
                        f"member {member_token.value!r} has incomplete type "
                        f"struct {ctype.struct.tag} (use a pointer)",
                        member_token,
                    )
                members.append((str(member_token.value), ctype))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
        self._expect_punct("}")
        self._expect_punct(";")
        try:
            layout.fill(members)
        except ValueError as exc:
            raise self._error(str(exc), tag_token) from None
        return ast.StructDecl(tag, layout, tag_token.line, tag_token.column)

    def _parse_function(self, return_type: CType, name_token: Token) -> ast.FunctionDecl:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._check_punct(")"):
            if self._check_keyword("void") and self._peek(1).value == ")":
                self._advance()
            else:
                while True:
                    ptype = self._parse_type()
                    ptoken = self._expect_ident()
                    ptype = self._parse_array_suffix(ptype).decay()
                    params.append(
                        ast.Param(str(ptoken.value), ptype, ptoken.line, ptoken.column)
                    )
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            body: Optional[ast.Block] = None
        else:
            body = self._parse_block()
        return ast.FunctionDecl(
            str(name_token.value),
            return_type,
            params,
            body,
            name_token.line,
            name_token.column,
        )

    def _parse_global_var(self, base_type: CType, name_token: Token) -> ast.VarDecl:
        ctype = self._parse_array_suffix(base_type)
        init = None
        if self._accept_punct("="):
            init = self._parse_initializer()
        self._expect_punct(";")
        return ast.VarDecl(
            str(name_token.value), ctype, init, name_token.line, name_token.column
        )

    def _parse_initializer(self):
        if self._accept_punct("{"):
            elements: List[ast.Expr] = []
            if not self._check_punct("}"):
                while True:
                    elements.append(self._parse_expression())
                    if not self._accept_punct(","):
                        break
            self._expect_punct("}")
            return elements
        return self._parse_expression()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        open_token = self._expect_punct("{")
        statements: List[ast.Stmt] = []
        while not self._check_punct("}"):
            if self._peek().type is TokenType.EOF:
                raise self._error("unterminated block", open_token)
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(statements, open_token.line, open_token.column)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if self._check_punct("{"):
            return self._parse_block()
        if self._at_type():
            return self._parse_local_decl()
        if token.type is TokenType.KEYWORD:
            keyword = token.value
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "do":
                return self._parse_do_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "switch":
                return self._parse_switch()
            if keyword == "return":
                self._advance()
                value = None if self._check_punct(";") else self._parse_expression()
                self._expect_punct(";")
                return ast.Return(value, token.line, token.column)
            if keyword == "break":
                self._advance()
                self._expect_punct(";")
                return ast.Break(token.line, token.column)
            if keyword == "continue":
                self._advance()
                self._expect_punct(";")
                return ast.Continue(token.line, token.column)
        if self._accept_punct(";"):
            return ast.Block([], token.line, token.column)
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr, token.line, token.column)

    def _parse_local_decl(self) -> ast.Stmt:
        base_type = self._parse_type()
        decls: List[ast.Stmt] = []
        first_token = self._peek()
        while True:
            ctype = base_type
            while self._accept_punct("*"):
                ctype = CType.pointer(ctype)
            name_token = self._expect_ident()
            ctype = self._parse_array_suffix(ctype)
            init = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decls.append(
                ast.VarDecl(
                    str(name_token.value), ctype, init, name_token.line, name_token.column
                )
            )
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(decls, first_token.line, first_token.column)

    def _parse_if(self) -> ast.If:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then_body = self._parse_statement()
        else_body = None
        if self._check_keyword("else"):
            self._advance()
            else_body = self._parse_statement()
        return ast.If(cond, then_body, else_body, token.line, token.column)

    def _parse_while(self) -> ast.While:
        token = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(cond, body, token.line, token.column)

    def _parse_do_while(self) -> ast.DoWhile:
        token = self._expect_keyword("do")
        body = self._parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(cond, body, token.line, token.column)

    def _parse_for(self) -> ast.For:
        token = self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._check_punct(";"):
            if self._at_type():
                # Local declarations consume their own terminating ';'.
                init = self._parse_local_decl()
            else:
                init = ast.ExprStmt(self._parse_expression())
                self._expect_punct(";")
        else:
            self._advance()
        cond = None if self._check_punct(";") else self._parse_expression()
        self._expect_punct(";")
        step = None if self._check_punct(")") else self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init, cond, step, body, token.line, token.column)

    def _parse_switch(self) -> ast.Switch:
        token = self._expect_keyword("switch")
        self._expect_punct("(")
        subject = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.SwitchCase] = []
        while not self._check_punct("}"):
            case_token = self._peek()
            if self._check_keyword("case"):
                self._advance()
                value = self._parse_case_constant()
                self._expect_punct(":")
            elif self._check_keyword("default"):
                self._advance()
                self._expect_punct(":")
                value = None
            else:
                raise self._error("expected 'case' or 'default' in switch")
            body: List[ast.Stmt] = []
            while not (
                self._check_punct("}")
                or self._check_keyword("case")
                or self._check_keyword("default")
            ):
                if self._peek().type is TokenType.EOF:
                    raise self._error("unterminated switch", case_token)
                body.append(self._parse_statement())
            cases.append(
                ast.SwitchCase(value, body, case_token.line, case_token.column)
            )
        self._expect_punct("}")
        return ast.Switch(subject, cases, token.line, token.column)

    def _parse_case_constant(self) -> int:
        """Case labels are integer or character literals (possibly negated)."""
        negate = self._accept_punct("-")
        token = self._peek()
        if token.type not in (TokenType.NUMBER, TokenType.CHAR):
            raise self._error("case label must be an integer constant")
        self._advance()
        value = int(token.value)
        return -value if negate else value

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(str(token.value), left, value, token.line, token.column)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if not self._check_punct("?"):
            return cond
        token = self._advance()
        then_value = self._parse_expression()
        self._expect_punct(":")
        else_value = self._parse_conditional()
        return ast.Conditional(cond, then_value, else_value,
                               token.line, token.column)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            token = self._peek()
            if token.type is not TokenType.PUNCT or token.value not in ops:
                return left
            # Don't mistake a compound assignment for its binary prefix.
            self._advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(str(token.value), left, right, token.line, token.column)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.PUNCT:
            if token.value in ("-", "~", "!", "*", "&"):
                self._advance()
                operand = self._parse_unary()
                return ast.Unary(str(token.value), operand, token.line, token.column)
            if token.value in ("++", "--"):
                self._advance()
                target = self._parse_unary()
                return ast.IncDec(
                    str(token.value), target, True, token.line, token.column
                )
            if token.value == "+":
                self._advance()
                return self._parse_unary()
        if self._check_keyword("sizeof"):
            self._advance()
            self._expect_punct("(")
            target_type = self._parse_type()
            target_type = self._parse_array_suffix(target_type)
            self._expect_punct(")")
            return ast.SizeOf(target_type, token.line, token.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if self._check_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(expr, index, token.line, token.column)
            elif token.type is TokenType.PUNCT and token.value in (".", "->"):
                self._advance()
                name_token = self._expect_ident()
                expr = ast.Member(expr, str(name_token.value),
                                  token.value == "->",
                                  token.line, token.column)
            elif token.type is TokenType.PUNCT and token.value in ("++", "--"):
                self._advance()
                expr = ast.IncDec(str(token.value), expr, False, token.line, token.column)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.IntLiteral(int(token.value), token.line, token.column)
        if token.type is TokenType.CHAR:
            self._advance()
            return ast.IntLiteral(int(token.value), token.line, token.column)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLiteral(str(token.value), token.line, token.column)
        if token.type is TokenType.IDENT:
            self._advance()
            if self._check_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                return ast.Call(str(token.value), args, token.line, token.column)
            return ast.Identifier(str(token.value), token.line, token.column)
        if self._accept_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise self._error(f"unexpected token {token.value!r}")


def parse_source(source: str) -> ast.TranslationUnit:
    """Lex and parse Mini-C source text."""
    return Parser(tokenize(source)).parse_translation_unit()
