"""Token definitions for the Mini-C front end."""

from __future__ import annotations

import enum
from typing import NamedTuple, Union


class TokenType(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    NUMBER = "number"
    CHAR = "char"
    STRING = "string"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "int",
        "char",
        "void",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "sizeof",
        "switch",
        "struct",
        "case",
        "default",
    }
)

#: Multi-character punctuators, longest first so the lexer can greedily match.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "->",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    "?",
    ":",
    ".",
)


class Token(NamedTuple):
    """A single lexical token with its source position."""

    type: TokenType
    value: Union[str, int]
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
