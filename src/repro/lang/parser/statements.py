"""Statement grammar: blocks, control flow, switch."""

from __future__ import annotations

from typing import List, Optional

from .. import ast_nodes as ast
from ..tokens import TokenType


class StatementMixin:
    """Statement-level productions.

    Local declarations are parsed by the declaration mixin
    (:meth:`~repro.lang.parser.declarations.DeclarationMixin._parse_local_decl`);
    conditions and expression statements come from the expression mixin.
    """

    def _parse_block(self) -> ast.Block:
        open_token = self._expect_punct("{")
        statements: List[ast.Stmt] = []
        while not self._check_punct("}"):
            if self._peek().type is TokenType.EOF:
                raise self._error("unterminated block", open_token)
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(statements, open_token.line, open_token.column)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if self._check_punct("{"):
            return self._parse_block()
        if self._at_type():
            return self._parse_local_decl()
        if token.type is TokenType.KEYWORD:
            keyword = token.value
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "do":
                return self._parse_do_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "switch":
                return self._parse_switch()
            if keyword == "return":
                self._advance()
                value = None if self._check_punct(";") else self._parse_expression()
                self._expect_punct(";")
                return ast.Return(value, token.line, token.column)
            if keyword == "break":
                self._advance()
                self._expect_punct(";")
                return ast.Break(token.line, token.column)
            if keyword == "continue":
                self._advance()
                self._expect_punct(";")
                return ast.Continue(token.line, token.column)
        if self._accept_punct(";"):
            return ast.Block([], token.line, token.column)
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr, token.line, token.column)

    def _parse_if(self) -> ast.If:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then_body = self._parse_statement()
        else_body = None
        if self._check_keyword("else"):
            self._advance()
            else_body = self._parse_statement()
        return ast.If(cond, then_body, else_body, token.line, token.column)

    def _parse_while(self) -> ast.While:
        token = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(cond, body, token.line, token.column)

    def _parse_do_while(self) -> ast.DoWhile:
        token = self._expect_keyword("do")
        body = self._parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(cond, body, token.line, token.column)

    def _parse_for(self) -> ast.For:
        token = self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._check_punct(";"):
            if self._at_type():
                # Local declarations consume their own terminating ';'.
                init = self._parse_local_decl()
            else:
                init_token = self._peek()
                init = ast.ExprStmt(
                    self._parse_expression(), init_token.line, init_token.column
                )
                self._expect_punct(";")
        else:
            self._advance()
        cond = None if self._check_punct(";") else self._parse_expression()
        self._expect_punct(";")
        step = None if self._check_punct(")") else self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init, cond, step, body, token.line, token.column)

    def _parse_switch(self) -> ast.Switch:
        token = self._expect_keyword("switch")
        self._expect_punct("(")
        subject = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.SwitchCase] = []
        while not self._check_punct("}"):
            case_token = self._peek()
            if self._check_keyword("case"):
                self._advance()
                value = self._parse_case_constant()
                self._expect_punct(":")
            elif self._check_keyword("default"):
                self._advance()
                self._expect_punct(":")
                value = None
            else:
                raise self._error("expected 'case' or 'default' in switch")
            body: List[ast.Stmt] = []
            while not (
                self._check_punct("}")
                or self._check_keyword("case")
                or self._check_keyword("default")
            ):
                if self._peek().type is TokenType.EOF:
                    raise self._error("unterminated switch", case_token)
                body.append(self._parse_statement())
            cases.append(
                ast.SwitchCase(value, body, case_token.line, case_token.column)
            )
        self._expect_punct("}")
        return ast.Switch(subject, cases, token.line, token.column)

    def _parse_case_constant(self) -> int:
        """Case labels are integer or character literals (possibly negated)."""
        negate = self._accept_punct("-")
        token = self._peek()
        if token.type not in (TokenType.NUMBER, TokenType.CHAR):
            raise self._error("case label must be an integer constant")
        self._advance()
        value = int(token.value)
        return -value if negate else value
