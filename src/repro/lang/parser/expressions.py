"""Expression grammar: the precedence ladder and postfix/primary forms."""

from __future__ import annotations

from typing import List

from .. import ast_nodes as ast
from ..tokens import TokenType

#: Binary operators by precedence level, loosest first.
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class ExpressionMixin:
    """Expression-level productions (assignment down to primaries)."""

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(str(token.value), left, value, token.line, token.column)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if not self._check_punct("?"):
            return cond
        token = self._advance()
        then_value = self._parse_expression()
        self._expect_punct(":")
        else_value = self._parse_conditional()
        return ast.Conditional(cond, then_value, else_value,
                               token.line, token.column)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            token = self._peek()
            if token.type is not TokenType.PUNCT or token.value not in ops:
                return left
            # Don't mistake a compound assignment for its binary prefix.
            self._advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(str(token.value), left, right, token.line, token.column)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.PUNCT:
            if token.value in ("-", "~", "!", "*", "&"):
                self._advance()
                operand = self._parse_unary()
                return ast.Unary(str(token.value), operand, token.line, token.column)
            if token.value in ("++", "--"):
                self._advance()
                target = self._parse_unary()
                return ast.IncDec(
                    str(token.value), target, True, token.line, token.column
                )
            if token.value == "+":
                self._advance()
                return self._parse_unary()
        if self._check_keyword("sizeof"):
            self._advance()
            self._expect_punct("(")
            target_type = self._parse_type()
            target_type = self._parse_array_suffix(target_type)
            self._expect_punct(")")
            return ast.SizeOf(target_type, token.line, token.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if self._check_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(expr, index, token.line, token.column)
            elif token.type is TokenType.PUNCT and token.value in (".", "->"):
                self._advance()
                name_token = self._expect_ident()
                expr = ast.Member(expr, str(name_token.value),
                                  token.value == "->",
                                  token.line, token.column)
            elif token.type is TokenType.PUNCT and token.value in ("++", "--"):
                self._advance()
                expr = ast.IncDec(str(token.value), expr, False, token.line, token.column)
            elif self._check_punct("("):
                # Indirect call through a computed callee: ``(*f)(...)``,
                # ``handlers[i](...)``.  Direct named calls are produced
                # by :meth:`_parse_primary`.
                self._advance()
                call = ast.Call("", self._parse_call_args(),
                                token.line, token.column)
                call.callee = expr
                expr = call
            else:
                return expr

    def _parse_call_args(self) -> List[ast.Expr]:
        """Argument list after the opening ``(`` of a call."""
        args: List[ast.Expr] = []
        if not self._check_punct(")"):
            while True:
                args.append(self._parse_expression())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.IntLiteral(int(token.value), token.line, token.column)
        if token.type is TokenType.CHAR:
            self._advance()
            return ast.IntLiteral(int(token.value), token.line, token.column)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLiteral(str(token.value), token.line, token.column)
        if token.type is TokenType.IDENT:
            self._advance()
            if self._check_punct("("):
                self._advance()
                return ast.Call(str(token.value), self._parse_call_args(),
                                token.line, token.column)
            return ast.Identifier(str(token.value), token.line, token.column)
        if self._accept_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise self._error(f"unexpected token {token.value!r}")
