"""Recursive-descent parser for Mini-C, assembled from grammar mixins.

The parser is split by grammar layer, the way the related parser
codebases structure theirs:

* :mod:`.base` -- token cursor, error helpers, types and declarators;
* :mod:`.declarations` -- translation unit, structs, globals, functions;
* :mod:`.statements` -- blocks, control flow, ``switch``;
* :mod:`.expressions` -- the precedence ladder down to primaries.

:class:`Parser` composes the mixins over :class:`ParserBase`;
:func:`parse_source` remains the stable public entry point.
"""

from __future__ import annotations

from typing import List

from .. import ast_nodes as ast
from ..lexer import tokenize
from ..tokens import Token
from .base import ParserBase
from .declarations import DeclarationMixin
from .expressions import _ASSIGN_OPS, _BINARY_LEVELS, ExpressionMixin
from .statements import StatementMixin

__all__ = [
    "DeclarationMixin",
    "ExpressionMixin",
    "Parser",
    "ParserBase",
    "StatementMixin",
    "parse_source",
    "_ASSIGN_OPS",
    "_BINARY_LEVELS",
]


class Parser(DeclarationMixin, StatementMixin, ExpressionMixin, ParserBase):
    """Parses a token stream into a :class:`~repro.lang.ast_nodes.TranslationUnit`."""

    def __init__(self, tokens: List[Token]):
        ParserBase.__init__(self, tokens)


def parse_source(source: str) -> ast.TranslationUnit:
    """Lex and parse Mini-C source text."""
    return Parser(tokenize(source)).parse_translation_unit()
