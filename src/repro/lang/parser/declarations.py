"""Top-level declarations: structs, functions, globals, initialisers."""

from __future__ import annotations

from typing import List, Optional

from .. import ast_nodes as ast
from ..ctypes import CType
from ..tokens import Token, TokenType


class DeclarationMixin:
    """Translation-unit structure and variable declarations.

    Relies on :class:`~repro.lang.parser.base.ParserBase` for the token
    cursor and declarator grammar, and on the statement/expression
    mixins for function bodies and initialiser expressions.
    """

    def parse_translation_unit(self) -> ast.TranslationUnit:
        """Parse the whole program."""
        globals_: List[ast.VarDecl] = []
        functions: List[ast.FunctionDecl] = []
        structs: List[ast.StructDecl] = []
        while self._peek().type is not TokenType.EOF:
            if (
                self._check_keyword("struct")
                and self._peek(1).type is TokenType.IDENT
                and self._peek(2).value == "{"
            ):
                structs.append(self._parse_struct_decl())
                continue
            base_type = self._parse_type()
            if self._at_fp_declarator():
                name_token, ctype = self._parse_fp_declarator(base_type)
                globals_.append(self._parse_global_var_tail(name_token, ctype))
                continue
            name_token = self._expect_ident()
            if self._check_punct("("):
                functions.append(self._parse_function(base_type, name_token))
            else:
                globals_.append(self._parse_global_var(base_type, name_token))
        return ast.TranslationUnit(globals_, functions, structs)

    def _parse_struct_decl(self) -> ast.StructDecl:
        """``struct Tag { member declarations } ;``

        The tag is registered (incomplete) before the body is parsed so
        members may contain ``struct Tag *`` self-references; by-value
        self-members are rejected because the layout is still incomplete
        when their size is needed.
        """
        from ..ctypes import StructLayout

        self._expect_keyword("struct")
        tag_token = self._expect_ident()
        tag = str(tag_token.value)
        if tag in self.struct_tags:
            raise self._error(f"redefinition of struct {tag!r}", tag_token)
        layout = StructLayout(tag)
        self.struct_tags[tag] = layout
        self._expect_punct("{")
        members = []
        while not self._check_punct("}"):
            member_base = self._parse_type()
            while True:
                ctype = member_base
                while self._accept_punct("*"):
                    ctype = CType.pointer(ctype)
                member_token, ctype = self._parse_declarator(ctype)
                if ctype.is_void:
                    raise self._error(
                        f"member {member_token.value!r} has void type",
                        member_token,
                    )
                if ctype.is_struct and not ctype.struct.is_complete:
                    raise self._error(
                        f"member {member_token.value!r} has incomplete type "
                        f"struct {ctype.struct.tag} (use a pointer)",
                        member_token,
                    )
                members.append((str(member_token.value), ctype))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
        self._expect_punct("}")
        self._expect_punct(";")
        try:
            layout.fill(members)
        except ValueError as exc:
            raise self._error(str(exc), tag_token) from None
        return ast.StructDecl(tag, layout, tag_token.line, tag_token.column)

    def _parse_function(self, return_type: CType, name_token: Token) -> ast.FunctionDecl:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._check_punct(")"):
            if self._check_keyword("void") and self._peek(1).value == ")":
                self._advance()
            else:
                while True:
                    ptype = self._parse_type()
                    if self._at_fp_declarator():
                        ptoken, ptype = self._parse_fp_declarator(ptype)
                        ptype = ptype.decay()
                    else:
                        ptoken = self._expect_ident()
                        ptype = self._parse_array_suffix(ptype).decay()
                    params.append(
                        ast.Param(str(ptoken.value), ptype, ptoken.line, ptoken.column)
                    )
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            body: Optional[ast.Block] = None
        else:
            body = self._parse_block()
        return ast.FunctionDecl(
            str(name_token.value),
            return_type,
            params,
            body,
            name_token.line,
            name_token.column,
        )

    def _parse_global_var(self, base_type: CType, name_token: Token) -> ast.VarDecl:
        return self._parse_global_var_tail(
            name_token, self._parse_array_suffix(base_type)
        )

    def _parse_global_var_tail(self, name_token: Token,
                               ctype: CType) -> ast.VarDecl:
        init = None
        if self._accept_punct("="):
            init = self._parse_initializer()
        self._expect_punct(";")
        return ast.VarDecl(
            str(name_token.value), ctype, init, name_token.line, name_token.column
        )

    def _parse_initializer(self):
        """A scalar expression or a (possibly nested) brace list.

        Nested lists initialise multi-dimensional arrays:
        ``{{1, 2}, {3, 4}}``.
        """
        if self._accept_punct("{"):
            elements: List[object] = []
            if not self._check_punct("}"):
                while True:
                    if self._check_punct("{"):
                        elements.append(self._parse_initializer())
                    else:
                        elements.append(self._parse_expression())
                    if not self._accept_punct(","):
                        break
            self._expect_punct("}")
            return elements
        return self._parse_expression()

    def _parse_local_decl(self) -> ast.Stmt:
        base_type = self._parse_type()
        decls: List[ast.Stmt] = []
        first_token = self._peek()
        while True:
            ctype = base_type
            while self._accept_punct("*"):
                ctype = CType.pointer(ctype)
            name_token, ctype = self._parse_declarator(ctype)
            init = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decls.append(
                ast.VarDecl(
                    str(name_token.value), ctype, init, name_token.line, name_token.column
                )
            )
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(decls, first_token.line, first_token.column)
