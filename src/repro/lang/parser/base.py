"""Parser foundation: token cursor, error helpers, types and declarators.

:class:`ParserBase` owns the token stream state shared by every mixin
(:mod:`.declarations`, :mod:`.statements`, :mod:`.expressions`) and the
grammar fragments they all need: type specifiers and declarators,
including the function-pointer declarator ``int (*f)(int, int)`` and
chained array suffixes ``[N][M]``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ctypes import CType
from ..errors import ParseError
from ..tokens import Token, TokenType

#: Calls pass arguments in registers r1..r6; function-pointer types are
#: capped to the same arity so every signature is callable.
_MAX_FP_PARAMS = 6


class ParserBase:
    """Token cursor and the type/declarator grammar.

    The concrete :class:`~repro.lang.parser.Parser` is assembled from
    this base plus the declaration/statement/expression mixins; each
    mixin calls across to the others through ``self``.
    """

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        #: struct tag -> layout; filled by top-level struct declarations
        self.struct_tags = {}

    # ------------------------------------------------------------------
    # Token utilities
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _check_punct(self, text: str) -> bool:
        token = self._peek()
        return token.type is TokenType.PUNCT and token.value == text

    def _check_keyword(self, text: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value == text

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        if not self._check_punct(text):
            raise self._error(f"expected {text!r}, found {self._peek().value!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        if not self._check_keyword(text):
            raise self._error(f"expected {text!r}, found {self._peek().value!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error(f"expected identifier, found {token.value!r}")
        return self._advance()

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _at_type(self) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value in (
            "int", "char", "void", "struct"
        )

    def _parse_type(self) -> CType:
        token = self._peek()
        if not self._at_type():
            raise self._error(f"expected a type, found {token.value!r}")
        self._advance()
        if token.value == "int":
            ctype = CType.int_()
        elif token.value == "char":
            ctype = CType.char()
        elif token.value == "struct":
            tag_token = self._expect_ident()
            layout = self.struct_tags.get(str(tag_token.value))
            if layout is None:
                raise self._error(
                    f"unknown struct tag {tag_token.value!r}", tag_token
                )
            ctype = CType.struct_(layout)
        else:
            ctype = CType.void()
        while self._accept_punct("*"):
            ctype = CType.pointer(ctype)
        return ctype

    def _parse_array_suffix(self, ctype: CType) -> CType:
        """Parse trailing ``[N]`` suffixes onto a declarator type."""
        for length in reversed(self._parse_array_lengths()):
            ctype = CType.array(ctype, length)
        return ctype

    def _parse_array_lengths(self) -> List[int]:
        """Raw ``[N]`` suffix lengths, outermost dimension first."""
        lengths: List[int] = []
        while self._accept_punct("["):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise self._error("array length must be an integer literal")
            self._advance()
            self._expect_punct("]")
            if int(token.value) <= 0:
                raise self._error("array length must be positive", token)
            lengths.append(int(token.value))
        return lengths

    # ------------------------------------------------------------------
    # Declarators
    # ------------------------------------------------------------------
    def _at_fp_declarator(self) -> bool:
        """True at the ``(`` of a ``(*name)(...)`` declarator."""
        return self._check_punct("(") and self._peek(1).value == "*"

    def _parse_declarator(self, base: CType) -> Tuple[Token, CType]:
        """One declarator after per-declarator ``*``s have been applied.

        Either a plain ``name[N]...`` or a function-pointer declarator
        ``(*name)(params)`` / ``(*name[N])(params)`` (an array of
        function pointers).  Returns the name token and the full type.
        """
        if self._at_fp_declarator():
            return self._parse_fp_declarator(base)
        name_token = self._expect_ident()
        return name_token, self._parse_array_suffix(base)

    def _parse_fp_declarator(self, return_type: CType) -> Tuple[Token, CType]:
        open_token = self._expect_punct("(")
        self._expect_punct("*")
        name_token = self._expect_ident()
        lengths = self._parse_array_lengths()
        self._expect_punct(")")
        params = self._parse_fp_param_types()
        if return_type.is_struct:
            raise self._error(
                f"function pointer {name_token.value!r} returns a struct "
                "by value; return a pointer instead",
                open_token,
            )
        ctype = CType.pointer(CType.function(return_type, params))
        for length in reversed(lengths):
            ctype = CType.array(ctype, length)
        return name_token, ctype

    def _parse_fp_param_types(self) -> Tuple[CType, ...]:
        """The ``(int, int)`` parameter-type list of a function pointer.

        Parameter names are accepted and ignored; ``(void)`` and ``()``
        both mean no parameters.
        """
        open_token = self._expect_punct("(")
        params: List[CType] = []
        if self._check_punct(")"):
            self._advance()
            return tuple(params)
        if self._check_keyword("void") and self._peek(1).value == ")":
            self._advance()
            self._expect_punct(")")
            return tuple(params)
        while True:
            ptoken = self._peek()
            ptype = self._parse_type()
            if self._peek().type is TokenType.IDENT:
                self._advance()
            ptype = self._parse_array_suffix(ptype).decay()
            if ptype.is_void:
                raise self._error("parameter has void type", ptoken)
            if ptype.is_struct:
                raise self._error(
                    "parameter is a struct by value; pass a pointer instead",
                    ptoken,
                )
            params.append(ptype)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        if len(params) > _MAX_FP_PARAMS:
            raise self._error(
                f"function pointer has more than {_MAX_FP_PARAMS} parameters",
                open_token,
            )
        return tuple(params)
